"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in
offline environments whose setuptools predates PEP 660 support (older
toolchains fall back to the legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Diversity-based security evaluation for monitoring and control "
        "(SCADA) systems - reproduction of Cotroneo, Pecchia, Russo (DSN 2013)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
