"""Calibrating the attack model from documented attack history.

The paper's step 2 says probability values are established *"either by
means of previously documented attack history, or by emulating malware
samples in a controlled environment (e.g., honeypots), or by performing
a sensitivity analysis."*  This example exercises the first option:

1. generate a synthetic incident database with known ground truth
   (standing in for a proprietary CERT/ICS-CERT incident corpus),
2. fit per-stage completion rates and success probabilities from it,
3. compare candidate duration distributions by AIC,
4. feed the calibrated threat into the campaign simulator and the exact
   SAN/CTMC analysis.

Run:
    python examples/history_calibration.py
"""


import numpy as np

from repro import san_model_for
from repro.api import Session
from repro.attacks.campaign import AttackCampaign
from repro.attacks.history import (
    HISTORY_STEPS,
    calibrate,
    generate_incident_history,
)
from repro.core.indicators import compute_indicators
from repro.core.report import format_table
from repro.san.ctmc import san_to_ctmc
from repro.stats.fitting import best_fit, fit_exponential


def main() -> None:
    rng = np.random.default_rng(17)

    true_rates = {"entry": 0.2, "activation": 2.0, "escalation": 1.2,
                  "propagation": 0.5, "reprogram": 0.6}
    true_probs = {"entry": 0.85, "activation": 1.0, "escalation": 0.7,
                  "propagation": 0.6, "reprogram": 0.55}
    history = generate_incident_history(
        1200, rng, true_rates=true_rates, true_probabilities=true_probs
    )
    print(f"synthetic incident database: {len(history)} incidents")
    reached_end = sum(
        1 for r in history if r.step_success.get("reprogram", False)
    )
    print(f"incidents reaching controller reprogramming: {reached_end}")

    calibrated = calibrate(history)
    rows = [
        (
            step,
            calibrated.attempts[step],
            calibrated.success_probabilities.get(step, float("nan")),
            true_probs[step],
            calibrated.rates.get(step, float("nan")),
            true_rates[step],
        )
        for step in HISTORY_STEPS
    ]
    print(
        format_table(
            ["step", "attempts", "p (est)", "p (true)", "rate (est)",
             "rate (true)"],
            rows,
            title="\nper-stage calibration vs ground truth",
        )
    )

    # Which family fits the entry durations best?
    entry_durations = [
        r.step_durations["entry"]
        for r in history
        if "entry" in r.step_durations
    ]
    chosen = best_fit(entry_durations)
    exp_fit = fit_exponential(entry_durations)
    print(f"\nentry-duration family by AIC: "
          f"{type(chosen.distribution).__name__} "
          f"(AIC {chosen.aic:.1f} vs exponential {exp_fit.aic:.1f}; "
          f"KS {chosen.ks_statistic:.3f})")

    threat = calibrated.to_threat_profile()
    print(f"\ncalibrated threat profile: {threat.name}")
    print(f"  entry_rate      = {threat.entry_rate:.3f} /h")
    print(f"  escalation_rate = {threat.escalation_rate:.3f} /h")
    print(f"  reprogram_rate  = {threat.reprogram_rate:.3f} /h")

    # System wiring from the catalog scenario (via the session facade);
    # only the threat is replaced by its history-calibrated counterpart.
    scenario = (
        Session().study("cooling_stuxnet").horizon(100.0).build()
    )
    catalog = scenario.build_catalog()
    network = scenario.build_network()
    san = san_model_for(network, catalog, threat, give_up=True)
    ctmc = san_to_ctmc(san)
    impair = [i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")]
    p = ctmc.hitting_probability(impair)[int(np.argmax(ctmc.initial))]
    print(f"\nanalytic single-campaign success probability (SAN/CTMC): {p:.3f}")

    outcomes = AttackCampaign(
        network, catalog, threat, scenario.build_campaign_config()
    ).run_batch(40, rng)
    row = compute_indicators(outcomes).summary_row()
    print(f"campaign (persistent attacker, 100 h): PSA = {row['psa']:.2f}, "
          f"TTA = {row['tta_restricted_mean']:.1f} h")


if __name__ == "__main__":
    main()
