"""Running a scenario suite as a queued job and comparing scenarios.

Submits the ``threat-sweep`` scenarios (plus the smoke scenario)
through :meth:`repro.api.Session.submit`, watches the
:class:`~repro.api.JobHandle`'s partial progress while the suite fans
out on the parallel experiment runner, and prints the cross-scenario
comparison report.  For the same seed the per-scenario records are
bit-identical across the ``serial``, ``thread`` and ``process``
backends and any worker count.

Equivalent CLI:
    python -m repro.scenarios run smoke --tag threat-sweep --backend process

Run:
    python examples/scenario_suite.py
    python examples/scenario_suite.py --backend process --workers 4
"""

import argparse
import time

from repro.api import Session


def main(backend: str = "serial", n_workers: int = None) -> None:
    with Session(backend=backend, n_workers=n_workers) as session:
        scenarios = ["smoke"] + [
            s.name for s in session.scenarios(tag="threat-sweep")
        ]
        print(f"suite: {', '.join(scenarios)} (backend={backend})")
        job = session.submit(scenarios, seed=2013)
        while not job.done():
            progress = job.progress
            print(
                f"  job {job.job_id} [{job.status.value}] "
                f"{progress.completed}/{progress.total} scenarios"
            )
            time.sleep(0.5)
        result = job.result()
    print()
    print(result.comparison_report())

    stuxnet = result.by_name("cooling_stuxnet")
    duqu = result.by_name("cooling_duqu")
    print(
        f"\nReading: the sabotage threat succeeds in "
        f"{100 * stuxnet.summary['psa']:.0f}% of campaigns vs "
        f"{100 * duqu.summary['psa']:.0f}% for espionage on the same "
        f"system, and the first diversification target shifts from "
        f"{stuxnet.top_targets['tta']} to {duqu.top_targets['tta']}."
    )
    print(
        f"suite provenance: {result.provenance.spec_digest[:12]}... "
        f"(seed entropy {result.provenance.entropy})"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="serial", help="suite execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    args = parser.parse_args()
    main(backend=args.backend, n_workers=args.workers)
