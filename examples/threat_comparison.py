"""Comparing threat models: Stuxnet-, Duqu- and Flame-like campaigns.

The paper's future work names Duqu and Flame as the wider threat models
to incorporate.  This example runs all three profiles against the same
system in baseline and diversified configurations and prints the full
indicator comparison, showing how the *kind* of threat changes which
diversification helps.

Run:
    python examples/threat_comparison.py
"""

import numpy as np

from repro import default_catalog, scope_cooling_topology
from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import duqu_like, flame_like, stuxnet_like
from repro.core.indicators import compute_indicators
from repro.core.report import format_table
from repro.scada.components import ComponentKind

K = ComponentKind


def diversified_topology():
    """OS + firmware + protocol + sensor diversity applied together."""
    net = scope_cooling_topology()
    hardened_os = {
        "scada_server": "linux_hardened",
        "eng_ws": "linux_hardened",
        "hmi_0": "win_patched",
        "hmi_1": "linux_hardened",
        "historian": "win_patched",
    }
    for name, variant in hardened_os.items():
        net.host(name).install(K.OPERATING_SYSTEM, variant)
    for host in net.hosts:
        if host.variant_of(K.PLC_FIRMWARE) is not None:
            host.install(K.PLC_FIRMWARE, "firmware_alt")
        if host.variant_of(K.PROTOCOL_STACK) is not None:
            host.install(K.PROTOCOL_STACK, "modbus_variant_b")
        if host.variant_of(K.SENSOR_MODEL) is not None:
            host.install(K.SENSOR_MODEL, "sensor_authenticated")
        if host.variant_of(K.FIREWALL_SOFTWARE) is not None:
            host.install(K.FIREWALL_SOFTWARE, "fw_dpi")
    return net


def main() -> None:
    rng = np.random.default_rng(31)
    catalog = default_catalog()
    config = CampaignConfig(horizon=100.0, tick_interval=0.5)

    threats = {
        "stuxnet-like (sabotage)": stuxnet_like(),
        "duqu-like (exfiltration)": duqu_like(),
        "flame-like (recon)": flame_like(),
    }
    rows = []
    for label, threat in threats.items():
        for system_label, factory in (
            ("baseline", scope_cooling_topology),
            ("diversified", diversified_topology),
        ):
            outcomes = AttackCampaign(
                factory(), catalog, threat, config
            ).run_batch(40, rng)
            row = compute_indicators(outcomes).summary_row()
            rows.append(
                (
                    label,
                    system_label,
                    f"{row['psa']:.2f}",
                    f"{row['tta_restricted_mean']:.1f}",
                    f"{row['detection_probability']:.2f}",
                    f"{row['ttsf_restricted_mean']:.1f}",
                )
            )
    print(
        format_table(
            ["threat", "system", "PSA", "TTA(h)", "P(detect)", "TTSF(h)"],
            rows,
            title="Threat-model comparison, 40 replications each, 100 h horizon",
        )
    )
    print(
        "\nReading: diversification slows every threat (higher TTA), and the"
        "\nsensor/firewall variants mainly sharpen detection (TTSF) against"
        "\nthe sabotage threat, whose payload depends on signal spoofing."
    )


if __name__ == "__main__":
    main()
