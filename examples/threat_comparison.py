"""Comparing threat models: Stuxnet-, Duqu- and Flame-like campaigns.

The paper's future work names Duqu and Flame as the wider threat models
to incorporate.  The catalog's ``threat-sweep`` scenarios pit all three
against the same cooling system; this example runs each in baseline and
hand-diversified configurations and prints the full indicator
comparison, showing how the *kind* of threat changes which
diversification helps.

Scenario resources (catalog, threat, campaign config) and the execution
runner all come from one :class:`repro.api.Session`; the diversified
variant shows the advanced escape hatch — mutating a network by hand
and running :class:`~repro.attacks.campaign.AttackCampaign` on the
session's runner directly.

Run:
    python examples/threat_comparison.py
"""

from repro.api import Session
from repro.attacks.campaign import AttackCampaign
from repro.core.indicators import compute_indicators
from repro.core.report import format_table
from repro.scada.components import ComponentKind

K = ComponentKind


def diversify(net):
    """OS + firmware + protocol + sensor diversity applied together."""
    hardened_os = {
        "scada_server": "linux_hardened",
        "eng_ws": "linux_hardened",
        "hmi_0": "win_patched",
        "hmi_1": "linux_hardened",
        "historian": "win_patched",
    }
    for name, variant in hardened_os.items():
        net.host(name).install(K.OPERATING_SYSTEM, variant)
    for host in net.hosts:
        if host.variant_of(K.PLC_FIRMWARE) is not None:
            host.install(K.PLC_FIRMWARE, "firmware_alt")
        if host.variant_of(K.PROTOCOL_STACK) is not None:
            host.install(K.PROTOCOL_STACK, "modbus_variant_b")
        if host.variant_of(K.SENSOR_MODEL) is not None:
            host.install(K.SENSOR_MODEL, "sensor_authenticated")
        if host.variant_of(K.FIREWALL_SOFTWARE) is not None:
            host.install(K.FIREWALL_SOFTWARE, "fw_dpi")
    return net


def main() -> None:
    rows = []
    with Session() as session:
        for scenario in session.scenarios(tag="threat-sweep"):
            catalog = scenario.build_catalog()
            threat = scenario.build_threat()
            config = scenario.build_campaign_config()
            for system_label, network in (
                ("baseline", scenario.build_network()),
                ("diversified", diversify(scenario.build_network())),
            ):
                outcomes = AttackCampaign(
                    network, catalog, threat, config
                ).run_batch(40, rng=31, runner=session.runner)
                row = compute_indicators(outcomes).summary_row()
                rows.append(
                    (
                        f"{threat.name} ({threat.goal})",
                        system_label,
                        f"{row['psa']:.2f}",
                        f"{row['tta_restricted_mean']:.1f}",
                        f"{row['detection_probability']:.2f}",
                        f"{row['ttsf_restricted_mean']:.1f}",
                    )
                )
    print(
        format_table(
            ["threat", "system", "PSA", "TTA(h)", "P(detect)", "TTSF(h)"],
            rows,
            title="Threat-model comparison, 40 replications each",
        )
    )
    print(
        "\nReading: diversification slows every threat (higher TTA), and the"
        "\nsensor/firewall variants mainly sharpen detection (TTSF) against"
        "\nthe sabotage threat, whose payload depends on signal spoofing."
    )


if __name__ == "__main__":
    main()
