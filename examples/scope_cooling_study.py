"""The SCoPE data-center cooling case study (paper §II, last paragraph).

Reproduces the paper's in-progress case study end to end, with all the
system/threat wiring drawn from the ``cooling_stuxnet`` catalog
scenario:

1. Build the cooling-SCADA system model (control/monitoring nodes + PLCs).
2. Express the Stuxnet-like attack as a stochastic activity network and
   solve it exactly (CTMC) and by simulation.
3. Run the sensitivity analysis over the number and placement of highly
   attack-resilient components — the paper's preliminary finding is that
   a small, strategically distributed number of them significantly
   lowers attack-success probability.

Run:
    python examples/scope_cooling_study.py
"""

import dataclasses

import numpy as np

from repro.api import Session
from repro.attacks.campaign import AttackCampaign
from repro.core.indicators import compute_indicators
from repro.core.placement import PlacementProblem
from repro.core.report import format_table
from repro.san.ctmc import san_to_ctmc
from repro.san.simulator import SANSimulator


def main() -> None:
    rng = np.random.default_rng(7)
    # The session resolves the catalog scenario; the builder carries
    # the study-specific horizon override.
    scenario = (
        Session().study("cooling_stuxnet").horizon(100.0).build()
    )
    catalog = scenario.build_catalog()
    threat = scenario.build_threat()
    network = scenario.build_network()
    config = scenario.build_campaign_config()

    print("SCoPE cooling SCADA:", len(network.hosts), "hosts")
    for warning in network.validate():
        print("  warning:", warning)

    # ---- SAN model: exact and simulated attack progression -------------
    san = scenario.build_san_model(give_up=True)
    ctmc = san_to_ctmc(san)
    impair = [i for i, s in enumerate(ctmc.states) if dict(s).get("impaired")]
    start = int(np.argmax(ctmc.initial))
    p_exact = ctmc.hitting_probability(impair)[start]
    print(f"\nSAN/CTMC: {ctmc.n_states} states; "
          f"P(device impairment | single campaign) = {p_exact:.3f}")

    # Whole transient curve from one uniformization pass.
    grid_times = [10.0, 25.0, 50.0, 100.0]
    grid = ctmc.transient_at(grid_times)
    curve = ", ".join(
        f"t={t:.0f}h: {grid[j, impair].sum():.3f}"
        for j, t in enumerate(grid_times)
    )
    print(f"  P(impaired by t)  {curve}")

    sim = SANSimulator(san)  # compiled fast path by default
    runs = sim.batch(500.0, 2000, rng, stop=lambda m: m["impaired"] > 0)
    p_mc = sum(r.stopped for r in runs) / len(runs)
    print(f"SAN/Monte-Carlo (2000 replications):          = {p_mc:.3f}")

    # ---- Full campaign indicators --------------------------------------
    outcomes = AttackCampaign(network, catalog, threat, config).run_batch(
        60, rng
    )
    indicators = compute_indicators(outcomes)
    row = indicators.summary_row()
    print(f"\nCampaign indicators (60 replications, "
          f"{config.horizon:.0f} h horizon):")
    print(f"  PSA                = {row['psa']:.2f}")
    print(f"  TTA (restricted)   = {row['tta_restricted_mean']:.1f} h")
    print(f"  TTSF (restricted)  = {row['ttsf_restricted_mean']:.1f} h")
    print(f"  P(detected)        = {row['detection_probability']:.2f}")

    # ---- Sensitivity: resilient-component count and placement ----------
    print("\nResilient-component sweep (strategic vs random placement):")
    sweep_config = dataclasses.replace(config, horizon=30.0)
    rows = []
    for k in (0, 1, 2, 3):
        problem = PlacementProblem(
            scenario.build_network_factory(),
            catalog,
            threat,
            budget=k,
            candidates=[
                "office_0", "office_1", "office_2", "historian",
                "scada_server", "hmi_0", "hmi_1", "eng_ws", "plc_0", "plc_1",
            ],
            replications=30,
            campaign_config=sweep_config,
        )
        if k == 0:
            base = problem.evaluate([], rng)
            rows.append((0, base, base, "--"))
            continue
        strategic = problem.greedy(rng)
        random_mean = problem.random_placement(rng, samples=5)
        rows.append(
            (k, strategic.objective, random_mean.objective,
             ",".join(sorted(strategic.subset)))
        )
    print(
        format_table(
            ["k", "PSA strategic", "PSA random", "chosen hosts"], rows
        )
    )
    print(
        "\nThe paper's preliminary finding reproduces: a small, strategically"
        "\nplaced number of resilient components sharply lowers PSA."
    )


if __name__ == "__main__":
    main()
