"""Smart-grid scenario: overloading a distribution feeder.

The paper's introduction motivates the framework with power grids:
*"what if an attacker overloads a power distribution system by breaking
into a power grid?"*.  This example runs the Stuxnet-like threat against
the distribution-feeder SCADA topology driving the
:class:`~repro.scada.plant.feeder.PowerFeeder` physical model — all
drawn from the ``smart_grid_stuxnet`` catalog scenario through a
:class:`repro.api.Session` — and then applies the cost-constrained
portfolio optimizer to decide which components to diversify under a
budget.

Run:
    python examples/smart_grid_attack.py
"""

from repro.api import Session
from repro.attacks.campaign import AttackCampaign
from repro.core.indicators import compute_indicators
from repro.core.portfolio import PortfolioOptimizer
from repro.core.report import format_table
from repro.scada.components import ComponentKind

K = ComponentKind


def main() -> None:
    session = Session()
    scenario = session.scenario("smart_grid_stuxnet")
    catalog = scenario.build_catalog()
    threat = scenario.build_threat()
    config = scenario.build_campaign_config()  # PowerFeeder plant

    print("=== feeder-overload campaign (baseline utility) ===")
    # The facade's campaign entry gives the indicator summary...
    result = session.campaign(scenario, 40, seed=3)
    print(f"PSA within 120 h:      {result.summary['psa']:.2f}")
    print(f"TTA (restricted mean): {result.summary['tta_mean']:.1f} h")
    # ... and the campaign substrate (same seed, session runner) keeps
    # the full per-replication traces for the walkthrough below.
    outcomes = AttackCampaign(
        scenario.build_network(), catalog, threat, config
    ).run_batch(40, rng=3, runner=session.runner)
    row = compute_indicators(outcomes).summary_row()
    print(f"P(perceived):          {row['detection_probability']:.2f}")

    one = next(o for o in outcomes if o.success)
    print("\none successful campaign:")
    for record in one.trace.of_kind("sabotage"):
        print(f"  t={record.time:6.2f} h  feeder controller reprogrammed "
              f"({record.subject})")
    print(f"  t={one.success_time:6.2f} h  conductor impairment "
          "(sustained overload past rating)")

    print("\n=== cost-constrained diversification portfolio ===")
    optimizer = PortfolioOptimizer(
        scenario.build_network_factory(),
        catalog,
        threat,
        kinds=[K.OPERATING_SYSTEM, K.PLC_FIRMWARE, K.PROTOCOL_STACK,
               K.ANTIVIRUS],
    )
    base = optimizer.evaluate(optimizer.cheapest_assignment())
    print(f"cheapest portfolio: cost {base.cost:.0f}, analytic PSA "
          f"{base.success_probability:.4f}")
    rows = []
    for multiplier in (1.0, 1.15, 1.3, 1.6, 2.0):
        budget = base.cost * multiplier
        best = optimizer.exhaustive(budget)
        rows.append(
            (
                f"{multiplier:.2f}x",
                f"{budget:.0f}",
                f"{best.cost:.0f}",
                f"{best.success_probability:.5f}",
                ", ".join(f"{k}={v}" for k, v in best.assignment),
            )
        )
    print(
        format_table(
            ["budget", "limit", "spent", "analytic PSA", "chosen portfolio"],
            rows,
        )
    )
    print("\nA ~30% budget increase buys a >100x reduction in analytic attack"
          "\nsuccess probability — the 'balanced approach between secure"
          "\nsystem design and diversification costs' the paper calls for.")


if __name__ == "__main__":
    main()
