"""Physical-plant view of the attack: cooling sabotage and spoofing.

Shows the substrate the campaign simulator drives: the PLC's hysteresis
control loop keeping the server room cool, the sabotage program forcing
the cooling off while spoofing the temperature mirror register, the
thermal trajectory of the room, and the damage model declaring device
impairment — the final stage of the paper's attack chain.

(The study-level counterpart — which diversification best defends this
signal path — is the ``cooling_sabotage_physics`` catalog scenario; run
it through the facade with
``Session().run("cooling_sabotage_physics")`` or from the shell with
``python -m repro.scenarios run cooling_sabotage_physics``.  This
script deliberately stays below the facade: it is the physical
substrate every campaign drives.)

Run:
    python examples/plant_sabotage_physics.py
"""

from repro.scada.plant.cooling import (
    CoolingPlant,
    REG_CHILLER_SP,
    REG_CRAC_ENABLE,
    REG_PUMP_ENABLE,
    REG_ROOM_TEMP,
)
from repro.scada.plant.damage import DamageModel
from repro.scada.monitoring import Alarm, SCADAMaster
from repro.scada.plc import PLC, sabotage_program, threshold_controller

POLL_PERIOD = 60.0  # seconds


def run_phase(plant, plc, master, damage, duration, now):
    """Step plant + PLC scan + master poll for `duration` seconds."""
    steps = int(duration / POLL_PERIOD)
    for _ in range(steps):
        plant.step(plc.registers, dt=POLL_PERIOD)
        plc.scan_cycle()
        now += POLL_PERIOD
        damage.update(plant.room.temperature, POLL_PERIOD, now)
        master.poll(now / 3600.0, plc.registers)
    return now


def main() -> None:
    plant = CoolingPlant()
    program = threshold_controller(
        "cooling_control",
        sensor_register=REG_ROOM_TEMP,
        actuator_register=REG_CRAC_ENABLE,
        on_threshold=240,   # 24.0 C -> all CRACs on
        off_threshold=180,  # 18.0 C -> off
        on_value=plant.config.n_crac,
        off_value=2,
    )
    plc = PLC("cooling_plc", unit=1, program=program)
    plc.registers.update(plant.default_registers())
    master = SCADAMaster(
        alarms=[Alarm("room_overtemp", REG_ROOM_TEMP, high=35.0, scale=0.1)]
    )
    master.watch(REG_ROOM_TEMP)
    damage = DamageModel()

    print("phase 1: healthy operation (2 h)")
    now = run_phase(plant, plc, master, damage, 2 * 3600, 0.0)
    print(f"  room temperature: {plant.room.temperature:5.1f} C")
    print(f"  master findings:  {len(master.findings)}")

    print("\nphase 2: PLC reprogrammed (Stuxnet-style payload)")
    plc.load_program(
        sabotage_program(
            "payload",
            actuator_register=REG_CRAC_ENABLE,
            forced_value=0,
            spoof_register=REG_ROOM_TEMP,
            spoof_value=int(plant.room.temperature * 10),
        )
    )
    plc.registers[REG_PUMP_ENABLE] = 0
    plc.registers[REG_CHILLER_SP] = 500
    print(f"  compromised: {plc.compromised}")

    print("\nphase 3: sabotage in progress (45 min)")
    interesting = [5, 15, 30, 45]
    last_mark = 0
    for mark in interesting:
        now = run_phase(
            plant, plc, master, damage, (mark - last_mark) * 60, now
        )
        last_mark = mark
        reported = plc.registers[REG_ROOM_TEMP] / 10.0
        print(
            f"  +{mark:2d} min: actual {plant.room.temperature:5.1f} C, "
            f"reported {reported:5.1f} C, damage {damage.damage:4.2f}"
            + ("  << IMPAIRED" if damage.impaired else "")
        )

    print("\noutcome:")
    print(f"  device impaired: {damage.impaired}")
    if damage.impairment_time is not None:
        print(f"  impairment time: {damage.impairment_time / 60:.0f} min "
              "after start")
    print(f"  master perceived the attack: {master.detected}")
    if master.detected:
        label = master.findings[0][1]
        print(f"  first finding: {label}")
    else:
        print("  the register spoof kept every reading inside the alarm band")


if __name__ == "__main__":
    main()
