"""Anatomy of one Stuxnet-like campaign.

Walks through a single attack replication in detail: entry infection,
activation, privilege escalation, lateral movement, PLC reprogramming,
physical sabotage with monitoring-signal spoofing, and how/when the
SCADA master perceives the attack.  Also demonstrates the protocol-level
diversity mechanism directly on the Modbus-like codec.

Run:
    python examples/stuxnet_campaign.py
"""

import math

import numpy as np

from repro.api import Session
from repro.attacks.campaign import AttackCampaign
from repro.scada.protocol import (
    FunctionCode,
    ModbusFrame,
    ProtocolError,
    STANDARD_DIALECT,
    decode_frame,
    encode_frame,
    remapped_dialect,
)


def protocol_demo() -> None:
    """Why diversified protocol stacks stop a canned payload."""
    print("--- protocol-dialect diversity demo ---")
    payload = ModbusFrame(
        unit=1,
        function=FunctionCode.WRITE_SINGLE_REGISTER,
        address=202,          # chiller setpoint register
        values=(500,),        # 50.0 C: sabotage value
    )
    wire = encode_frame(payload, STANDARD_DIALECT)
    print(f"malware payload ({len(wire)} bytes) crafted for the standard dialect")

    same = decode_frame(wire, STANDARD_DIALECT)
    print(f"  PLC speaking standard dialect: accepted -> write {same.values[0]} "
          f"to register {same.address}")

    variant = remapped_dialect("modbus_variant_b")
    try:
        decode_frame(wire, variant)
    except ProtocolError as exc:
        print(f"  PLC speaking variant dialect:  REJECTED ({exc})")
    print()


def campaign_walkthrough() -> None:
    print("--- single campaign walkthrough (baseline system) ---")
    rng = np.random.default_rng(2013)
    # The builder overrides the catalog scenario's campaign knobs —
    # no hand-patched CampaignConfig needed.
    scenario = (
        Session()
        .study("cooling_stuxnet")
        .override(horizon=120.0, tick_interval=0.25)
        .build()
    )
    campaign = AttackCampaign(
        scenario.build_network(),
        scenario.build_catalog(),
        scenario.build_threat(),
        scenario.build_campaign_config(),
    )

    # Find a replication where the attack succeeds.
    outcome = campaign.run(rng)
    attempts = 1
    while not outcome.success and attempts < 10:
        outcome = campaign.run(rng)
        attempts += 1

    print(f"replication horizon: {outcome.horizon:.0f} h, "
          f"{outcome.n_hosts} infectable hosts\n")
    print("timeline:")
    for record in outcome.trace:
        detail = ""
        if record.kind == "compromise":
            detail = f" via {record.data.get('vector', '?')}"
        print(f"  t={record.time:8.2f} h  {record.kind:<12} {record.subject}{detail}")

    print("\nstage milestones:")
    for stage, time in sorted(outcome.stage_times.items()):
        print(f"  {stage.label:<18} {time:8.2f} h")

    if outcome.success:
        print(f"\nTime-To-Attack: {outcome.success_time:.2f} h "
              f"(device impairment)")
    if not math.isnan(outcome.detection_time):
        relation = (
            "BEFORE impairment" if outcome.detection_time
            < outcome.success_time else "after impairment"
        )
        print(f"Time-To-Security-Failure: {outcome.detection_time:.2f} h "
              f"({relation})")
    else:
        print("The attack was never perceived — the spoofed monitoring "
              "signals fooled the master for the whole run.")
    ratio_curve = [
        (t, outcome.compromised_ratio_at(t)) for t in (5, 10, 20, 40, 80)
    ]
    print("\ncompromised ratio:",
          "  ".join(f"{t}h:{r:.2f}" for t, r in ratio_curve))


def main() -> None:
    protocol_demo()
    campaign_walkthrough()


if __name__ == "__main__":
    main()
