"""Quickstart: the three-step diversity study through ``repro.api``.

Runs the paper's Figure-1 pipeline — attack modeling, DoE & measurement,
ANOVA diversity assessment — through the public facade: a
:class:`repro.api.Session` owns the execution backend and the scenario
catalog, and ``session.full_study`` returns the complete study result
with its report and provenance.  Browse the catalog with
``python -m repro.scenarios list``.

Run:
    python examples/quickstart.py
    python examples/quickstart.py --backend process --workers 4
"""

import argparse

from repro.api import Session


def main(backend: str = "serial", n_workers: int = None) -> None:
    with Session(backend=backend, n_workers=n_workers) as session:
        scenario = session.scenario("cooling_stuxnet")
        print(scenario.describe())
        print()
        # full_study runs all three steps; seed 42 reproduces these
        # numbers bit-for-bit on any backend/worker count.
        result = session.full_study("cooling_stuxnet", seed=42)
    print(result.report())

    print("\n--- take-away ---")
    for response in ("tta", "success"):
        targets = result.assessment.recommended_diversification(response)
        print(f"diversify first for {response}: {targets[0]}")
    print(
        f"provenance: spec {result.provenance.spec_digest[:12]}..., "
        f"seed entropy {result.provenance.entropy}, "
        f"backend {result.provenance.backend}, "
        f"repro {result.provenance.library_version}"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="serial", help="measurement execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    args = parser.parse_args()
    main(backend=args.backend, n_workers=args.workers)
