"""Quickstart: the three-step diversity study in ~20 lines.

Runs the paper's Figure-1 pipeline — attack modeling, DoE & measurement,
ANOVA diversity assessment — on the reference data-center cooling SCADA
system against a Stuxnet-like threat, and prints the study report.

Run:
    python examples/quickstart.py
    python examples/quickstart.py --backend process --workers 4
"""

import argparse

import numpy as np

from repro import (
    CampaignConfig,
    DiversityStudy,
    default_catalog,
    scope_cooling_topology,
    stuxnet_like,
)
from repro.scada.components import ComponentKind


def main(backend: str = None, n_workers: int = None) -> None:
    study = DiversityStudy(
        network_factory=scope_cooling_topology,
        catalog=default_catalog(),
        threat=stuxnet_like(),
        kinds=[
            ComponentKind.OPERATING_SYSTEM,
            ComponentKind.PLC_FIRMWARE,
            ComponentKind.PROTOCOL_STACK,
        ],
        design_kind="full",
        two_level=True,  # weakest vs strongest variant per component
        replications=10,
        campaign_config=CampaignConfig(horizon=80.0, tick_interval=0.5),
        backend=backend,  # e.g. "process" parallelises the DoE runs
        n_workers=n_workers,
    )
    result = study.execute(np.random.default_rng(42))
    print(result.report())

    print("\n--- take-away ---")
    for response in ("tta", "success"):
        targets = result.assessment.recommended_diversification(response)
        print(f"diversify first for {response}: {targets[0]}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default=None, help="measurement execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    args = parser.parse_args()
    main(backend=args.backend, n_workers=args.workers)
