"""Quickstart: the three-step diversity study from a named scenario.

Runs the paper's Figure-1 pipeline — attack modeling, DoE & measurement,
ANOVA diversity assessment — by looking the reference case study up in
the scenario catalog (``repro.scenarios``) and printing the study
report.  Browse the catalog with ``python -m repro.scenarios list``.

Run:
    python examples/quickstart.py
    python examples/quickstart.py --backend process --workers 4
"""

import argparse

import numpy as np

from repro import DiversityStudy, get_scenario


def main(backend: str = None, n_workers: int = None) -> None:
    scenario = get_scenario("cooling_stuxnet")
    print(scenario.describe())
    print()
    study = DiversityStudy.from_scenario(
        scenario,
        backend=backend,  # e.g. "process" parallelises the DoE runs
        n_workers=n_workers,
    )
    result = study.execute(np.random.default_rng(42))
    print(result.report())

    print("\n--- take-away ---")
    for response in ("tta", "success"):
        targets = result.assessment.recommended_diversification(response)
        print(f"diversify first for {response}: {targets[0]}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default=None, help="measurement execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    args = parser.parse_args()
    main(backend=args.backend, n_workers=args.workers)
