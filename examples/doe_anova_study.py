"""DoE + ANOVA: the paper's steps 2 and 3 in isolation.

Compares design choices (full factorial, half fraction, Plackett-Burman)
for the same diversity question — *which components drive the security
indicators?* — and shows the fractional designs reach the same ANOVA
conclusion at a fraction of the simulation cost.

Run:
    python examples/doe_anova_study.py
    python examples/doe_anova_study.py --backend process --workers 4
"""

import argparse
import time

import numpy as np

from repro import default_catalog, scope_cooling_topology, stuxnet_like
from repro.attacks.campaign import CampaignConfig
from repro.exec import ExperimentRunner
from repro.core.assessment import assess
from repro.core.measurement import MeasurementPlan
from repro.core.report import format_table
from repro.doe.design import Factor
from repro.doe.factorial import full_factorial
from repro.doe.fractional import fractional_factorial
from repro.doe.plackett_burman import plackett_burman

FACTORS = [
    Factor("operating_system", ("win_legacy", "linux_hardened")),
    Factor("plc_firmware", ("firmware_common", "firmware_signed")),
    Factor("protocol_stack", ("modbus_standard", "modbus_variant_b")),
    Factor("antivirus", ("av_signature", "av_behavioral")),
]


def build_designs():
    designs = {"full 2^4": full_factorial(FACTORS)}
    names = [f.name for f in FACTORS]
    frac, info = fractional_factorial(names, ["D=ABC"])
    # Relabel coded levels with the concrete variants.
    from repro.doe.design import Design, Run

    runs = []
    for run in frac.runs:
        settings = {
            f.name: f.levels[0 if run[f.name] == -1 else 1] for f in FACTORS
        }
        runs.append(Run(settings))
    designs[f"2^(4-1) res {info.resolution}"] = Design(
        factors=list(FACTORS), runs=runs, name=frac.name
    )
    designs["Plackett-Burman N=8"] = plackett_burman(FACTORS)
    return designs


def main(backend: str = "serial", n_workers: int = None) -> None:
    # Any explicit runner uses spawn-per-replication seeding, so the
    # numbers below are identical for every backend/worker choice.
    runner = ExperimentRunner(backend, n_workers)
    catalog = default_catalog()
    threat = stuxnet_like()
    config = CampaignConfig(horizon=80.0, tick_interval=0.5)

    summary = []
    for label, design in build_designs().items():
        started = time.perf_counter()
        plan = MeasurementPlan(
            scope_cooling_topology, catalog, threat, design,
            replications=8, campaign_config=config,
        )
        measurement = plan.execute(rng=11, runner=runner)
        assessment = assess(measurement, responses=["tta"])
        elapsed = time.perf_counter() - started
        table = assessment.anova_tables["tta"]
        top = assessment.ranking("tta")[0]
        summary.append(
            (label, design.n_runs, len(measurement.records),
             f"{elapsed:.1f}s", top.component, f"{100 * top.allocation:.1f}%")
        )
        print(f"\n===== {label} ({design.n_runs} runs) =====")
        print(table.format_table())

    print("\n===== summary =====")
    print(
        format_table(
            ["design", "runs", "campaign sims", "wall time",
             "top component", "allocation"],
            summary,
        )
    )
    print("\nAll designs converge on the same diversification target — the"
          "\nscreening designs at a fraction of the measurement cost, which"
          "\nis exactly the role DoE plays in the paper's step 2.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="serial", help="measurement execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    args = parser.parse_args()
    main(backend=args.backend, n_workers=args.workers)
