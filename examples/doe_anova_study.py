"""DoE + ANOVA: the paper's steps 2 and 3 in isolation.

Compares design choices (full factorial, half fraction, Plackett-Burman)
for the same diversity question — *which components drive the security
indicators?* — by running the three ``doe-sweep`` scenarios of the
catalog through one :class:`repro.api.Session`, and shows the screening
designs reach the same ANOVA conclusion at a fraction of the simulation
cost.

Run:
    python examples/doe_anova_study.py
    python examples/doe_anova_study.py --backend process --workers 4
"""

import argparse
import time

from repro.api import Session
from repro.core.report import format_table


def main(backend: str = "serial", n_workers: int = None) -> None:
    # The session owns the runner; for the same seed the numbers below
    # are identical for every backend/worker choice.
    summary = []
    with Session(backend=backend, n_workers=n_workers) as session:
        for scenario in session.scenarios(tag="doe-sweep"):
            started = time.perf_counter()
            result = session.full_study(scenario, seed=11)
            elapsed = time.perf_counter() - started
            table = result.assessment.anova_tables["tta"]
            top = result.assessment.ranking("tta")[0]
            summary.append(
                (scenario.name, result.design.n_runs,
                 len(result.table), f"{elapsed:.1f}s",
                 top.component, f"{100 * top.allocation:.1f}%")
            )
            print(
                f"\n===== {scenario.title} "
                f"({result.design.n_runs} runs) ====="
            )
            print(table.format_table())

    print("\n===== summary =====")
    print(
        format_table(
            ["scenario", "runs", "campaign sims", "wall time",
             "top component", "allocation"],
            summary,
        )
    )
    print("\nAll designs converge on the same diversification target — the"
          "\nscreening designs at a fraction of the measurement cost, which"
          "\nis exactly the role DoE plays in the paper's step 2.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="serial", help="measurement execution backend",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width for parallel backends",
    )
    args = parser.parse_args()
    main(backend=args.backend, n_workers=args.workers)
