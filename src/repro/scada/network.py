"""Zoned SCADA network topology.

Hosts live in Purdue-style zones (enterprise, DMZ, supervisory, control,
field).  Links connect hosts; traffic crossing zone boundaries is subject
to :class:`FirewallRule` filtering.  Attack propagation queries the
network for which hosts an infected node can reach with a given vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.scada.components import Host, HostRole


class Zone(Enum):
    """Purdue-model zones, highest (enterprise) to lowest (field)."""

    ENTERPRISE = 4
    DMZ = 3
    SUPERVISORY = 2
    CONTROL = 1
    FIELD = 0


@dataclass(frozen=True)
class FirewallRule:
    """An allow rule for cross-zone traffic.

    Traffic between different zones is **denied by default**; a rule
    whitelists a (source zone, destination zone, service) triple.

    Attributes:
        source: Originating zone.
        destination: Target zone.
        service: Service label (e.g. ``"modbus"``, ``"smb"``,
            ``"historian"``); ``"*"`` allows every service.
    """

    source: Zone
    destination: Zone
    service: str = "*"

    def permits(self, source: Zone, destination: Zone, service: str) -> bool:
        """Whether this rule allows the given flow."""
        if source != self.source or destination != self.destination:
            return False
        return self.service == "*" or self.service == service


class SCADANetwork:
    """The monitoring-and-control network.

    Hosts are placed into zones and linked; links carry service labels.
    """

    def __init__(self, name: str = "scada") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._hosts: Dict[str, Host] = {}
        self._zones: Dict[str, Zone] = {}
        self._rules: List[FirewallRule] = []

    @property
    def hosts(self) -> List[Host]:
        """All hosts, in insertion order."""
        return list(self._hosts.values())

    @property
    def host_names(self) -> List[str]:
        """All host names, in insertion order."""
        return list(self._hosts)

    def add_host(self, host: Host, zone: Zone) -> Host:
        """Add a host to a zone.

        Raises:
            ValueError: On duplicate host names.
        """
        if host.name in self._hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        self._zones[host.name] = zone
        self._graph.add_node(host.name)
        return host

    def host(self, name: str) -> Host:
        """Look up a host.

        Raises:
            KeyError: If absent.
        """
        return self._hosts[name]

    def zone_of(self, name: str) -> Zone:
        """Zone of host ``name``."""
        return self._zones[name]

    def hosts_in_zone(self, zone: Zone) -> List[Host]:
        """Hosts placed in ``zone``."""
        return [h for h in self._hosts.values() if self._zones[h.name] == zone]

    def hosts_with_role(self, role: HostRole) -> List[Host]:
        """Hosts with the given role."""
        return [h for h in self._hosts.values() if h.role == role]

    def connect(self, a: str, b: str, services: Sequence[str] = ("*",)) -> None:
        """Link two hosts, carrying the given service labels.

        Raises:
            KeyError: If either host is unknown.
        """
        if a not in self._hosts or b not in self._hosts:
            missing = a if a not in self._hosts else b
            raise KeyError(f"unknown host {missing!r}")
        self._graph.add_edge(a, b, services=set(services))

    def allow(self, source: Zone, destination: Zone, service: str = "*") -> None:
        """Add a (symmetric-use) firewall allow rule for a zone crossing."""
        self._rules.append(FirewallRule(source, destination, service))

    def link_services(self, a: str, b: str) -> Set[str]:
        """Service labels on the a-b link (empty set when unlinked)."""
        if self._graph.has_edge(a, b):
            return set(self._graph.edges[a, b]["services"])
        return set()

    def flow_allowed(self, source: str, destination: str, service: str) -> bool:
        """Whether a direct flow is possible.

        The hosts must be linked, the link must carry the service (or
        ``"*"``), and — when the hosts are in different zones — some
        firewall rule must whitelist the crossing.
        """
        services = self.link_services(source, destination)
        if not services:
            return False
        if "*" not in services and service not in services:
            return False
        src_zone = self._zones[source]
        dst_zone = self._zones[destination]
        if src_zone == dst_zone:
            return True
        return any(r.permits(src_zone, dst_zone, service) for r in self._rules)

    def neighbors(self, name: str) -> List[str]:
        """Directly linked hosts."""
        return list(self._graph.neighbors(name))

    def reachable_targets(self, source: str, service: str) -> List[str]:
        """Hosts one hop away reachable with ``service`` from ``source``."""
        return [
            other
            for other in self._graph.neighbors(source)
            if self.flow_allowed(source, other, service)
        ]

    def attack_surface(
        self, compromised: Iterable[str], service: str
    ) -> List[Tuple[str, str]]:
        """(source, target) pairs the attacker can currently exercise.

        Targets already compromised are excluded.
        """
        compromised = set(compromised)
        pairs: List[Tuple[str, str]] = []
        for source in compromised:
            for target in self.reachable_targets(source, service):
                if target not in compromised:
                    pairs.append((source, target))
        return pairs

    def shortest_zone_path(self, source: str, target: str) -> Optional[List[str]]:
        """Shortest link path between two hosts (ignoring firewalls)."""
        try:
            return nx.shortest_path(self._graph, source, target)
        except nx.NetworkXNoPath:
            return None

    def validate(self) -> List[str]:
        """Sanity-check the topology; returns a list of warnings.

        Checks for isolated hosts and hosts with unfilled role slots.
        """
        warnings: List[str] = []
        for host in self._hosts.values():
            if self._graph.degree(host.name) == 0:
                warnings.append(f"host {host.name!r} has no links")
            missing = host.missing_slots()
            if missing:
                kinds = ", ".join(k.value for k in missing)
                warnings.append(
                    f"host {host.name!r} missing component slots: {kinds}"
                )
        return warnings
