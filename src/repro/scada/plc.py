"""Programmable logic controllers with scan-cycle execution.

A :class:`PLC` holds registers and coils and executes a
:class:`LadderProgram` — an ordered list of :class:`Rung` objects, each a
condition over the register image plus actions applied when it holds.
The PLC exposes a Modbus-style service interface (read/write registers)
and a vendor ``REPROGRAM`` operation.  Reprogramming is how a
Stuxnet-like payload replaces the control logic; whether the attempt
succeeds depends on the firmware variant's exploitability and on protocol
dialect compatibility, both enforced by the attack simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.scada.protocol import (
    FunctionCode,
    ModbusDialect,
    ModbusFrame,
    ProtocolError,
    STANDARD_DIALECT,
)

RegisterImage = Dict[int, int]
Condition = Callable[[RegisterImage], bool]
Action = Callable[[RegisterImage], None]


@dataclass
class Rung:
    """One ladder rung: when ``condition`` holds, apply ``action``.

    Attributes:
        name: Rung label.
        condition: Predicate over the register image.
        action: Mutation of the register image.
    """

    name: str
    condition: Condition
    action: Action


@dataclass
class LadderProgram:
    """An ordered list of rungs executed each scan cycle.

    Attributes:
        name: Program label (e.g. ``"cooling_control_v1"``).
        rungs: The rungs, evaluated top to bottom every scan.
    """

    name: str
    rungs: List[Rung] = field(default_factory=list)

    def scan(self, registers: RegisterImage) -> None:
        """Execute one scan cycle over ``registers`` (in place)."""
        for rung in self.rungs:
            if rung.condition(registers):
                rung.action(registers)


class PLC:
    """A programmable logic controller.

    Attributes:
        name: Controller name.
        unit: Protocol unit identifier.
        dialect: Protocol dialect the controller's stack speaks.
        program: Currently loaded ladder program.
        firmware_variant: Firmware variant name (diversity catalog key).
    """

    def __init__(
        self,
        name: str,
        unit: int,
        program: LadderProgram,
        dialect: ModbusDialect = STANDARD_DIALECT,
        firmware_variant: str = "firmware_a",
    ) -> None:
        self.name = name
        self.unit = unit
        self.dialect = dialect
        self.program = program
        self.firmware_variant = firmware_variant
        self.registers: RegisterImage = {}
        self.original_program = program
        self.reprogram_count = 0
        self._io_log: List[Tuple[str, ModbusFrame]] = []

    @property
    def compromised(self) -> bool:
        """Whether the running program differs from the original."""
        return self.program is not self.original_program

    def read_register(self, address: int) -> int:
        """Direct register read (0 when never written)."""
        return self.registers.get(address, 0)

    def write_register(self, address: int, value: int) -> None:
        """Direct register write.

        Raises:
            ValueError: On out-of-range values.
        """
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"register value out of range: {value}")
        self.registers[address] = value

    def scan_cycle(self) -> None:
        """Run one scan of the loaded program."""
        self.program.scan(self.registers)

    def handle_frame(self, raw: bytes, sender_dialect: ModbusDialect) -> ModbusFrame:
        """Process an incoming wire frame.

        The frame is decoded with the *PLC's own* dialect — a sender
        speaking a different dialect gets a :class:`ProtocolError`, which
        is precisely how protocol diversity stops a payload crafted for
        another stack.

        Args:
            raw: Wire bytes.
            sender_dialect: Unused for decoding (the PLC cannot know it);
                kept for trace purposes.

        Returns:
            A response frame.

        Raises:
            ProtocolError: On undecodable frames or wrong unit id.
        """
        from repro.scada.protocol import decode_frame  # local to avoid cycle

        frame = decode_frame(raw, self.dialect)
        if frame.unit != self.unit:
            raise ProtocolError(
                f"frame for unit {frame.unit}, this PLC is unit {self.unit}"
            )
        self._io_log.append(("rx", frame))
        return self._execute(frame)

    def _execute(self, frame: ModbusFrame) -> ModbusFrame:
        if frame.function in (
            FunctionCode.READ_HOLDING_REGISTERS,
            FunctionCode.READ_INPUT_REGISTERS,
        ):
            values = tuple(
                self.read_register(frame.address + i) for i in range(frame.count)
            )
            return ModbusFrame(
                unit=self.unit,
                function=frame.function,
                address=frame.address,
                values=values,
                count=frame.count,
            )
        if frame.function in (
            FunctionCode.WRITE_SINGLE_REGISTER,
            FunctionCode.WRITE_MULTIPLE_REGISTERS,
        ):
            for i, value in enumerate(frame.values):
                self.write_register(frame.address + i, value)
            return ModbusFrame(
                unit=self.unit,
                function=frame.function,
                address=frame.address,
                values=frame.values,
                count=len(frame.values),
            )
        if frame.function == FunctionCode.REPROGRAM:
            raise ProtocolError(
                "REPROGRAM over the wire requires load_program() via an "
                "engineering session"
            )
        raise ProtocolError(f"unsupported function {frame.function.value}")

    def load_program(self, program: LadderProgram) -> None:
        """Replace the control logic (engineering/reprogram operation)."""
        self.program = program
        self.reprogram_count += 1

    def restore_program(self) -> None:
        """Reload the original (legitimate) program."""
        self.program = self.original_program


def threshold_controller(
    name: str,
    sensor_register: int,
    actuator_register: int,
    on_threshold: int,
    off_threshold: int,
    on_value: int = 1,
    off_value: int = 0,
) -> LadderProgram:
    """A hysteresis (bang-bang) controller program.

    Turns the actuator on when the sensor reading rises above
    ``on_threshold`` and off when it falls below ``off_threshold`` —
    the canonical cooling-control loop shape.

    Raises:
        ValueError: If ``off_threshold > on_threshold``.
    """
    if off_threshold > on_threshold:
        raise ValueError(
            f"off_threshold ({off_threshold}) must be <= on_threshold "
            f"({on_threshold})"
        )
    return LadderProgram(
        name=name,
        rungs=[
            Rung(
                "turn_on",
                condition=lambda regs: regs.get(sensor_register, 0) > on_threshold,
                action=lambda regs: regs.__setitem__(
                    actuator_register, on_value
                ),
            ),
            Rung(
                "turn_off",
                condition=lambda regs: regs.get(sensor_register, 0) < off_threshold,
                action=lambda regs: regs.__setitem__(
                    actuator_register, off_value
                ),
            ),
        ],
    )


def sabotage_program(
    name: str,
    actuator_register: int,
    forced_value: int,
    spoof_register: Optional[int] = None,
    spoof_value: Optional[int] = None,
) -> LadderProgram:
    """A malicious program in the Stuxnet style.

    Forces the actuator to a damaging value every scan and optionally
    overwrites the sensor-mirror register with a benign ``spoof_value``
    so the SCADA master keeps seeing normal readings.
    """
    rungs = [
        Rung(
            "force_actuator",
            condition=lambda regs: True,
            action=lambda regs: regs.__setitem__(actuator_register, forced_value),
        )
    ]
    if spoof_register is not None and spoof_value is not None:
        rungs.append(
            Rung(
                "spoof_reading",
                condition=lambda regs: True,
                action=lambda regs: regs.__setitem__(spoof_register, spoof_value),
            )
        )
    return LadderProgram(name=name, rungs=rungs)
