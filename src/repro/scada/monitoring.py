"""The SCADA master: polling, alarms and spoof detection.

Stuxnet *"is able to fool the SCADA system by emulating regular
monitoring signals"* — i.e. the master keeps reading benign values while
the plant is being damaged.  The master here implements two defenses:

* threshold **alarms** on polled process values, and
* a **spoof detector** running plausibility checks on the reading stream:
  a frozen (zero-variance) signal or a physically impossible rate of
  change raises suspicion.

Time-To-Security-Failure (TTSF) in the campaign simulator is the time
until the master first *perceives* the attack — via an alarm or the spoof
detector — matching the paper's definition ("time between the beginning
of the attack and the perceived attack manifestation").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Alarm:
    """A threshold alarm on a polled register.

    Attributes:
        name: Alarm label.
        register: Register address to watch.
        high: Trip when the (scaled) value exceeds this.
        low: Trip when the value falls below this.
        scale: Multiplier applied to the raw register value before
            comparison (temperatures are stored ×10).
    """

    name: str
    register: int
    high: Optional[float] = None
    low: Optional[float] = None
    scale: float = 1.0

    def tripped(self, raw_value: int) -> bool:
        """Whether ``raw_value`` trips this alarm."""
        value = raw_value * self.scale
        if self.high is not None and value > self.high:
            return True
        if self.low is not None and value < self.low:
            return True
        return False


class SpoofDetector:
    """Plausibility checks on a polled signal.

    Two checks over a sliding window:

    * **frozen signal** — variance below ``frozen_variance`` while the
      window is full (replayed constant readings);
    * **impossible dynamics** — an inter-sample jump larger than
      ``max_rate`` units per poll.

    Attributes:
        window: Number of recent samples examined.
        frozen_variance: Variance threshold for the frozen check.
        max_rate: Maximum plausible change between consecutive samples.
    """

    def __init__(
        self,
        window: int = 20,
        frozen_variance: float = 1e-9,
        max_rate: float = 50.0,
    ) -> None:
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        self.window = window
        self.frozen_variance = frozen_variance
        self.max_rate = max_rate
        self._samples: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> Optional[str]:
        """Feed one sample; returns a finding label or None.

        Returns:
            ``"frozen_signal"``, ``"impossible_rate"`` or ``None``.
        """
        if self._samples and abs(value - self._samples[-1]) > self.max_rate:
            self._samples.append(value)
            return "impossible_rate"
        self._samples.append(value)
        if len(self._samples) == self.window:
            mean = sum(self._samples) / self.window
            var = sum((s - mean) ** 2 for s in self._samples) / self.window
            if var <= self.frozen_variance:
                return "frozen_signal"
        return None

    def reset(self) -> None:
        """Clear the sample window."""
        self._samples.clear()

    def preload(self, values: Sequence[float]) -> None:
        """Replace the sample window with ``values`` (most recent last).

        Restores the detector to the state it would hold after observing
        a known sample stream — :meth:`observe` appends every sample
        unconditionally, so the window content is exactly the stream's
        tail.  Used by the campaign tick-elision fast path when the
        per-tick loop resumes mid-simulation.
        """
        self._samples.clear()
        self._samples.extend(values[-self.window:])


@dataclass
class PollRecord:
    """One master poll observation."""

    time: float
    register: int
    value: int


class SCADAMaster:
    """Polls registers, evaluates alarms, runs spoof detection.

    Attributes:
        name: Master name.
        alarms: Threshold alarms.
        detectors: Spoof detectors per watched register.
    """

    def __init__(
        self,
        name: str = "scada_master",
        alarms: Optional[List[Alarm]] = None,
        spoof_window: int = 20,
        spoof_max_rate: float = 50.0,
    ) -> None:
        self.name = name
        self.alarms = list(alarms or [])
        self._spoof_window = spoof_window
        self._spoof_max_rate = spoof_max_rate
        self.detectors: Dict[int, SpoofDetector] = {}
        self.poll_log: List[PollRecord] = []
        self.findings: List[Tuple[float, str]] = []
        self.first_detection_time: Optional[float] = None

    def watch(self, register: int) -> None:
        """Enable spoof detection on ``register``."""
        if register not in self.detectors:
            self.detectors[register] = SpoofDetector(
                window=self._spoof_window, max_rate=self._spoof_max_rate
            )

    def poll(self, time: float, registers: Dict[int, int]) -> List[str]:
        """One polling cycle over the shared register image.

        Args:
            time: Simulation time of the poll.
            registers: Registers as reported by the PLC (possibly
                spoofed).

        Returns:
            Labels of findings raised during this cycle.
        """
        raised: List[str] = []
        for alarm in self.alarms:
            raw = registers.get(alarm.register, 0)
            self.poll_log.append(PollRecord(time, alarm.register, raw))
            if alarm.tripped(raw):
                raised.append(f"alarm:{alarm.name}")
        for register, detector in self.detectors.items():
            raw = registers.get(register, 0)
            finding = detector.observe(float(raw))
            if finding is not None:
                raised.append(f"spoof:{finding}:r{register}")
        for label in raised:
            self.findings.append((time, label))
            if self.first_detection_time is None:
                self.first_detection_time = time
        return raised

    @property
    def detected(self) -> bool:
        """Whether any finding has been raised."""
        return self.first_detection_time is not None
