"""Modbus-like protocol with diversifiable dialects.

Implements an application-layer register protocol in the style of Modbus
RTU: frames carry a unit identifier, a function code, an address/count or
payload, and a checksum.  A :class:`ModbusDialect` parameterizes the
*wire conventions* — function-code numbering, byte order, checksum
algorithm and a unit-id offset.  Two endpoints interoperate only when
they share a dialect; a crafted frame injected by malware that assumes
dialect A is rejected by a stack speaking dialect B.  This is the
protocol-level diversification mechanism the library exposes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple


class ProtocolError(Exception):
    """Raised when a frame cannot be decoded under a dialect."""


class FunctionCode(Enum):
    """Abstract protocol operations (dialects map these to wire codes)."""

    READ_COILS = "read_coils"
    READ_HOLDING_REGISTERS = "read_holding_registers"
    READ_INPUT_REGISTERS = "read_input_registers"
    WRITE_SINGLE_COIL = "write_single_coil"
    WRITE_SINGLE_REGISTER = "write_single_register"
    WRITE_MULTIPLE_REGISTERS = "write_multiple_registers"
    REPROGRAM = "reprogram"  # the vendor-specific code Stuxnet abused


def crc16_modbus(data: bytes) -> int:
    """Classic Modbus CRC-16 (polynomial 0xA001, init 0xFFFF)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA001
            else:
                crc >>= 1
    return crc


def lrc8(data: bytes) -> int:
    """Longitudinal redundancy check (Modbus ASCII style), widened to 16 bits."""
    total = sum(data) & 0xFF
    value = ((-total) & 0xFF)
    return value | (value << 8)


def fletcher16(data: bytes) -> int:
    """Fletcher-16 checksum."""
    lo = hi = 0
    for byte in data:
        lo = (lo + byte) % 255
        hi = (hi + lo) % 255
    return (hi << 8) | lo


CRC_VARIANTS: Dict[str, Callable[[bytes], int]] = {
    "crc16": crc16_modbus,
    "lrc8": lrc8,
    "fletcher16": fletcher16,
}

# The canonical Modbus function numbering.
_STANDARD_CODES: Dict[FunctionCode, int] = {
    FunctionCode.READ_COILS: 0x01,
    FunctionCode.READ_HOLDING_REGISTERS: 0x03,
    FunctionCode.READ_INPUT_REGISTERS: 0x04,
    FunctionCode.WRITE_SINGLE_COIL: 0x05,
    FunctionCode.WRITE_SINGLE_REGISTER: 0x06,
    FunctionCode.WRITE_MULTIPLE_REGISTERS: 0x10,
    FunctionCode.REPROGRAM: 0x5A,
}


@dataclass(frozen=True)
class ModbusDialect:
    """Wire conventions of a protocol-stack variant.

    Attributes:
        name: Dialect name (the protocol-stack variant name).
        function_codes: Mapping from abstract operation to wire code.
        big_endian: Byte order of 16-bit fields.
        checksum: Key into :data:`CRC_VARIANTS`.
        unit_offset: Constant added to unit ids on the wire.
    """

    name: str
    function_codes: Dict[FunctionCode, int] = field(
        default_factory=lambda: dict(_STANDARD_CODES)
    )
    big_endian: bool = True
    checksum: str = "crc16"
    unit_offset: int = 0

    def __post_init__(self) -> None:
        if self.checksum not in CRC_VARIANTS:
            raise ValueError(
                f"unknown checksum {self.checksum!r}; "
                f"choose from {sorted(CRC_VARIANTS)}"
            )
        codes = list(self.function_codes.values())
        if len(set(codes)) != len(codes):
            raise ValueError(f"dialect {self.name!r} has duplicate wire codes")

    def wire_code(self, function: FunctionCode) -> int:
        """Wire code of ``function``.

        Raises:
            ProtocolError: If the dialect does not support the operation.
        """
        try:
            return self.function_codes[function]
        except KeyError as exc:
            raise ProtocolError(
                f"dialect {self.name!r} does not support {function.value}"
            ) from exc

    def function_of(self, code: int) -> FunctionCode:
        """Inverse of :meth:`wire_code`.

        Raises:
            ProtocolError: On unknown wire codes.
        """
        for function, wire in self.function_codes.items():
            if wire == code:
                return function
        raise ProtocolError(
            f"dialect {self.name!r}: unknown wire function code 0x{code:02X}"
        )


STANDARD_DIALECT = ModbusDialect(name="modbus-standard")


def remapped_dialect(
    name: str,
    code_shift: int = 0x20,
    big_endian: bool = False,
    checksum: str = "fletcher16",
    unit_offset: int = 0x40,
) -> ModbusDialect:
    """A systematically diversified dialect.

    Shifts every wire code by ``code_shift`` (mod 256, avoiding
    collisions), flips byte order and switches the checksum — a cheap
    "protocol randomization" recipe.
    """
    codes = {
        fn: (wire + code_shift) % 0xFF or 0xFF
        for fn, wire in _STANDARD_CODES.items()
    }
    return ModbusDialect(
        name=name,
        function_codes=codes,
        big_endian=big_endian,
        checksum=checksum,
        unit_offset=unit_offset,
    )


@dataclass(frozen=True)
class ModbusFrame:
    """An application frame.

    Attributes:
        unit: Target unit identifier (0-207).
        function: Abstract operation.
        address: Starting register/coil address.
        values: Payload values (written registers or read results);
            empty for pure read *requests* whose ``count`` matters.
        count: Number of registers/coils addressed (reads).
    """

    unit: int
    function: FunctionCode
    address: int
    values: Tuple[int, ...] = ()
    count: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.unit <= 207:
            raise ValueError(f"unit must be in [0, 207], got {self.unit}")
        if not 0 <= self.address <= 0xFFFF:
            raise ValueError(f"address out of range: {self.address}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        for v in self.values:
            if not 0 <= v <= 0xFFFF:
                raise ValueError(f"register value out of range: {v}")


# Codecs precompiled at import: parsing a struct format string per
# packed field dominated the per-message cost, so the 16-bit field
# codecs, the fixed frame header (unit, code, address, count, n_values —
# byte order only affects the 16-bit fields) and per-length value blocks
# are struct.Struct objects compiled once and cached.
_U16 = {True: struct.Struct(">H"), False: struct.Struct("<H")}
_HEADER = {True: struct.Struct(">BBHHB"), False: struct.Struct("<BBHHB")}
_VALUE_BLOCKS: Dict[Tuple[bool, int], struct.Struct] = {}


def _value_block(big_endian: bool, n_values: int) -> struct.Struct:
    """The (cached) codec for a block of ``n_values`` 16-bit registers."""
    try:
        return _VALUE_BLOCKS[(big_endian, n_values)]
    except KeyError:
        codec = struct.Struct(
            f"{'>' if big_endian else '<'}{n_values}H"
        )
        # repro: allow[RACE001] idempotent memo of a deterministic codec; dict assignment is atomic under the GIL
        _VALUE_BLOCKS[(big_endian, n_values)] = codec
        return codec


def _pack16(value: int, big_endian: bool) -> bytes:
    return _U16[big_endian].pack(value)


def _unpack16(data: bytes, big_endian: bool) -> int:
    return _U16[big_endian].unpack(data)[0]


def encode_frame(frame: ModbusFrame, dialect: ModbusDialect) -> bytes:
    """Serialize ``frame`` under ``dialect``.

    Layout: unit(1) code(1) address(2) count(2) n_values(1) values(2·n)
    checksum(2).
    """
    big_endian = dialect.big_endian
    body = _HEADER[big_endian].pack(
        (frame.unit + dialect.unit_offset) & 0xFF,
        dialect.wire_code(frame.function),
        frame.address,
        frame.count,
        len(frame.values),
    )
    if frame.values:
        body += _value_block(big_endian, len(frame.values)).pack(
            *frame.values
        )
    checksum = CRC_VARIANTS[dialect.checksum](body)
    return body + _U16[big_endian].pack(checksum)


def decode_frame(data: bytes, dialect: ModbusDialect) -> ModbusFrame:
    """Parse ``data`` under ``dialect``.

    Raises:
        ProtocolError: On truncation, checksum mismatch, unknown wire
            codes or unit-id range violations — i.e. whenever the sender
            spoke a different dialect.
    """
    if len(data) < 9:
        raise ProtocolError(f"frame too short: {len(data)} bytes")
    big_endian = dialect.big_endian
    body, checksum_bytes = data[:-2], data[-2:]
    expected = CRC_VARIANTS[dialect.checksum](body)
    received = _U16[big_endian].unpack(checksum_bytes)[0]
    if expected != received:
        raise ProtocolError(
            f"checksum mismatch: expected 0x{expected:04X}, "
            f"got 0x{received:04X}"
        )
    unit_raw, code, address, count, n_values = _HEADER[big_endian].unpack_from(
        body
    )
    unit = (unit_raw - dialect.unit_offset) & 0xFF
    if unit > 207:
        raise ProtocolError(f"unit id {unit} out of range after offset")
    function = dialect.function_of(code)
    expected_len = 7 + 2 * n_values
    if len(body) != expected_len:
        raise ProtocolError(
            f"length mismatch: header says {n_values} values, "
            f"frame body is {len(body)} bytes"
        )
    values: Tuple[int, ...] = ()
    if n_values:
        values = _value_block(big_endian, n_values).unpack_from(body, 7)
    return ModbusFrame(
        unit=unit, function=function, address=address, values=values, count=count
    )


def frames_compatible(
    sender: ModbusDialect, receiver: ModbusDialect, frame: ModbusFrame
) -> bool:
    """Whether a frame encoded by ``sender`` decodes cleanly at ``receiver``.

    This is the operational definition of protocol compatibility used by
    the attack simulator: malware carrying a payload for one dialect
    cannot drive a PLC speaking another.
    """
    try:
        decoded = decode_frame(encode_frame(frame, sender), receiver)
    except ProtocolError:
        return False
    return decoded == frame
