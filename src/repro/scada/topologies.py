"""Reference SCADA topologies.

:func:`scope_cooling_topology` builds the system of the paper's case
study: the monitoring-and-control network of a university data-center
cooling plant (SCoPE-like), laid out along the Purdue model:

* **enterprise** — office PCs with internet exposure,
* **DMZ** — historian replica reachable from both sides,
* **supervisory** — SCADA server, HMI stations, engineering workstation,
* **control** — PLCs driving the cooling loop,
* **field** — temperature sensors and actuators.

Default variants are deliberately homogeneous and soft (the
"undiversified baseline"); studies then install alternative variants via
:class:`~repro.diversity.config.SystemConfiguration`.
"""

from __future__ import annotations

from typing import Optional

from repro.scada.components import ComponentKind, Host, HostRole
from repro.scada.network import SCADANetwork, Zone

K = ComponentKind


def scope_cooling_topology(
    n_office_pcs: int = 3,
    n_hmi: int = 2,
    n_plcs: int = 2,
    n_sensors: int = 2,
    n_actuators: int = 2,
    default_os: str = "win_legacy",
    default_firmware: str = "firmware_common",
    default_stack: str = "modbus_standard",
) -> SCADANetwork:
    """The reference cooling-SCADA network.

    Args:
        n_office_pcs: Enterprise-zone PCs.
        n_hmi: HMI stations in the supervisory zone.
        n_plcs: Cooling-loop PLCs in the control zone.
        n_sensors / n_actuators: Field devices.
        default_os / default_firmware / default_stack: The homogeneous
            baseline variants installed everywhere.

    Returns:
        A fully linked :class:`SCADANetwork`.
    """
    net = SCADANetwork("scope-cooling")

    # --- enterprise --------------------------------------------------------
    for i in range(n_office_pcs):
        host = Host(
            f"office_{i}",
            HostRole.CORPORATE_PC,
            usb_ports=True,
            shared_folders=True,
            print_spooler=True,
        )
        host.install(K.OPERATING_SYSTEM, default_os)
        host.install(K.ANTIVIRUS, "av_signature")
        net.add_host(host, Zone.ENTERPRISE)

    # --- DMZ ----------------------------------------------------------------
    historian = Host(
        "historian", HostRole.HISTORIAN, shared_folders=True
    )
    historian.install(K.OPERATING_SYSTEM, default_os)
    historian.install(K.HISTORIAN_SOFTWARE, "historian_common")
    net.add_host(historian, Zone.DMZ)

    fw_outer = Host("fw_outer", HostRole.FIREWALL)
    fw_outer.install(K.FIREWALL_SOFTWARE, "fw_basic")
    net.add_host(fw_outer, Zone.DMZ)

    # --- supervisory --------------------------------------------------------
    scada_server = Host(
        "scada_server",
        HostRole.SCADA_SERVER,
        shared_folders=True,
        print_spooler=True,
    )
    scada_server.install(K.OPERATING_SYSTEM, default_os)
    scada_server.install(K.PROTOCOL_STACK, default_stack)
    scada_server.install(K.ANTIVIRUS, "av_signature")
    net.add_host(scada_server, Zone.SUPERVISORY)

    for i in range(n_hmi):
        hmi = Host(
            f"hmi_{i}",
            HostRole.HMI_STATION,
            usb_ports=True,
            shared_folders=True,
        )
        hmi.install(K.OPERATING_SYSTEM, default_os)
        hmi.install(K.HMI_SOFTWARE, "hmi_common")
        hmi.install(K.PROTOCOL_STACK, default_stack)
        net.add_host(hmi, Zone.SUPERVISORY)

    eng = Host(
        "eng_ws",
        HostRole.ENGINEERING_WORKSTATION,
        usb_ports=True,
        shared_folders=True,
        print_spooler=True,
    )
    eng.install(K.OPERATING_SYSTEM, default_os)
    eng.install(K.ENGINEERING_TOOL, "engtool_common")
    eng.install(K.PROTOCOL_STACK, default_stack)
    net.add_host(eng, Zone.SUPERVISORY)

    fw_inner = Host("fw_inner", HostRole.FIREWALL)
    fw_inner.install(K.FIREWALL_SOFTWARE, "fw_basic")
    net.add_host(fw_inner, Zone.SUPERVISORY)

    # --- control ------------------------------------------------------------
    for i in range(n_plcs):
        plc = Host(f"plc_{i}", HostRole.PLC)
        plc.install(K.PLC_FIRMWARE, default_firmware)
        plc.install(K.PROTOCOL_STACK, default_stack)
        net.add_host(plc, Zone.CONTROL)

    # --- field ----------------------------------------------------------------
    for i in range(n_sensors):
        sensor = Host(f"temp_sensor_{i}", HostRole.SENSOR)
        sensor.install(K.SENSOR_MODEL, "sensor_basic")
        net.add_host(sensor, Zone.FIELD)
    for i in range(n_actuators):
        actuator = Host(f"actuator_{i}", HostRole.ACTUATOR)
        actuator.install(K.ACTUATOR_MODEL, "actuator_basic")
        net.add_host(actuator, Zone.FIELD)

    # --- links --------------------------------------------------------------
    for i in range(n_office_pcs):
        net.connect(f"office_{i}", "historian", ["smb", "historian"])
        for j in range(i + 1, n_office_pcs):
            net.connect(f"office_{i}", f"office_{j}", ["smb", "spooler"])
    net.connect("historian", "scada_server", ["historian", "smb"])
    for i in range(n_hmi):
        net.connect(f"hmi_{i}", "scada_server", ["scada", "smb"])
        net.connect(f"hmi_{i}", "eng_ws", ["smb", "spooler"])
    net.connect("eng_ws", "scada_server", ["scada", "smb", "spooler"])
    for i in range(n_plcs):
        net.connect("scada_server", f"plc_{i}", ["modbus"])
        net.connect("eng_ws", f"plc_{i}", ["modbus"])
    for i in range(n_sensors):
        net.connect(f"plc_{i % n_plcs}", f"temp_sensor_{i}", ["fieldbus"])
    for i in range(n_actuators):
        net.connect(f"plc_{i % n_plcs}", f"actuator_{i}", ["fieldbus"])

    # Firewall appliances sit on the zone boundaries they police.
    net.connect("fw_outer", "historian", ["mgmt"])
    net.connect("fw_inner", "scada_server", ["mgmt"])

    # --- firewall rules -------------------------------------------------------
    net.allow(Zone.ENTERPRISE, Zone.DMZ, "historian")
    net.allow(Zone.ENTERPRISE, Zone.DMZ, "smb")
    net.allow(Zone.DMZ, Zone.SUPERVISORY, "historian")
    net.allow(Zone.DMZ, Zone.SUPERVISORY, "smb")
    net.allow(Zone.SUPERVISORY, Zone.CONTROL, "modbus")
    net.allow(Zone.CONTROL, Zone.FIELD, "fieldbus")
    return net


def smart_grid_feeder(
    n_office_pcs: int = 2,
    n_operator_consoles: int = 2,
    n_feeder_controllers: int = 2,
    n_rtus: int = 3,
    n_pmus: int = 3,
    n_breakers: int = 4,
    default_os: str = "win_legacy",
    default_firmware: str = "firmware_common",
    default_stack: str = "modbus_standard",
) -> SCADANetwork:
    """A distribution-utility feeder SCADA (the paper's smart-grid motivation).

    Control-center zone (EMS server, operator consoles, engineering
    workstation) supervises substation RTUs and feeder controllers
    (modeled with the PLC role, since they expose the same reprogramming
    surface) driving breakers; PMUs provide the loading measurements.
    Pair with :class:`repro.scada.plant.feeder.PowerFeeder` via
    ``CampaignConfig(plant_factory=PowerFeeder)``.

    Args:
        n_office_pcs: Utility-enterprise PCs.
        n_operator_consoles: Control-room consoles.
        n_feeder_controllers: Feeder controllers (PLC role).
        n_rtus: Substation RTUs.
        n_pmus: Phasor/loading measurement units (sensor role).
        n_breakers: Sectionalizing breakers (actuator role).
        default_os / default_firmware / default_stack: Homogeneous
            baseline variants.
    """
    net = SCADANetwork("smart-grid-feeder")

    for i in range(n_office_pcs):
        pc = Host(
            f"utility_pc_{i}",
            HostRole.CORPORATE_PC,
            usb_ports=True,
            shared_folders=True,
            print_spooler=True,
        )
        pc.install(K.OPERATING_SYSTEM, default_os)
        pc.install(K.ANTIVIRUS, "av_signature")
        net.add_host(pc, Zone.ENTERPRISE)

    historian = Host("ems_historian", HostRole.HISTORIAN, shared_folders=True)
    historian.install(K.OPERATING_SYSTEM, default_os)
    historian.install(K.HISTORIAN_SOFTWARE, "historian_common")
    net.add_host(historian, Zone.DMZ)

    fw = Host("fw_perimeter", HostRole.FIREWALL)
    fw.install(K.FIREWALL_SOFTWARE, "fw_basic")
    net.add_host(fw, Zone.DMZ)

    ems = Host(
        "ems_server", HostRole.SCADA_SERVER,
        shared_folders=True, print_spooler=True,
    )
    ems.install(K.OPERATING_SYSTEM, default_os)
    ems.install(K.PROTOCOL_STACK, default_stack)
    ems.install(K.ANTIVIRUS, "av_signature")
    net.add_host(ems, Zone.SUPERVISORY)

    for i in range(n_operator_consoles):
        console = Host(
            f"operator_{i}", HostRole.HMI_STATION,
            usb_ports=True, shared_folders=True,
        )
        console.install(K.OPERATING_SYSTEM, default_os)
        console.install(K.HMI_SOFTWARE, "hmi_common")
        console.install(K.PROTOCOL_STACK, default_stack)
        net.add_host(console, Zone.SUPERVISORY)

    eng = Host(
        "feeder_eng_ws", HostRole.ENGINEERING_WORKSTATION,
        usb_ports=True, shared_folders=True, print_spooler=True,
    )
    eng.install(K.OPERATING_SYSTEM, default_os)
    eng.install(K.ENGINEERING_TOOL, "engtool_common")
    eng.install(K.PROTOCOL_STACK, default_stack)
    net.add_host(eng, Zone.SUPERVISORY)

    for i in range(n_feeder_controllers):
        controller = Host(f"feeder_ctrl_{i}", HostRole.PLC)
        controller.install(K.PLC_FIRMWARE, default_firmware)
        controller.install(K.PROTOCOL_STACK, default_stack)
        net.add_host(controller, Zone.CONTROL)
    for i in range(n_rtus):
        rtu = Host(f"substation_rtu_{i}", HostRole.RTU)
        rtu.install(K.RTU_FIRMWARE, "rtu_common")
        rtu.install(K.PROTOCOL_STACK, default_stack)
        net.add_host(rtu, Zone.CONTROL)

    for i in range(n_pmus):
        pmu = Host(f"pmu_{i}", HostRole.SENSOR)
        pmu.install(K.SENSOR_MODEL, "sensor_basic")
        net.add_host(pmu, Zone.FIELD)
    for i in range(n_breakers):
        breaker = Host(f"breaker_{i}", HostRole.ACTUATOR)
        breaker.install(K.ACTUATOR_MODEL, "actuator_basic")
        net.add_host(breaker, Zone.FIELD)

    # Links.
    for i in range(n_office_pcs):
        net.connect(f"utility_pc_{i}", "ems_historian", ["smb", "historian"])
        for j in range(i + 1, n_office_pcs):
            net.connect(f"utility_pc_{i}", f"utility_pc_{j}",
                        ["smb", "spooler"])
    net.connect("ems_historian", "ems_server", ["historian", "smb"])
    net.connect("fw_perimeter", "ems_historian", ["mgmt"])
    for i in range(n_operator_consoles):
        net.connect(f"operator_{i}", "ems_server", ["scada", "smb"])
        net.connect(f"operator_{i}", "feeder_eng_ws", ["smb", "spooler"])
    net.connect("feeder_eng_ws", "ems_server", ["scada", "smb", "spooler"])
    for i in range(n_feeder_controllers):
        net.connect("ems_server", f"feeder_ctrl_{i}", ["modbus"])
        net.connect("feeder_eng_ws", f"feeder_ctrl_{i}", ["modbus"])
    for i in range(n_rtus):
        net.connect("ems_server", f"substation_rtu_{i}", ["modbus"])
    for i in range(n_pmus):
        net.connect(
            f"feeder_ctrl_{i % n_feeder_controllers}", f"pmu_{i}", ["fieldbus"]
        )
    for i in range(n_breakers):
        net.connect(
            f"feeder_ctrl_{i % n_feeder_controllers}", f"breaker_{i}",
            ["fieldbus"],
        )

    net.allow(Zone.ENTERPRISE, Zone.DMZ, "historian")
    net.allow(Zone.ENTERPRISE, Zone.DMZ, "smb")
    net.allow(Zone.DMZ, Zone.SUPERVISORY, "historian")
    net.allow(Zone.DMZ, Zone.SUPERVISORY, "smb")
    net.allow(Zone.SUPERVISORY, Zone.CONTROL, "modbus")
    net.allow(Zone.CONTROL, Zone.FIELD, "fieldbus")
    return net
