"""SCADA system substrate.

Models the monitoring-and-control system the paper reasons about: hosts
(HMIs, engineering workstations, historians, PLCs, field devices), a
Purdue-style zoned network with firewall rules, a Modbus-like protocol
with diversifiable dialects, PLCs running scan-cycle logic, a SCADA
master with alarms and spoof detection, and the physical plant (the
SCoPE-like data-center cooling loop) being controlled.

Everything here is simulation substrate; no real network I/O occurs.
"""

from repro.scada.components import (
    Component,
    ComponentKind,
    Host,
    HostRole,
)
from repro.scada.monitoring import Alarm, SCADAMaster, SpoofDetector
from repro.scada.network import FirewallRule, SCADANetwork, Zone
from repro.scada.plc import LadderProgram, PLC, Rung
from repro.scada.protocol import (
    CRC_VARIANTS,
    FunctionCode,
    ModbusDialect,
    ModbusFrame,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "Alarm",
    "CRC_VARIANTS",
    "Component",
    "ComponentKind",
    "FirewallRule",
    "FunctionCode",
    "Host",
    "HostRole",
    "LadderProgram",
    "ModbusDialect",
    "ModbusFrame",
    "PLC",
    "ProtocolError",
    "Rung",
    "SCADAMaster",
    "SCADANetwork",
    "SpoofDetector",
    "Zone",
    "decode_frame",
    "encode_frame",
]
