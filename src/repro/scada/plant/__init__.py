"""Physical plant: a data-center cooling loop.

The paper's case study targets *"the cooling system of the SCoPE data
center"*.  We model it as a lumped-parameter thermal system: the server
room accumulates heat from the IT load; CRAC units move heat to a chilled
water loop; the chiller rejects it.  PLC registers drive setpoints and
pump/CRAC enables, so a reprogrammed controller can physically overheat
the room — the "device impairment" end state of a Stuxnet-like attack.
"""

from repro.scada.plant.cooling import CoolingPlant, CoolingPlantConfig
from repro.scada.plant.damage import DamageModel
from repro.scada.plant.feeder import PowerFeeder, PowerFeederConfig
from repro.scada.plant.process import PhysicalProcess
from repro.scada.plant.thermal import ThermalNode

__all__ = [
    "CoolingPlant",
    "CoolingPlantConfig",
    "DamageModel",
    "PhysicalProcess",
    "PowerFeeder",
    "PowerFeederConfig",
    "ThermalNode",
]
