"""The data-center cooling loop.

Two coupled thermal nodes — the server room air and the chilled-water
loop — exchanged heat through CRAC units; the chiller extracts heat from
the loop.  Control inputs (chiller setpoint, CRAC/pump enables) live in a
register map mirroring the PLC's registers, so the plant can be driven
directly by :class:`repro.scada.plc.PLC` register images.

Register map (convention used across the library):

====================  =======================================
register              meaning
====================  =======================================
``REG_ROOM_TEMP``     room temperature ×10 (read by master)
``REG_LOOP_TEMP``     chilled-loop temperature ×10
``REG_CRAC_ENABLE``   number of CRAC units enabled (0..n)
``REG_PUMP_ENABLE``   pump on/off
``REG_CHILLER_SP``    chiller setpoint ×10 (°C)
====================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.scada.plant.damage import DamageModel
from repro.scada.plant.process import PhysicalProcess
from repro.scada.plant.thermal import ThermalNode

REG_ROOM_TEMP = 100
REG_LOOP_TEMP = 101
REG_CRAC_ENABLE = 200
REG_PUMP_ENABLE = 201
REG_CHILLER_SP = 202


@dataclass
class CoolingPlantConfig:
    """Physical parameters of the cooling loop.

    Defaults approximate a mid-size university data center (SCoPE-like):
    ~400 kW IT load, 6 CRAC units of 100 kW each, a chiller sized with
    ~50% headroom.

    Attributes:
        it_load_kw: Constant IT heat load (kW).
        n_crac: Number of CRAC units.
        crac_capacity_kw: Per-CRAC heat-moving capacity (kW) at nominal
            approach temperature.
        chiller_capacity_kw: Chiller heat-rejection capacity (kW).
        room_heat_capacity: Server-room thermal mass (kJ/K).
        loop_heat_capacity: Water-loop thermal mass (kJ/K).
        nominal_setpoint: Chiller leaving-water setpoint (°C).
        initial_room_temp / initial_loop_temp: Starting temperatures (°C).
    """

    it_load_kw: float = 400.0
    n_crac: int = 6
    crac_capacity_kw: float = 100.0
    chiller_capacity_kw: float = 600.0
    room_heat_capacity: float = 8000.0
    loop_heat_capacity: float = 20000.0
    nominal_setpoint: float = 7.0
    initial_room_temp: float = 22.0
    initial_loop_temp: float = 7.0


class CoolingPlant(PhysicalProcess):
    """The simulated cooling loop, driven by a register image.

    Args:
        config: Physical parameters.
        record_history: Keep a per-step history (disable for long
            Monte-Carlo batches).
    """

    #: Largest internally-used integration step (s); larger ``dt`` values
    #: are split to keep the explicit integration stable.
    MAX_SUBSTEP = 30.0

    def __init__(
        self,
        config: Optional[CoolingPlantConfig] = None,
        record_history: bool = True,
    ) -> None:
        self.config = config or CoolingPlantConfig()
        self.record_history = record_history
        cfg = self.config
        self.room = ThermalNode(
            "server_room",
            heat_capacity=cfg.room_heat_capacity,
            temperature=cfg.initial_room_temp,
            ambient_coupling=0.5,
        )
        self.loop = ThermalNode(
            "chilled_loop",
            heat_capacity=cfg.loop_heat_capacity,
            temperature=cfg.initial_loop_temp,
            ambient_coupling=0.05,
        )
        self.time = 0.0
        self.history: List[Dict[str, float]] = []

    def default_registers(self) -> Dict[int, int]:
        """A register image with everything healthy and enabled."""
        cfg = self.config
        return {
            REG_ROOM_TEMP: int(self.room.temperature * 10),
            REG_LOOP_TEMP: int(self.loop.temperature * 10),
            REG_CRAC_ENABLE: cfg.n_crac,
            REG_PUMP_ENABLE: 1,
            REG_CHILLER_SP: int(cfg.nominal_setpoint * 10),
        }

    def step(self, registers: Dict[int, int], dt: float = 1.0) -> None:
        """Advance the plant ``dt`` seconds under the given controls.

        Reads control registers, computes heat flows, updates the two
        thermal nodes, and writes the measured temperatures back into the
        register image (the PLC's input registers).

        Steps longer than :data:`MAX_SUBSTEP` are split internally so the
        explicit integration stays stable regardless of the caller's
        polling period.

        Args:
            registers: The PLC register image (mutated in place).
            dt: Time step in seconds.
        """
        if dt > self.MAX_SUBSTEP:
            remaining = dt
            while remaining > 1e-9:
                sub = min(self.MAX_SUBSTEP, remaining)
                self.step(registers, sub)
                remaining -= sub
            return
        cfg = self.config
        n_crac_on = max(0, min(registers.get(REG_CRAC_ENABLE, 0), cfg.n_crac))
        pump_on = registers.get(REG_PUMP_ENABLE, 0) > 0
        setpoint = registers.get(REG_CHILLER_SP, int(cfg.nominal_setpoint * 10)) / 10.0

        # CRAC heat transfer: proportional to the room/loop temperature
        # approach, saturating at unit capacity; zero without the pump.
        if pump_on and n_crac_on > 0:
            approach = self.room.temperature - self.loop.temperature
            per_unit = max(0.0, min(cfg.crac_capacity_kw, 10.0 * approach))
            crac_kw = per_unit * n_crac_on
        else:
            crac_kw = 0.0

        # Chiller: drives the loop toward the setpoint, capacity-limited.
        # A sabotaged (raised) setpoint makes the chiller idle while the
        # loop heats up.
        if self.loop.temperature > setpoint:
            overshoot = self.loop.temperature - setpoint
            chiller_kw = min(cfg.chiller_capacity_kw, 150.0 * overshoot)
        else:
            chiller_kw = 0.0

        self.room.step(heat_in_kw=cfg.it_load_kw, heat_out_kw=crac_kw, dt=dt)
        self.loop.step(heat_in_kw=crac_kw, heat_out_kw=chiller_kw, dt=dt)
        self.time += dt

        registers[REG_ROOM_TEMP] = max(0, int(self.room.temperature * 10))
        registers[REG_LOOP_TEMP] = max(0, int(self.loop.temperature * 10))
        if not self.record_history:
            return
        self.history.append(
            {
                "time": self.time,
                "room_temp": self.room.temperature,
                "loop_temp": self.loop.temperature,
                "crac_kw": crac_kw,
                "chiller_kw": chiller_kw,
            }
        )

    def run(
        self, registers: Dict[int, int], duration: float, dt: float = 1.0
    ) -> None:
        """Step the plant for ``duration`` seconds."""
        steps = int(duration / dt)
        for _ in range(steps):
            self.step(registers, dt)

    # ------------------------- PhysicalProcess -------------------------

    def stress_level(self) -> float:
        """Room temperature (°C) — what overheat damage integrates."""
        return self.room.temperature

    def sabotage(self, registers: Dict[int, int]) -> None:
        """Stuxnet-style payload: kill the cooling, idle the chiller."""
        registers[REG_CRAC_ENABLE] = 0
        registers[REG_PUMP_ENABLE] = 0
        registers[REG_CHILLER_SP] = 500  # 50 °C setpoint

    @property
    def monitored_register(self) -> int:
        return REG_ROOM_TEMP

    @property
    def alarm_scale(self) -> float:
        return 0.1  # raw ×10 °C -> °C

    @property
    def alarm_threshold(self) -> float:
        return 35.0

    def make_damage_model(self) -> DamageModel:
        """Overheat damage with the module defaults."""
        return DamageModel()
