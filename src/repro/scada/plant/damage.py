"""Overheat damage accumulation.

Device impairment — the final stage of the paper's Stuxnet-like attack
model — is reached when sustained over-temperature accumulates enough
damage.  The model integrates an Arrhenius-flavoured damage rate above a
safe threshold; equipment is *impaired* once the damage integral crosses
1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class DamageModel:
    """Cumulative thermal damage.

    Attributes:
        safe_temperature: Temperature (°C) below which no damage accrues.
        critical_temperature: Temperature at which damage accrues at
            ``critical_rate``.
        critical_rate: Damage per second at the critical temperature
            (e.g. 1/600 → impairment after 10 sustained minutes).
        damage: Accumulated damage in [0, ∞); >= 1.0 means impaired.
    """

    safe_temperature: float = 35.0
    critical_temperature: float = 45.0
    critical_rate: float = 1.0 / 600.0
    damage: float = 0.0
    impairment_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.critical_temperature <= self.safe_temperature:
            raise ValueError(
                "critical_temperature must exceed safe_temperature"
            )
        if self.critical_rate <= 0:
            raise ValueError("critical_rate must be > 0")

    @property
    def impaired(self) -> bool:
        """Whether accumulated damage has crossed 1.0."""
        return self.damage >= 1.0

    def update(self, temperature: float, dt: float, now: float) -> None:
        """Accumulate damage for ``dt`` seconds at ``temperature``.

        The damage rate scales linearly from 0 at ``safe_temperature`` to
        ``critical_rate`` at ``critical_temperature`` and keeps growing
        linearly beyond it.

        Args:
            temperature: Current temperature (°C).
            dt: Interval length (s).
            now: Simulation time at the *end* of the interval, used to
                timestamp impairment.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if temperature > self.safe_temperature:
            span = self.critical_temperature - self.safe_temperature
            severity = (temperature - self.safe_temperature) / span
            self.damage += severity * self.critical_rate * dt
            if self.impaired and self.impairment_time is None:
                self.impairment_time = now
