"""The physical-process interface the campaign simulator drives.

The paper's attack end-state is *device impairment* of whatever physical
process the SCADA system controls — a data-center cooling loop in the
SCoPE case study, "a power distribution system" in the introduction's
smart-grid motivation.  :class:`PhysicalProcess` abstracts the contract
the campaign simulator needs so both plants (and user-defined ones) plug
into the same attack machinery.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro.scada.plant.damage import DamageModel


class PhysicalProcess(ABC):
    """A register-driven physical process under SCADA control."""

    @abstractmethod
    def default_registers(self) -> Dict[int, int]:
        """A healthy initial register image (controls + measurements)."""

    @abstractmethod
    def step(self, registers: Dict[int, int], dt: float) -> None:
        """Advance the process ``dt`` seconds under the register controls.

        Implementations read control registers, update internal state and
        write measurement registers back.
        """

    @abstractmethod
    def stress_level(self) -> float:
        """The scalar stress the damage model integrates.

        For the cooling plant this is the room temperature (°C); for the
        power feeder, the worst line loading (percent of rating).
        """

    @abstractmethod
    def sabotage(self, registers: Dict[int, int]) -> None:
        """Apply the malicious control writes of a reprogrammed controller."""

    @property
    @abstractmethod
    def monitored_register(self) -> int:
        """The measurement register the SCADA master watches (and the
        payload spoofs)."""

    @property
    @abstractmethod
    def alarm_scale(self) -> float:
        """Multiplier from raw register value to engineering units."""

    @property
    @abstractmethod
    def alarm_threshold(self) -> float:
        """Master alarm threshold in engineering units."""

    @abstractmethod
    def make_damage_model(self) -> DamageModel:
        """A damage model calibrated to this process's stress scale."""
