"""A medium-voltage distribution feeder (smart-grid scenario).

The paper's introduction asks: *"what if an attacker overloads a power
distribution system by breaking into a power grid?"*.  This plant models
that scenario: a radial feeder with several sections, sectionalizing
breakers, a switchable tie to a neighbouring feeder and a load-shedding
scheme.  The feeder controller (PLC/RTU) keeps section loading under the
thermal rating; the sabotage payload closes the tie (importing the
neighbour's load), blocks load shedding and forces all sections on —
driving line loading far past the rating, which the damage model
integrates into conductor/transformer impairment.

Register map:

====================  =============================================
register              meaning
====================  =============================================
``REG_LOADING``       worst section loading ×10 (% of rating; meas.)
``REG_DEMAND``        current demand ×10 (% of nominal; meas.)
``REG_TIE_CLOSED``    tie breaker to neighbour feeder (0/1)
``REG_SHED_ENABLE``   load-shedding scheme armed (0/1)
``REG_SECTIONS_ON``   number of energized sections (0..n)
====================  =============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.scada.plant.damage import DamageModel
from repro.scada.plant.process import PhysicalProcess

REG_LOADING = 110
REG_DEMAND = 111
REG_TIE_CLOSED = 210
REG_SHED_ENABLE = 211
REG_SECTIONS_ON = 212


@dataclass
class PowerFeederConfig:
    """Feeder parameters.

    Attributes:
        n_sections: Feeder sections (each with its own breaker).
        nominal_demand: Mean demand as a fraction of section rating.
        demand_swing: Amplitude of the diurnal demand swing (fraction).
        demand_period: Period of the demand cycle in seconds (24 h).
        neighbour_load: Extra loading imported when the tie closes
            (fraction of rating).
        shed_trigger: Loading (fraction) above which the shedding scheme
            drops load.
        shed_amount: Demand fraction removed per shedding action.
        overload_rating: Loading (fraction) treated as 100% thermal
            rating for damage purposes.
    """

    n_sections: int = 4
    nominal_demand: float = 0.7
    demand_swing: float = 0.2
    demand_period: float = 86400.0
    neighbour_load: float = 0.45
    shed_trigger: float = 0.95
    shed_amount: float = 0.2
    overload_rating: float = 1.0


class PowerFeeder(PhysicalProcess):
    """The simulated feeder, driven by a register image."""

    def __init__(self, config: Optional[PowerFeederConfig] = None) -> None:
        self.config = config or PowerFeederConfig()
        self.time = 0.0
        self.loading = self.config.nominal_demand
        self.shed_active = 0.0  # cumulative shed demand fraction

    def default_registers(self) -> Dict[int, int]:
        cfg = self.config
        return {
            REG_LOADING: int(self.loading * 1000),
            REG_DEMAND: int(cfg.nominal_demand * 1000),
            REG_TIE_CLOSED: 0,
            REG_SHED_ENABLE: 1,
            REG_SECTIONS_ON: cfg.n_sections,
        }

    def _demand(self) -> float:
        cfg = self.config
        cycle = math.sin(2.0 * math.pi * self.time / cfg.demand_period)
        return max(0.0, cfg.nominal_demand + cfg.demand_swing * cycle)

    def step(self, registers: Dict[int, int], dt: float) -> None:
        """Advance the feeder ``dt`` seconds under the register controls."""
        cfg = self.config
        self.time += dt
        demand = self._demand()

        sections_on = max(
            0, min(registers.get(REG_SECTIONS_ON, cfg.n_sections),
                   cfg.n_sections)
        )
        tie_closed = registers.get(REG_TIE_CLOSED, 0) > 0
        shed_enabled = registers.get(REG_SHED_ENABLE, 0) > 0

        # Demand concentrates on the energized sections; the tie imports
        # the neighbour feeder's load on top.
        if sections_on == 0:
            loading = 0.0
        else:
            concentration = cfg.n_sections / sections_on
            loading = demand * concentration
            if tie_closed:
                loading += cfg.neighbour_load
            loading -= self.shed_active

        # The shedding scheme reacts (when armed) to overload.
        if shed_enabled and loading > cfg.shed_trigger:
            self.shed_active = min(
                self.shed_active + cfg.shed_amount, demand * 0.6
            )
            loading = max(0.0, loading - cfg.shed_amount)
        elif loading < cfg.shed_trigger * 0.8 and self.shed_active > 0.0:
            # Restore shed load gradually when the feeder recovers.
            self.shed_active = max(0.0, self.shed_active - cfg.shed_amount / 2)

        self.loading = max(0.0, loading)
        registers[REG_LOADING] = int(self.loading * 1000)
        registers[REG_DEMAND] = int(demand * 1000)

    def stress_level(self) -> float:
        """Worst loading as percent of rating (100 = at rating)."""
        return 100.0 * self.loading / self.config.overload_rating

    def sabotage(self, registers: Dict[int, int]) -> None:
        """Overload payload: import the neighbour, disarm shedding."""
        registers[REG_TIE_CLOSED] = 1
        registers[REG_SHED_ENABLE] = 0
        registers[REG_SECTIONS_ON] = max(
            1, self.config.n_sections // 2
        )  # concentrate demand on half the sections

    @property
    def monitored_register(self) -> int:
        return REG_LOADING

    @property
    def alarm_scale(self) -> float:
        return 0.1  # raw ×10 percent -> percent

    @property
    def alarm_threshold(self) -> float:
        return 110.0  # alarm above 110% of rating

    def make_damage_model(self) -> DamageModel:
        """Conductor thermal damage: accrues above 105%, critical at 140%."""
        return DamageModel(
            safe_temperature=105.0,
            critical_temperature=140.0,
            critical_rate=1.0 / 900.0,  # 15 sustained minutes at critical
        )
