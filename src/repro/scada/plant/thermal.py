"""Lumped-parameter thermal nodes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ThermalNode:
    """A thermal mass with a single temperature state.

    ``C · dT/dt = Q_in - Q_out + k·(T_ambient - T)``

    Attributes:
        name: Node name.
        heat_capacity: Thermal capacitance C in kJ/K.
        temperature: Current temperature in °C.
        ambient_coupling: Conductance k to ambient in kW/K.
        ambient_temperature: Ambient temperature in °C.
    """

    name: str
    heat_capacity: float
    temperature: float
    ambient_coupling: float = 0.0
    ambient_temperature: float = 25.0

    def __post_init__(self) -> None:
        if self.heat_capacity <= 0:
            raise ValueError(
                f"node {self.name!r}: heat capacity must be > 0, "
                f"got {self.heat_capacity}"
            )

    def step(self, heat_in_kw: float, heat_out_kw: float, dt: float) -> float:
        """Advance the node by ``dt`` seconds with the given heat flows.

        Args:
            heat_in_kw: Heat added (kW).
            heat_out_kw: Heat removed (kW).
            dt: Time step (s).

        Returns:
            The new temperature (°C).

        Raises:
            ValueError: If ``dt <= 0``.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        ambient_flow = self.ambient_coupling * (
            self.ambient_temperature - self.temperature
        )
        net_kw = heat_in_kw - heat_out_kw + ambient_flow
        self.temperature += net_kw * dt / self.heat_capacity
        return self.temperature
