"""Component taxonomy and hosts.

The paper's diversity argument ranges over *"the variety of monitoring and
control hardware/software components (e.g., sensors, actuators, OSs, PLCs
management tools)"*.  A :class:`Host` is a node of the SCADA network; its
:class:`Component` slots (operating system, PLC firmware, protocol stack,
...) each carry the name of the concrete **variant** installed, which the
diversity catalog (:mod:`repro.diversity.catalog`) maps to exploitability
scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set


class ComponentKind(Enum):
    """Diversifiable component slots of a SCADA host."""

    OPERATING_SYSTEM = "operating_system"
    HMI_SOFTWARE = "hmi_software"
    HISTORIAN_SOFTWARE = "historian_software"
    ENGINEERING_TOOL = "engineering_tool"
    PLC_FIRMWARE = "plc_firmware"
    RTU_FIRMWARE = "rtu_firmware"
    PROTOCOL_STACK = "protocol_stack"
    FIREWALL_SOFTWARE = "firewall_software"
    SENSOR_MODEL = "sensor_model"
    ACTUATOR_MODEL = "actuator_model"
    ANTIVIRUS = "antivirus"


class HostRole(Enum):
    """Functional role of a host in the monitoring/control architecture."""

    CORPORATE_PC = "corporate_pc"
    SCADA_SERVER = "scada_server"
    HMI_STATION = "hmi_station"
    ENGINEERING_WORKSTATION = "engineering_workstation"
    HISTORIAN = "historian"
    PLC = "plc"
    RTU = "rtu"
    SENSOR = "sensor"
    ACTUATOR = "actuator"
    FIREWALL = "firewall"


@dataclass(frozen=True)
class Component:
    """A concrete component installed in a host slot.

    Attributes:
        kind: The slot this component fills.
        variant: Name of the installed variant (key into the diversity
            catalog).
    """

    kind: ComponentKind
    variant: str

    def __post_init__(self) -> None:
        if not self.variant:
            raise ValueError(f"component {self.kind} needs a variant name")


# Default component slots per role: which kinds a host of that role has.
ROLE_SLOTS: Dict[HostRole, List[ComponentKind]] = {
    HostRole.CORPORATE_PC: [
        ComponentKind.OPERATING_SYSTEM,
        ComponentKind.ANTIVIRUS,
    ],
    HostRole.SCADA_SERVER: [
        ComponentKind.OPERATING_SYSTEM,
        ComponentKind.PROTOCOL_STACK,
        ComponentKind.ANTIVIRUS,
    ],
    HostRole.HMI_STATION: [
        ComponentKind.OPERATING_SYSTEM,
        ComponentKind.HMI_SOFTWARE,
        ComponentKind.PROTOCOL_STACK,
    ],
    HostRole.ENGINEERING_WORKSTATION: [
        ComponentKind.OPERATING_SYSTEM,
        ComponentKind.ENGINEERING_TOOL,
        ComponentKind.PROTOCOL_STACK,
    ],
    HostRole.HISTORIAN: [
        ComponentKind.OPERATING_SYSTEM,
        ComponentKind.HISTORIAN_SOFTWARE,
    ],
    HostRole.PLC: [
        ComponentKind.PLC_FIRMWARE,
        ComponentKind.PROTOCOL_STACK,
    ],
    HostRole.RTU: [
        ComponentKind.RTU_FIRMWARE,
        ComponentKind.PROTOCOL_STACK,
    ],
    HostRole.SENSOR: [ComponentKind.SENSOR_MODEL],
    HostRole.ACTUATOR: [ComponentKind.ACTUATOR_MODEL],
    HostRole.FIREWALL: [ComponentKind.FIREWALL_SOFTWARE],
}


@dataclass
class Host:
    """A node of the SCADA system.

    Attributes:
        name: Unique host name.
        role: Functional role.
        components: Installed components, by slot kind.
        usb_ports: Whether removable media can be plugged in (a Stuxnet
            local-propagation vector).
        shared_folders: Whether the host exposes network shares.
        print_spooler: Whether the print-spooler service runs (the
            Stuxnet remote vector).
        resilient: Marks a hardened, highly attack-resilient component
            placement (the paper's "small, strategically distributed,
            number of highly attack-resilient components").
    """

    name: str
    role: HostRole
    components: Dict[ComponentKind, Component] = field(default_factory=dict)
    usb_ports: bool = False
    shared_folders: bool = False
    print_spooler: bool = False
    resilient: bool = False

    def install(self, kind: ComponentKind, variant: str) -> None:
        """Install (or replace) a component variant in a slot."""
        self.components[kind] = Component(kind, variant)

    def variant_of(self, kind: ComponentKind) -> Optional[str]:
        """Variant installed in slot ``kind``, or None."""
        component = self.components.get(kind)
        return component.variant if component else None

    def missing_slots(self) -> List[ComponentKind]:
        """Role-default slots not yet filled."""
        return [
            kind
            for kind in ROLE_SLOTS.get(self.role, [])
            if kind not in self.components
        ]

    @property
    def is_field_device(self) -> bool:
        """Whether the host is a sensor/actuator-level device."""
        return self.role in (HostRole.SENSOR, HostRole.ACTUATOR)

    @property
    def is_computer(self) -> bool:
        """Whether the host runs a general-purpose OS (worm-infectable)."""
        return ComponentKind.OPERATING_SYSTEM in ROLE_SLOTS.get(self.role, [])
