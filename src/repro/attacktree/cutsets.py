"""Minimal cut sets of an attack tree.

A *cut set* is a set of leaf attacks whose joint success achieves the
root goal; a *minimal* cut set has no proper subset with that property.
Minimal cut sets enumerate the qualitatively distinct attack scenarios —
useful for deciding which components diversification should target.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import FrozenSet, List, Set

from repro.attacktree.nodes import (
    AndNode,
    KofNNode,
    LeafAttack,
    Node,
    OrNode,
    SandNode,
)
from repro.attacktree.tree import AttackTree

CutSet = FrozenSet[str]


def _minimize(cut_sets: Set[CutSet]) -> Set[CutSet]:
    """Remove non-minimal sets (absorption law)."""
    minimal: Set[CutSet] = set()
    for cs in sorted(cut_sets, key=len):
        if not any(existing <= cs for existing in minimal):
            minimal.add(cs)
    return minimal


def _cross(groups: List[Set[CutSet]]) -> Set[CutSet]:
    """All unions of one cut set per group (AND composition)."""
    result: Set[CutSet] = {frozenset()}
    for group in groups:
        result = {
            existing | candidate
            for existing in result
            for candidate in group
        }
        result = _minimize(result)
    return result


def _node_cut_sets(node: Node) -> Set[CutSet]:
    if isinstance(node, LeafAttack):
        return {frozenset({node.name})}
    child_sets = [_node_cut_sets(c) for c in node.children()]
    if isinstance(node, (AndNode, SandNode)):
        return _cross(child_sets)
    if isinstance(node, OrNode):
        union: Set[CutSet] = set()
        for group in child_sets:
            union |= group
        return _minimize(union)
    if isinstance(node, KofNNode):
        union: Set[CutSet] = set()
        for combo in combinations(range(len(child_sets)), node.k):
            union |= _cross([child_sets[i] for i in combo])
        return _minimize(union)
    raise TypeError(f"unknown node type {type(node).__name__}")


def minimal_cut_sets(tree: AttackTree) -> List[Set[str]]:
    """All minimal cut sets of ``tree``, smallest first.

    Returns:
        A list of leaf-name sets, sorted by size then lexicographically.
    """
    cut_sets = _node_cut_sets(tree.root)
    return [set(cs) for cs in sorted(cut_sets, key=lambda s: (len(s), sorted(s)))]
