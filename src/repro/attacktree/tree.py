"""The attack-tree container."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.attacktree.nodes import LeafAttack, Node


class AttackTree:
    """An attack tree rooted at a goal node.

    Validates on construction that node names are unique and the
    structure is acyclic (a tree/DAG reached from the root).
    """

    def __init__(self, root: Node) -> None:
        self.root = root
        self._nodes: Dict[str, Node] = {}
        self._collect(root, ancestors=set())

    def _collect(self, node: Node, ancestors: set) -> None:
        if id(node) in ancestors:
            raise ValueError(
                f"cycle detected through node {node.name!r}"
            )
        existing = self._nodes.get(node.name)
        if existing is not None and existing is not node:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        for child in node.children():
            self._collect(child, ancestors | {id(node)})

    def node(self, name: str) -> Node:
        """Look up a node by name.

        Raises:
            KeyError: If absent.
        """
        return self._nodes[name]

    def leaves(self) -> List[LeafAttack]:
        """All leaf attacks, in depth-first order."""
        result: List[LeafAttack] = []
        seen: set = set()

        def walk(node: Node) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            if isinstance(node, LeafAttack):
                result.append(node)
            for child in node.children():
                walk(child)

        walk(self.root)
        return result

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def format_tree(self) -> str:
        """Render the tree as an indented outline."""
        lines: List[str] = []

        def walk(node: Node, depth: int) -> None:
            indent = "  " * depth
            kind = type(node).__name__
            if isinstance(node, LeafAttack):
                lines.append(
                    f"{indent}{node.name} [{kind} p={node.probability} "
                    f"cost={node.cost}]"
                )
            else:
                extra = f" k={node.k}" if hasattr(node, "k") else ""
                lines.append(f"{indent}{node.name} [{kind}{extra}]")
            for child in node.children():
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
