"""Attack-tree node types.

A tree is built from :class:`LeafAttack` steps combined by gates:

* :class:`AndNode` — all children must succeed (performed in parallel).
* :class:`SandNode` — sequential AND: children performed in order, times
  add up.
* :class:`OrNode` — any child suffices; a rational attacker picks one.
* :class:`KofNNode` — at least k of the children must succeed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.stats.distributions import Deterministic, Distribution


@dataclass
class Node:
    """Base class for attack-tree nodes.

    Attributes:
        name: Unique node name within a tree.
    """

    name: str

    def children(self) -> Tuple["Node", ...]:
        """Child nodes (empty for leaves)."""
        return ()


@dataclass
class LeafAttack(Node):
    """An atomic attack step.

    Attributes:
        probability: Success probability of a single attempt.
        cost: Attacker resource cost of attempting the step.
        time: Distribution of the attempt duration.
    """

    probability: float = 1.0
    cost: float = 0.0
    time: Distribution = field(default_factory=lambda: Deterministic(0.0))

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"leaf {self.name!r} probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.cost < 0:
            raise ValueError(f"leaf {self.name!r} cost must be >= 0")


@dataclass
class _GateNode(Node):
    """Shared structure of combinator nodes."""

    _children: Tuple[Node, ...] = ()

    def __init__(self, name: str, children: Sequence[Node]) -> None:
        if len(children) < 1:
            raise ValueError(f"gate {name!r} needs at least one child")
        super().__init__(name)
        self._children = tuple(children)

    def children(self) -> Tuple[Node, ...]:
        return self._children


class AndNode(_GateNode):
    """All children must succeed; children proceed in parallel."""


class SandNode(_GateNode):
    """Sequential AND: children performed in order; durations add."""


class OrNode(_GateNode):
    """Any single child suffices."""


class KofNNode(_GateNode):
    """At least ``k`` of the children must succeed."""

    def __init__(self, name: str, children: Sequence[Node], k: int) -> None:
        super().__init__(name, children)
        if not 1 <= k <= len(children):
            raise ValueError(
                f"k must be in [1, {len(children)}], got {k} for node {name!r}"
            )
        self.k = k
