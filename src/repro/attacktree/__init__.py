"""Attack trees.

The paper lists attack trees among the candidate attack-modeling
formalisms.  This package provides:

* :mod:`repro.attacktree.nodes` — leaf attack steps and AND / OR /
  k-of-n / SAND (sequential AND) combinators.
* :mod:`repro.attacktree.tree` — the tree container with validation.
* :mod:`repro.attacktree.analysis` — bottom-up propagation of success
  probability, attacker cost and expected time, plus Monte-Carlo
  evaluation.
* :mod:`repro.attacktree.cutsets` — minimal cut sets (the distinct
  attack scenarios).
"""

from repro.attacktree.analysis import TreeMetrics, evaluate, monte_carlo
from repro.attacktree.cutsets import minimal_cut_sets
from repro.attacktree.defenses import (
    Defense,
    DefensePortfolio,
    apply_defenses,
    select_defenses,
)
from repro.attacktree.nodes import (
    AndNode,
    KofNNode,
    LeafAttack,
    Node,
    OrNode,
    SandNode,
)
from repro.attacktree.tree import AttackTree

__all__ = [
    "AndNode",
    "AttackTree",
    "Defense",
    "DefensePortfolio",
    "apply_defenses",
    "select_defenses",
    "KofNNode",
    "LeafAttack",
    "Node",
    "OrNode",
    "SandNode",
    "TreeMetrics",
    "evaluate",
    "minimal_cut_sets",
    "monte_carlo",
]
