"""Quantitative attack-tree analysis.

Bottom-up propagation computes, under the usual leaf-independence
assumption:

* **success probability** — AND: product; OR: 1 - Π(1-p); k-of-n:
  Poisson-binomial tail; SAND: product.
* **attacker cost** — AND/SAND: sum of children; OR: cost of the
  cheapest child whose probability is positive (a rational attacker
  picks one branch); k-of-n: sum of the k cheapest children.
* **expected time** — leaves: mean of the time distribution; SAND: sum;
  AND: max (parallel execution); OR: time of the chosen (cheapest)
  branch; k-of-n: k-th smallest child time.

Monte-Carlo evaluation samples leaf outcomes and durations jointly,
giving the full distribution of goal success and time — used when the
closed forms' independence assumptions need checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacktree.nodes import (
    AndNode,
    KofNNode,
    LeafAttack,
    Node,
    OrNode,
    SandNode,
)
from repro.attacktree.tree import AttackTree
from repro.stats.ci import ConfidenceInterval, proportion_ci


@dataclass(frozen=True)
class TreeMetrics:
    """Propagated metrics of a (sub)tree.

    Attributes:
        probability: Goal success probability.
        cost: Expected attacker cost along the rational plan.
        expected_time: Expected duration of the rational plan.
    """

    probability: float
    cost: float
    expected_time: float


def _poisson_binomial_tail(probs: List[float], k: int) -> float:
    """P(at least k of the independent Bernoulli trials succeed)."""
    n = len(probs)
    # Dynamic program over the count distribution.
    dist = np.zeros(n + 1)
    dist[0] = 1.0
    for p in probs:
        dist[1:] = dist[1:] * (1 - p) + dist[:-1] * p
        dist[0] *= 1 - p
    return float(dist[k:].sum())


def evaluate(tree: AttackTree) -> TreeMetrics:
    """Propagate probability, cost and expected time to the root."""
    return _evaluate_node(tree.root)


def _evaluate_node(node: Node) -> TreeMetrics:
    if isinstance(node, LeafAttack):
        return TreeMetrics(node.probability, node.cost, node.time.mean())
    child_metrics = [_evaluate_node(c) for c in node.children()]
    if isinstance(node, AndNode):
        prob = float(np.prod([m.probability for m in child_metrics]))
        cost = sum(m.cost for m in child_metrics)
        time = max(m.expected_time for m in child_metrics)
        return TreeMetrics(prob, cost, time)
    if isinstance(node, SandNode):
        prob = float(np.prod([m.probability for m in child_metrics]))
        cost = sum(m.cost for m in child_metrics)
        time = sum(m.expected_time for m in child_metrics)
        return TreeMetrics(prob, cost, time)
    if isinstance(node, OrNode):
        viable = [m for m in child_metrics if m.probability > 0]
        if not viable:
            return TreeMetrics(0.0, min(m.cost for m in child_metrics),
                               min(m.expected_time for m in child_metrics))
        prob = 1.0 - float(np.prod([1 - m.probability for m in child_metrics]))
        best = min(viable, key=lambda m: m.cost)
        return TreeMetrics(prob, best.cost, best.expected_time)
    if isinstance(node, KofNNode):
        prob = _poisson_binomial_tail(
            [m.probability for m in child_metrics], node.k
        )
        by_cost = sorted(child_metrics, key=lambda m: m.cost)
        cost = sum(m.cost for m in by_cost[: node.k])
        times = sorted(m.expected_time for m in child_metrics)
        time = times[node.k - 1]
        return TreeMetrics(prob, cost, time)
    raise TypeError(f"unknown node type {type(node).__name__}")


def monte_carlo(
    tree: AttackTree,
    replications: int,
    rng: np.random.Generator,
) -> Tuple[ConfidenceInterval, List[float]]:
    """Sample the tree ``replications`` times.

    Each replication draws every leaf's success and duration, then
    evaluates the gates: a SAND node's time is the sum of its children's,
    an AND node's the max, an OR node's the minimum among *successful*
    children, a k-of-n node's the k-th order statistic among successful
    children.

    Returns:
        ``(success_ci, success_times)`` — Wilson CI for goal success and
        the goal completion times of the successful replications.

    Raises:
        ValueError: If ``replications < 1``.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    successes = 0
    times: List[float] = []
    for _ in range(replications):
        ok, t = _sample_node(tree.root, rng)
        if ok:
            successes += 1
            times.append(t)
    return proportion_ci(successes, replications), times


def _sample_node(node: Node, rng: np.random.Generator) -> Tuple[bool, float]:
    if isinstance(node, LeafAttack):
        duration = node.time.sample(rng)
        return bool(rng.random() < node.probability), duration
    outcomes = [_sample_node(c, rng) for c in node.children()]
    if isinstance(node, AndNode):
        ok = all(o for o, _ in outcomes)
        return ok, max(t for _, t in outcomes)
    if isinstance(node, SandNode):
        ok = all(o for o, _ in outcomes)
        return ok, sum(t for _, t in outcomes)
    if isinstance(node, OrNode):
        winners = [t for ok, t in outcomes if ok]
        if winners:
            return True, min(winners)
        return False, max(t for _, t in outcomes)
    if isinstance(node, KofNNode):
        winners = sorted(t for ok, t in outcomes if ok)
        if len(winners) >= node.k:
            return True, winners[node.k - 1]
        return False, max(t for _, t in outcomes)
    raise TypeError(f"unknown node type {type(node).__name__}")
