"""Defense annotations for attack trees.

A :class:`Defense` mitigates specific leaf attacks, multiplying their
success probabilities by a reduction factor at a deployment cost.  The
greedy portfolio selector picks defenses under a budget to minimize the
root success probability — the attack-tree counterpart of the diversity
portfolio in :mod:`repro.core.portfolio`, useful when the evaluation is
framed as "which mitigations" rather than "which variants".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.attacktree.analysis import evaluate
from repro.attacktree.nodes import (
    AndNode,
    KofNNode,
    LeafAttack,
    Node,
    OrNode,
    SandNode,
)
from repro.attacktree.tree import AttackTree


@dataclass(frozen=True)
class Defense:
    """A mitigation applied to one or more leaf attacks.

    Attributes:
        name: Defense name (e.g. ``"signed_firmware"``).
        mitigates: ``{leaf_name: reduction_factor}`` — the leaf's success
            probability is multiplied by the factor (0 = fully blocks,
            1 = no effect).
        cost: Deployment cost.
    """

    name: str
    mitigates: Mapping[str, float]
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.mitigates:
            raise ValueError(f"defense {self.name!r} mitigates nothing")
        for leaf, factor in self.mitigates.items():
            if not 0.0 <= factor <= 1.0:
                raise ValueError(
                    f"defense {self.name!r}: factor for {leaf!r} must be "
                    f"in [0, 1], got {factor}"
                )
        if self.cost < 0:
            raise ValueError(f"defense {self.name!r}: cost must be >= 0")


def _rebuild(node: Node, factors: Mapping[str, float]) -> Node:
    """Copy the tree, scaling mitigated leaf probabilities."""
    if isinstance(node, LeafAttack):
        factor = factors.get(node.name, 1.0)
        return LeafAttack(
            node.name,
            probability=node.probability * factor,
            cost=node.cost,
            time=node.time,
        )
    children = [_rebuild(c, factors) for c in node.children()]
    if isinstance(node, AndNode):
        return AndNode(node.name, children)
    if isinstance(node, SandNode):
        return SandNode(node.name, children)
    if isinstance(node, OrNode):
        return OrNode(node.name, children)
    if isinstance(node, KofNNode):
        return KofNNode(node.name, children, k=node.k)
    raise TypeError(f"unknown node type {type(node).__name__}")


def apply_defenses(
    tree: AttackTree, defenses: Sequence[Defense]
) -> AttackTree:
    """A new tree with all ``defenses`` applied.

    Factors from multiple defenses on the same leaf multiply.

    Raises:
        ValueError: If a defense references a leaf absent from the tree.
    """
    leaf_names = {leaf.name for leaf in tree.leaves()}
    factors: Dict[str, float] = {}
    for defense in defenses:
        for leaf, factor in defense.mitigates.items():
            if leaf not in leaf_names:
                raise ValueError(
                    f"defense {defense.name!r} references unknown leaf "
                    f"{leaf!r}"
                )
            factors[leaf] = factors.get(leaf, 1.0) * factor
    return AttackTree(_rebuild(tree.root, factors))


@dataclass
class DefensePortfolio:
    """A chosen set of defenses and its effect.

    Attributes:
        chosen: Selected defenses in selection order.
        total_cost: Summed cost.
        residual_probability: Root success probability after applying
            the portfolio.
    """

    chosen: List[Defense]
    total_cost: float
    residual_probability: float


def select_defenses(
    tree: AttackTree,
    candidates: Sequence[Defense],
    budget: float,
) -> DefensePortfolio:
    """Greedy defense selection under a budget.

    Repeatedly adds the defense with the best marginal reduction of the
    root success probability per unit cost, until nothing affordable
    improves the tree.

    Raises:
        ValueError: On a negative budget.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    chosen: List[Defense] = []
    remaining = list(candidates)
    spent = 0.0
    current_tree = tree
    current_p = evaluate(current_tree).probability
    improved = True
    while improved and remaining:
        improved = False
        best: Optional[Tuple[float, Defense, AttackTree, float]] = None
        for defense in remaining:
            if spent + defense.cost > budget:
                continue
            trial_tree = apply_defenses(current_tree, [defense])
            p = evaluate(trial_tree).probability
            gain = current_p - p
            if gain <= 0:
                continue
            ratio = gain / max(defense.cost, 1e-9)
            if best is None or ratio > best[0]:
                best = (ratio, defense, trial_tree, p)
        if best is not None:
            __, defense, current_tree, current_p = best
            chosen.append(defense)
            remaining.remove(defense)
            spent += defense.cost
            improved = True
    return DefensePortfolio(
        chosen=chosen, total_cost=spent, residual_probability=current_p
    )
