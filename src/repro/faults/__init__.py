"""repro.faults — seeded, reproducible fault injection for the harness.

The source paper's methodology is software fault injection; this module
turns that lens on the reproduction's own execution layer.  A
:class:`FaultPlan` describes *where* (unit indices or seeded rates) and
*what* (transient crash, hang, worker-process kill, corrupted chunk
payload) to inject, and the exec backends consult it at well-defined
gates.  Three properties make the plans usable in tests and chaos
drills:

* **Seeded and reproducible** — explicit unit indices fire exactly
  where listed; rate-based selection hashes ``(kind, unit index)``
  through a :class:`~numpy.random.SeedSequence` rooted at the plan's
  own ``seed``, so the same plan fires at the same units every run, on
  every backend, independent of scheduling.
* **Attempt-gated** — a fault at unit ``i`` with count ``c`` fires on
  attempts ``0 .. c-1`` and then stands down, so a retrying executor
  converges instead of looping; the ``chaos`` test tier pins that the
  records after convergence are bit-identical to a fault-free run.
* **Out-of-band** — plans ride on :class:`~repro.api.Session` or the
  ``REPRO_FAULT_PLAN`` environment variable, are never on by default,
  and are recorded on :class:`~repro.results.Provenance` *outside* the
  spec digest: injecting faults never changes what experiment was run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exec.resilience import CorruptChunkPayload, TransientWorkerError
from repro.telemetry.core import metric_inc

#: Environment variable holding a fault plan: inline JSON, or ``@path``
#: pointing at a JSON file.  Parsed by :func:`plan_from_env`.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status used by injected worker-process kills (distinctive in
#: pool post-mortems).
KILL_EXIT_CODE = 47

#: Per-kind spawn keys for the seeded rate draws — distinct streams so
#: e.g. crash and hang selections at the same unit are independent.
_KIND_KEYS = {"crash": 1, "hang": 2, "kill": 3, "corrupt": 4}

_UnitSpec = Union[None, Iterable[int], Mapping[int, int]]


class FaultInjectionError(TransientWorkerError):
    """An injected transient crash (retry-safe by construction)."""


def _normalize_units(spec: _UnitSpec, kind: str) -> Dict[int, int]:
    """``{unit index: fire count}`` from an index iterable or mapping."""
    if spec is None:
        return {}
    if isinstance(spec, Mapping):
        items = spec.items()
    else:
        items = ((index, 1) for index in spec)
    out: Dict[int, int] = {}
    for index, count in items:
        index, count = int(index), int(count)
        if index < 0:
            raise ValueError(
                f"{kind}_units indices must be >= 0, got {index}"
            )
        if count < 1:
            raise ValueError(
                f"{kind}_units counts must be >= 1, got {count} "
                f"for unit {index}"
            )
        out[index] = count
    return out


def _check_rate(rate: float, name: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {rate}")


def in_worker_process() -> bool:
    """Whether this code runs in a spawned worker process (safe to
    ``os._exit``) rather than the coordinating interpreter."""
    return multiprocessing.current_process().name != "MainProcess"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected execution faults.

    Unit-targeted faults take an iterable of unit indices (fire once
    each) or a ``{index: count}`` mapping (fire on the first ``count``
    attempts).  Rate-based faults select units by a seeded hash and
    fire on the first attempt only.

    Args:
        crash_units: Units whose work function raises an injected
            :class:`FaultInjectionError` (transient) before running.
        hang_units: Units that sleep ``hang_s`` before running —
            watchdog-timeout fodder.
        kill_units: Units whose *worker process* exits hard
            (``os._exit``), modelling a segfaulting worker; in-process
            backends fall back to a transient crash, since killing the
            coordinator would be a different experiment entirely.
        corrupt_units: Units whose chunk's result payload is replaced
            by a :class:`~repro.exec.resilience.CorruptChunkPayload`
            sentinel on the wire (the whole chunk re-executes).
        crash_rate: Seeded probability of a transient crash per unit.
        hang_rate: Seeded probability of a hang per unit.
        hang_s: Sleep injected by hang faults.
        seed: Entropy of the rate-selection streams (independent of
            every experiment seed).
    """

    crash_units: Mapping[int, int] = field(default_factory=dict)
    hang_units: Mapping[int, int] = field(default_factory=dict)
    kill_units: Mapping[int, int] = field(default_factory=dict)
    corrupt_units: Mapping[int, int] = field(default_factory=dict)
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in ("crash", "hang", "kill", "corrupt"):
            attr = f"{kind}_units"
            object.__setattr__(
                self, attr, _normalize_units(getattr(self, attr), kind)
            )
        _check_rate(self.crash_rate, "crash_rate")
        _check_rate(self.hang_rate, "hang_rate")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")

    # ---- selection ---------------------------------------------------

    def _rate_draw(self, kind: str, index: int) -> float:
        """The seeded uniform deciding a rate fault at ``(kind, index)``.

        A pure function of ``(seed, kind, index)`` — scheduling,
        backend and chunking cannot move where rate faults land.
        """
        state = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_KIND_KEYS[kind], index)
        ).generate_state(1)[0]
        return float(state) / float(2**32)

    def fires(self, kind: str, index: int, attempt: int) -> bool:
        """Whether fault ``kind`` hits unit ``index`` on ``attempt``.

        Explicit units fire while ``attempt < count``; rate-selected
        units fire on attempt 0 only.  Either way a retrying executor
        eventually runs the unit clean.
        """
        count = getattr(self, f"{kind}_units").get(index, 0)
        if attempt < count:
            return True
        rate = getattr(self, f"{kind}_rate", 0.0)
        return bool(
            rate and attempt == 0 and self._rate_draw(kind, index) < rate
        )

    # ---- injection gates (called by the exec backends) ---------------

    def apply_unit_faults(self, index: int, attempt: int) -> None:
        """Fire any pre-execution faults for unit ``index``.

        Called by the worker entry points immediately before the unit's
        work function; may sleep (hang), raise (crash) or exit the
        worker process (kill).
        """
        if self.fires("kill", index, attempt):
            metric_inc("fault.injected.kill")
            if in_worker_process():
                os._exit(KILL_EXIT_CODE)
            raise FaultInjectionError(
                f"injected worker kill at unit {index} "
                f"(in-process backend: demoted to transient crash)"
            )
        if self.fires("hang", index, attempt):
            metric_inc("fault.injected.hang")
            time.sleep(self.hang_s)
        if self.fires("crash", index, attempt):
            metric_inc("fault.injected.crash")
            raise FaultInjectionError(
                f"injected transient crash at unit {index} "
                f"(attempt {attempt})"
            )

    def corrupt_chunk(
        self, unit_indices: Iterable[int], attempt: int
    ) -> Optional[CorruptChunkPayload]:
        """The corruption sentinel for a chunk, or ``None``.

        A chunk's payload is corrupted while any member unit still has
        corruption budget at this attempt.
        """
        indices = tuple(unit_indices)
        if any(self.fires("corrupt", i, attempt) for i in indices):
            metric_inc("fault.injected.corrupt")
            return CorruptChunkPayload(unit_indices=indices)
        return None

    # ---- (de)serialization -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-data form (also the provenance record)."""
        return {
            "crash_units": {str(k): v for k, v in self.crash_units.items()},
            "hang_units": {str(k): v for k, v in self.hang_units.items()},
            "kill_units": {str(k): v for k, v in self.kill_units.items()},
            "corrupt_units": {
                str(k): v for k, v in self.corrupt_units.items()
            },
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "hang_s": self.hang_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or hand-written
        JSON with index lists instead of count mappings)."""
        known = {
            "crash_units", "hang_units", "kill_units", "corrupt_units",
            "crash_rate", "hang_rate", "hang_s", "seed",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields: {', '.join(sorted(unknown))}"
            )
        return cls(**{key: payload[key] for key in known & set(payload)})


def plan_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultPlan]:
    """The :class:`FaultPlan` named by ``REPRO_FAULT_PLAN``, if any.

    The variable holds inline JSON or ``@path`` to a JSON file; unset
    or empty means no injection (the default, always).
    """
    raw = (environ if environ is not None else os.environ).get(
        FAULT_PLAN_ENV, ""
    ).strip()
    if not raw:
        return None
    if raw.startswith("@"):
        with open(raw[1:], "r", encoding="utf-8") as handle:
            raw = handle.read()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{FAULT_PLAN_ENV} holds invalid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"{FAULT_PLAN_ENV} must hold a JSON object, "
            f"got {type(payload).__name__}"
        )
    return FaultPlan.from_dict(payload)


__all__ = [
    "FAULT_PLAN_ENV",
    "KILL_EXIT_CODE",
    "FaultInjectionError",
    "FaultPlan",
    "in_worker_process",
    "plan_from_env",
]
