"""Threat profiles: Stuxnet-like, Duqu-like, Flame-like.

A :class:`ThreatProfile` parameterizes the campaign simulator: which
vectors the malware carries, how fast each stage proceeds, what the goal
is, and how stealthy the payload is.  The paper's future work names Duqu
and Flame as the wider threat models to add; both are included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.attacks.c2 import C2Channel
from repro.attacks.spoof import ConstantSpoofer, ReplaySpoofer, Spoofer
from repro.attacks.vectors import (
    NetworkExploitVector,
    PrintSpoolerVector,
    PropagationVector,
    SharedFolderVector,
    USBVector,
)


@dataclass
class ThreatProfile:
    """A parametric multi-stage threat.

    Attributes:
        name: Threat name.
        goal: ``"impair"`` (sabotage the plant), ``"exfiltrate"`` (steal
            process data) or ``"recon"`` (map the network).
        vectors: Propagation vectors carried.
        entry_rate: Attempt rate of the initial infection (per time
            unit, against each candidate entry host).
        activation_delay_rate: Rate of the dropper activating after
            landing (exponential).
        escalation_rate: Privilege-escalation attempt rate per infected
            host.
        reprogram_rate: Controller-reprogramming attempt rate once an
            attack position is established.
        exfiltration_target: Process-data volume (abstract units) that
            must be exfiltrated for a ``"exfiltrate"`` goal.
        exfiltration_rate: Volume exfiltrated per time unit per rooted
            host with historian/SCADA access.
        recon_fraction: Fraction of hosts that must be compromised for a
            ``"recon"`` goal.
        spoofer_kind: ``"replay"``, ``"constant"`` or ``"none"`` — how
            the payload emulates monitoring signals during sabotage.
        c2: Command-and-control channel (None = fully autonomous).
        requires_engineering_host: Whether controller reprogramming can
            only be launched from a compromised engineering workstation
            (true for Stuxnet, which abused the PLC programming suite).
    """

    name: str
    goal: str
    vectors: List[PropagationVector] = field(default_factory=list)
    entry_rate: float = 0.1
    activation_delay_rate: float = 2.0
    escalation_rate: float = 1.0
    reprogram_rate: float = 0.5
    exfiltration_target: float = 10.0
    exfiltration_rate: float = 1.0
    recon_fraction: float = 0.75
    spoofer_kind: str = "replay"
    c2: Optional[C2Channel] = None
    requires_engineering_host: bool = True

    def __post_init__(self) -> None:
        if self.goal not in ("impair", "exfiltrate", "recon"):
            raise ValueError(f"unknown goal {self.goal!r}")
        for rate_name in (
            "entry_rate",
            "activation_delay_rate",
            "escalation_rate",
            "reprogram_rate",
            "exfiltration_rate",
        ):
            if getattr(self, rate_name) <= 0:
                raise ValueError(f"{rate_name} must be > 0")
        if self.spoofer_kind not in ("replay", "constant", "none"):
            raise ValueError(f"unknown spoofer_kind {self.spoofer_kind!r}")
        if not 0.0 < self.recon_fraction <= 1.0:
            raise ValueError("recon_fraction must be in (0, 1]")

    def make_spoofer(self) -> Optional[Spoofer]:
        """Instantiate the payload's spoofing strategy."""
        if self.spoofer_kind == "replay":
            return ReplaySpoofer()
        if self.spoofer_kind == "constant":
            return ConstantSpoofer()
        return None


def stuxnet_like(
    entry_rate: float = 0.15,
    reprogram_rate: float = 0.6,
) -> ThreatProfile:
    """The paper's principal threat: sabotage with signal spoofing.

    USB + shared-folder + print-spooler propagation, C2 beaconing,
    reprogramming launched from a compromised engineering workstation,
    replay spoofing of monitoring signals.
    """
    return ThreatProfile(
        name="stuxnet_like",
        goal="impair",
        vectors=[
            USBVector(rate=0.25),
            SharedFolderVector(rate=0.5),
            PrintSpoolerVector(rate=0.35),
            NetworkExploitVector(rate=0.2),
        ],
        entry_rate=entry_rate,
        activation_delay_rate=2.0,
        escalation_rate=1.2,
        reprogram_rate=reprogram_rate,
        spoofer_kind="replay",
        c2=C2Channel(beacon_interval=6.0, base_detection_probability=0.015),
        requires_engineering_host=True,
    )


def duqu_like(entry_rate: float = 0.12) -> ThreatProfile:
    """Espionage: exfiltrate process data, no physical payload."""
    return ThreatProfile(
        name="duqu_like",
        goal="exfiltrate",
        vectors=[
            SharedFolderVector(rate=0.45),
            NetworkExploitVector(rate=0.3),
        ],
        entry_rate=entry_rate,
        activation_delay_rate=1.5,
        escalation_rate=1.0,
        exfiltration_target=8.0,
        exfiltration_rate=1.5,
        spoofer_kind="none",
        c2=C2Channel(beacon_interval=3.0, base_detection_probability=0.03),
        requires_engineering_host=False,
    )


def flame_like(entry_rate: float = 0.1) -> ThreatProfile:
    """Reconnaissance: survey a large fraction of the hosts."""
    return ThreatProfile(
        name="flame_like",
        goal="recon",
        vectors=[
            USBVector(rate=0.2),
            SharedFolderVector(rate=0.55),
            NetworkExploitVector(rate=0.35),
        ],
        entry_rate=entry_rate,
        activation_delay_rate=1.8,
        escalation_rate=0.8,
        recon_fraction=0.6,
        spoofer_kind="none",
        c2=C2Channel(beacon_interval=2.0, base_detection_probability=0.02),
        requires_engineering_host=False,
    )
