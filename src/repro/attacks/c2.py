"""Command-and-control channel.

Stuxnet *"communicates with a remote command and control server"*.  The
channel beacons periodically from compromised hosts in outward-facing
zones; every beacon is a detection opportunity for network monitoring,
with a catch probability that depends on the firewall variant deployed at
the perimeter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.diversity.catalog import VariantCatalog
from repro.scada.components import ComponentKind
from repro.scada.network import SCADANetwork, Zone


@dataclass
class C2Channel:
    """Periodic beaconing with per-beacon detection.

    Attributes:
        beacon_interval: Time between beacons.
        base_detection_probability: Per-beacon detection probability when
            only a basic perimeter is present.
    """

    beacon_interval: float = 4.0
    base_detection_probability: float = 0.02

    def __post_init__(self) -> None:
        if self.beacon_interval <= 0:
            raise ValueError("beacon_interval must be > 0")
        if not 0.0 <= self.base_detection_probability <= 1.0:
            raise ValueError("base_detection_probability must be in [0, 1]")

    def detection_probability(
        self, network: SCADANetwork, catalog: VariantCatalog
    ) -> float:
        """Per-beacon detection probability given the deployed perimeter.

        A deep-packet-inspection firewall variant (low ``fw_bypass``
        exploitability) raises the catch rate: we scale the base
        probability by ``(1 - fw_bypass)`` lift of the *best* firewall
        deployed.
        """
        best_bypass = 1.0
        for host in network.hosts:
            variant = host.variant_of(ComponentKind.FIREWALL_SOFTWARE)
            if variant is not None:
                bypass = catalog.success_probability(
                    ComponentKind.FIREWALL_SOFTWARE, variant, "fw_bypass"
                )
                best_bypass = min(best_bypass, bypass)
        lift = 1.0 + 4.0 * (1.0 - best_bypass)
        return min(1.0, self.base_detection_probability * lift)

    def first_detection_time(
        self,
        start_time: float,
        horizon: float,
        network: SCADANetwork,
        catalog: VariantCatalog,
        rng: np.random.Generator,
    ) -> Optional[float]:
        """Sample the first beacon-detection time after ``start_time``.

        Returns:
            Detection time, or None if no beacon is caught before the
            horizon.
        """
        p = self.detection_probability(network, catalog)
        if p <= 0.0:
            return None
        t = start_time
        while True:
            t += self.beacon_interval
            if t > horizon:
                return None
            if rng.random() < p:
                return t
