"""Monitoring-signal spoofing.

Stuxnet *"can remain undetected for many months because it is able to
fool the SCADA system by emulating regular monitoring signals"*.  A
:class:`Spoofer` intercepts the value the PLC reports to the master while
sabotage is in progress:

* :class:`ConstantSpoofer` — holds the last healthy value.  Cheap, but a
  frozen signal is exactly what
  :class:`~repro.scada.monitoring.SpoofDetector` looks for.
* :class:`ReplaySpoofer` — records a window of healthy samples and
  replays it with optional jitter; defeats the frozen-signal check, can
  still trip the rate check at the loop seam if the recording is short.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np


class Spoofer(ABC):
    """Strategy for emulating regular monitoring signals."""

    @abstractmethod
    def record(self, value: float) -> None:
        """Observe one healthy sample (pre-sabotage learning phase)."""

    @abstractmethod
    def emit(self, rng: np.random.Generator) -> float:
        """Produce the next spoofed sample (sabotage phase)."""


class ConstantSpoofer(Spoofer):
    """Reports the last healthy value forever."""

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def record(self, value: float) -> None:
        self._last = value

    def emit(self, rng: np.random.Generator) -> float:
        if self._last is None:
            return 0.0
        return self._last


class ReplaySpoofer(Spoofer):
    """Replays a recorded window of healthy samples in a loop.

    Attributes:
        capacity: Maximum recorded samples.
        jitter: Standard deviation of Gaussian noise added on replay
            (defeats exact-repetition detectors).
    """

    def __init__(self, capacity: int = 120, jitter: float = 0.05) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.capacity = capacity
        self.jitter = jitter
        self._recording: List[float] = []
        self._cursor = 0

    def record(self, value: float) -> None:
        if len(self._recording) < self.capacity:
            self._recording.append(value)
        else:
            # Rolling window: keep the freshest samples.
            self._recording.pop(0)
            self._recording.append(value)

    def emit(self, rng: np.random.Generator) -> float:
        if not self._recording:
            return 0.0
        value = self._recording[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._recording)
        if self.jitter > 0:
            value += float(rng.normal(0.0, self.jitter))
        return value

    @property
    def samples_recorded(self) -> int:
        """Number of healthy samples currently held."""
        return len(self._recording)
