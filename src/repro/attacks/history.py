"""Attack-history records and threat calibration.

The paper's first source for stage probabilities is *"previously
documented attack history"*.  This module defines the record format such
history takes in this library, a synthetic-history generator (standing
in for proprietary incident databases, per the substitution rule in
DESIGN.md), and a calibrator that turns a history into per-stage rates
and success probabilities ready to parameterize a
:class:`~repro.attacks.profiles.ThreatProfile` or the stage-chain SAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.attacks.profiles import ThreatProfile
from repro.attacks.stages import AttackStage
from repro.stats.fitting import fit_exponential

#: Stage-machine steps recorded per incident, in causal order.
HISTORY_STEPS = ("entry", "activation", "escalation", "propagation",
                 "reprogram")


@dataclass(frozen=True)
class IncidentRecord:
    """One documented incident.

    Attributes:
        incident_id: Identifier.
        step_durations: Observed duration of each completed step
            (hours); steps the incident never reached are absent.
        step_success: Whether each *attempted* step eventually
            succeeded; the first False marks where the incident died.
    """

    incident_id: str
    step_durations: Mapping[str, float]
    step_success: Mapping[str, bool]

    def __post_init__(self) -> None:
        for step in self.step_durations:
            if step not in HISTORY_STEPS:
                raise ValueError(f"unknown step {step!r}")
        for step, duration in self.step_durations.items():
            if duration <= 0:
                raise ValueError(
                    f"duration for {step!r} must be > 0, got {duration}"
                )


@dataclass
class CalibratedStages:
    """Per-stage parameters estimated from history.

    Attributes:
        rates: Exponential completion rate per step (1/mean duration of
            successful attempts).
        success_probabilities: Fraction of attempts that succeeded.
        attempts: Number of incidents that attempted each step.
    """

    rates: Dict[str, float]
    success_probabilities: Dict[str, float]
    attempts: Dict[str, int]

    def to_threat_profile(self, base: Optional[ThreatProfile] = None
                          ) -> ThreatProfile:
        """A Stuxnet-like profile with history-calibrated rates.

        Stage rates come from the calibration; vectors/goal/spoofing are
        taken from ``base`` (default: a fresh Stuxnet-like profile).
        """
        from repro.attacks.profiles import stuxnet_like

        base = base or stuxnet_like()
        return ThreatProfile(
            name=f"{base.name}_calibrated",
            goal=base.goal,
            vectors=list(base.vectors),
            entry_rate=self.rates.get("entry", base.entry_rate),
            activation_delay_rate=self.rates.get(
                "activation", base.activation_delay_rate
            ),
            escalation_rate=self.rates.get(
                "escalation", base.escalation_rate
            ),
            reprogram_rate=self.rates.get(
                "reprogram", base.reprogram_rate
            ),
            exfiltration_target=base.exfiltration_target,
            exfiltration_rate=base.exfiltration_rate,
            recon_fraction=base.recon_fraction,
            spoofer_kind=base.spoofer_kind,
            c2=base.c2,
            requires_engineering_host=base.requires_engineering_host,
        )


def calibrate(history: Sequence[IncidentRecord]) -> CalibratedStages:
    """Estimate per-stage rates and success probabilities from history.

    Rates are MLE exponential fits to the successful-attempt durations;
    success probabilities are empirical frequencies among attempts.

    Raises:
        ValueError: On empty history.
    """
    if not history:
        raise ValueError("history is empty")
    rates: Dict[str, float] = {}
    probabilities: Dict[str, float] = {}
    attempts: Dict[str, int] = {}
    for step in HISTORY_STEPS:
        attempted = [r for r in history if step in r.step_success]
        attempts[step] = len(attempted)
        if not attempted:
            continue
        successes = [r for r in attempted if r.step_success[step]]
        probabilities[step] = len(successes) / len(attempted)
        durations = [
            r.step_durations[step]
            for r in successes
            if step in r.step_durations
        ]
        if len(durations) >= 2:
            rates[step] = fit_exponential(durations).distribution.rate
        elif durations:
            rates[step] = 1.0 / durations[0]
    return CalibratedStages(
        rates=rates, success_probabilities=probabilities, attempts=attempts
    )


def generate_incident_history(
    n_incidents: int,
    rng: np.random.Generator,
    true_rates: Optional[Mapping[str, float]] = None,
    true_probabilities: Optional[Mapping[str, float]] = None,
) -> List[IncidentRecord]:
    """A synthetic incident database with known ground truth.

    Each incident walks the step chain; every step takes an exponential
    duration and succeeds with the step's probability; the incident
    record ends at its first failed step (the common shape of documented
    intrusions).

    Args:
        n_incidents: Number of incidents.
        rng: Random generator.
        true_rates: Ground-truth per-step rates (defaults provided).
        true_probabilities: Ground-truth per-step success probabilities.

    Raises:
        ValueError: If ``n_incidents < 1``.
    """
    if n_incidents < 1:
        raise ValueError(f"n_incidents must be >= 1, got {n_incidents}")
    rates = dict(true_rates or {
        "entry": 0.2, "activation": 2.0, "escalation": 1.0,
        "propagation": 0.5, "reprogram": 0.6,
    })
    probs = dict(true_probabilities or {
        "entry": 0.8, "activation": 1.0, "escalation": 0.7,
        "propagation": 0.6, "reprogram": 0.5,
    })
    history: List[IncidentRecord] = []
    for i in range(n_incidents):
        durations: Dict[str, float] = {}
        successes: Dict[str, bool] = {}
        for step in HISTORY_STEPS:
            success = bool(rng.random() < probs[step])
            successes[step] = success
            if success:
                durations[step] = float(
                    rng.exponential(1.0 / rates[step])
                )
            else:
                break
        history.append(
            IncidentRecord(
                incident_id=f"incident_{i:04d}",
                step_durations=durations,
                step_success=successes,
            )
        )
    return history
