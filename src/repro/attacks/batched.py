"""Vectorized mega-batch lowering of the attack campaign.

:class:`CampaignBatchEngine` advances *B* campaign replications per
vectorized step instead of one: the per-host probability tables that
:meth:`~repro.attacks.campaign.AttackCampaign._compile_tables` already
precomputes are applied as array operations across the whole batch —
entry/propagation/escalation become block-drawn exponential races over a
``(B, n_nodes)`` compromise-time matrix, detection candidates reduce to
one column-min, and the exfiltration accrual / predicted-crossing check
runs in closed form against the campaign's single shared healthy tick
trajectory.

Determinism contract (mirrors :mod:`repro.san.batched`):

* ``batch_size=1`` lanes run the scalar :meth:`AttackCampaign.run` on
  the unit's own spawned generator, so single-lane batches are
  **bit-identical** to the scalar path for the same root seed.
* ``batch_size>1`` lanes on the vectorized path are
  **distribution-identical** to the scalar engine: every used random
  variable has the same law and independence structure (exponential
  attempt races, geometric beacon detection, censored response delays),
  but block draws reorder the stream and the closed-form exfiltration
  crossing accumulates floats differently, so individual rows differ.
* Campaigns the lowering cannot vectorize fall back to per-lane scalar
  :meth:`AttackCampaign.run` calls inside the batch unit.  The
  ``"impair"`` goal always takes this fallback: sabotage couples each
  lane to the physical plant, so post-sabotage dynamics stay bit-exact
  by running each lane's scalar resume path unchanged.

Why the vectorized resolution is sound
--------------------------------------

The scalar event loop draws an exponential attempt timer only when its
triggering event fires (entry at ``t=0``, lateral movement at the
source's activation, escalation at activation, ...).  Because
exponential races are memoryless and every timer is independent, the
first-compromise times solve a shortest-path problem over *per-edge*
draws: ``comp[tgt] = min(entry[tgt], min over edges (act[src] +
Exp(1/(rate·p))))``.  Drawing every edge unconditionally and relaxing to
the fixpoint (a Bellman–Ford sweep over the batch) yields the same joint
law — unused draws are independent of used ones, and a draw whose source
never activates is censored to infinity by the horizon cut, exactly like
the scalar path's "never scheduled" case.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.campaign import AttackCampaign, AttackOutcome
from repro.scada.components import HostRole
from repro.sim.trace import TraceRecorder
from repro.telemetry.core import current as _current_telemetry

__all__ = ["CampaignBatchEngine", "simulate_batch_rows"]

#: Trajectory ticks scanned per chunk while resolving the healthy
#: master's first finding (cheap: exfil/recon trajectories record no
#: snapshots).
_FINDING_SCAN_CHUNK = 256


class _CampaignArrays:
    """The campaign's probability tables lowered to flat arrays.

    One instance is shared by every batch unit of a campaign; all
    members are plain arrays/floats, so the engine pickles to the
    ``process`` backend.
    """

    __slots__ = (
        "nodes", "n_nodes", "n_hosts",
        "entry_idx", "entry_scale",
        "entry_noise_scale",
        "act_scale",
        "root_idx", "root_scale",
        "esc_noise_idx", "esc_noise_scale",
        "edge_src", "edge_tgt", "edge_scale",
        "edge_noise_src", "edge_noise_tgt", "edge_noise_scale",
        "c2_p", "c2_interval",
        "recon_k",
        "eligible_idx", "exfil_cost",
        "response_enabled", "response_delay_rate",
    )


def _lower_campaign(campaign: AttackCampaign) -> _CampaignArrays:
    """Flatten the compiled probability tables into batch arrays.

    Raises:
        ValueError: If the campaign shape cannot be vectorized (no
            entry candidates with positive rate, non-positive activation
            rate, ...) — callers catch and fall back to scalar lanes.
    """
    tables = campaign._compile_tables()
    threat = campaign.threat
    network = campaign.network
    if threat.goal not in ("recon", "exfiltrate"):
        raise ValueError(f"goal {threat.goal!r} is not vectorizable")
    if threat.activation_delay_rate <= 0:
        raise ValueError("activation_delay_rate must be positive")

    # Node universe: the propagation closure from the entry candidates,
    # with the same probability fallbacks the scalar loop applies to
    # hosts outside the precompiled (computer-only) tables.
    plans_cache: Dict[str, List[Tuple[str, str, float, float]]] = {}

    def plans_for(host: str) -> List[Tuple[str, str, float, float]]:
        plans = plans_cache.get(host)
        if plans is None:
            plans = tables.propagation.get(host)
            if plans is None:
                plans = campaign._propagation_plans(host)
            plans_cache[host] = plans
        return plans

    arrays = _CampaignArrays()
    nodes: List[str] = []
    index: Dict[str, int] = {}
    queue = [host for host, _ in tables.entry]
    while queue:
        host = queue.pop(0)
        if host in index:
            continue
        index[host] = len(nodes)
        nodes.append(host)
        queue.extend(target for _, target, _, _ in plans_for(host))
    if not nodes:
        raise ValueError("no entry candidates")
    arrays.nodes = nodes
    arrays.n_nodes = len(nodes)
    arrays.n_hosts = sum(1 for h in network.hosts if h.is_computer)

    def detect_p(host: str) -> float:
        p = tables.detection_noise.get(host)
        return campaign._detection_noise(host) if p is None else p

    def escalation_p(host: str) -> float:
        p = tables.escalation.get(host)
        return campaign._escalation_probability(host) if p is None else p

    # Entry attempts and their failed-attempt noise, both at t=0.
    entry_idx: List[int] = []
    entry_scale: List[float] = []
    entry_noise_scale: List[float] = []
    for host, p in tables.entry:
        eff = threat.entry_rate * p
        if eff > 0:
            entry_idx.append(index[host])
            entry_scale.append(1.0 / eff)
        noisy = threat.entry_rate * (1.0 - p) * detect_p(host)
        if noisy > 0:
            entry_noise_scale.append(1.0 / noisy)
    arrays.entry_idx = np.asarray(entry_idx, dtype=np.intp)
    arrays.entry_scale = np.asarray(entry_scale)
    arrays.entry_noise_scale = np.asarray(entry_noise_scale)
    arrays.act_scale = 1.0 / threat.activation_delay_rate

    # Privilege escalation (root) and its noise, per node, from the
    # node's activation time.
    root_idx: List[int] = []
    root_scale: List[float] = []
    esc_noise_idx: List[int] = []
    esc_noise_scale: List[float] = []
    for i, host in enumerate(nodes):
        p_root = escalation_p(host)
        rate = threat.escalation_rate * p_root
        if rate > 0:
            root_idx.append(i)
            root_scale.append(1.0 / rate)
        noisy = threat.escalation_rate * (1.0 - p_root) * detect_p(host)
        if noisy > 0:
            esc_noise_idx.append(i)
            esc_noise_scale.append(1.0 / noisy)
    arrays.root_idx = np.asarray(root_idx, dtype=np.intp)
    arrays.root_scale = np.asarray(root_scale)
    arrays.esc_noise_idx = np.asarray(esc_noise_idx, dtype=np.intp)
    arrays.esc_noise_scale = np.asarray(esc_noise_scale)

    # Lateral-movement edges (one draw per (source, target, vector) key,
    # like the scalar ``scheduled_pairs`` dedup) and their noise.
    edge_src: List[int] = []
    edge_tgt: List[int] = []
    edge_scale: List[float] = []
    edge_noise_src: List[int] = []
    edge_noise_tgt: List[int] = []
    edge_noise_scale: List[float] = []
    for i, host in enumerate(nodes):
        for _vector, target, rate, p in plans_for(host):
            j = index[target]
            eff = rate * p
            if eff > 0:
                edge_src.append(i)
                edge_tgt.append(j)
                edge_scale.append(1.0 / eff)
            noisy = rate * (1.0 - p) * detect_p(target)
            if noisy > 0:
                edge_noise_src.append(i)
                edge_noise_tgt.append(j)
                edge_noise_scale.append(1.0 / noisy)
    arrays.edge_src = np.asarray(edge_src, dtype=np.intp)
    arrays.edge_tgt = np.asarray(edge_tgt, dtype=np.intp)
    arrays.edge_scale = np.asarray(edge_scale)
    arrays.edge_noise_src = np.asarray(edge_noise_src, dtype=np.intp)
    arrays.edge_noise_tgt = np.asarray(edge_noise_tgt, dtype=np.intp)
    arrays.edge_noise_scale = np.asarray(edge_noise_scale)

    # C2 beaconing: per-beacon Bernoulli(p) from the first activation is
    # a geometric beacon count.
    arrays.c2_p = 0.0
    arrays.c2_interval = 0.0
    if threat.c2 is not None:
        arrays.c2_p = threat.c2.detection_probability(
            network, campaign.catalog
        )
        arrays.c2_interval = threat.c2.beacon_interval

    # Goal thresholds.
    arrays.recon_k = 0
    arrays.eligible_idx = np.asarray([], dtype=np.intp)
    arrays.exfil_cost = math.inf
    if threat.goal == "recon":
        # Smallest compromise count satisfying the scalar check
        # ``len(compromised) >= recon_fraction * n_hosts`` (computed on
        # the same float product).
        arrays.recon_k = max(
            1, int(math.ceil(threat.recon_fraction * arrays.n_hosts))
        )
    else:
        historians = [
            h.name
            for h in network.hosts_with_role(HostRole.HISTORIAN)
        ]
        eligible = []
        for i, host in enumerate(nodes):
            role = network.host(host).role
            if role in (HostRole.HISTORIAN, HostRole.SCADA_SERVER) or any(
                network.flow_allowed(host, other, "historian")
                for other in historians
            ):
                eligible.append(i)
        arrays.eligible_idx = np.asarray(eligible, dtype=np.intp)
        per_tick = (
            threat.exfiltration_rate * campaign.config.tick_interval
        )
        arrays.exfil_cost = (
            threat.exfiltration_target / per_tick
            if per_tick > 0
            else math.inf
        )
    arrays.response_enabled = campaign.config.response_enabled
    arrays.response_delay_rate = campaign.config.response_delay_rate
    return arrays


class CampaignBatchEngine:
    """SoA batch lowering of one :class:`AttackCampaign`.

    Args:
        campaign: The campaign to batch.  Its compiled probability
            tables are flattened once into arrays shared by every batch
            unit; like the campaign itself, the engine must not be
            reused after mutating the network/catalog/threat in place.

    The engine is picklable (it ships to ``process`` backend workers
    alongside its campaign) and exposes two unit bodies:
    :meth:`run_rows` returning compact ``(success, tta, ttsf,
    final_ratio)`` response rows, and :meth:`run_outcomes` returning
    lightweight :class:`AttackOutcome` objects (compromise/root times
    and detection, no trace) for the indicator pipeline.
    """

    def __init__(self, campaign: AttackCampaign) -> None:
        self.campaign = campaign
        self.horizon = campaign.config.horizon
        self._arrays: Optional[_CampaignArrays] = None
        self.fallback_reason: Optional[str] = None
        if campaign.threat.goal == "impair":
            # Sabotage resumes the per-tick plant loop; each lane runs
            # the scalar path so post-sabotage dynamics stay bit-exact.
            self.fallback_reason = "impair goal resumes the scalar tick loop"
            return
        try:
            self._arrays = _lower_campaign(campaign)
        except Exception as exc:
            self.fallback_reason = str(exc)

    @property
    def vectorized(self) -> bool:
        """Whether batches run the vectorized resolution (vs per-lane
        scalar fallback)."""
        return self._arrays is not None

    # ------------------------------------------------------------------
    # batch bodies
    # ------------------------------------------------------------------

    def run_rows(
        self, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance ``size`` lanes; return ``(size, 4)`` response rows
        ``(success, tta, ttsf, final_ratio)`` with the library's
        horizon-censoring conventions."""
        if size == 1 or self._arrays is None:
            rows = np.asarray(
                [
                    self.campaign.run(rng).response_row(self.horizon)
                    for _ in range(size)
                ],
                dtype=np.float64,
            ).reshape(size, 4)
            self._record_telemetry(size)
            return rows
        comp, act, root, detection, evict_at, goal_at = self._resolve(
            size, rng
        )
        done = np.minimum(np.minimum(goal_at, evict_at), self.horizon)
        success = np.isfinite(goal_at) & (goal_at <= evict_at)
        detected = np.isfinite(detection) & (detection <= goal_at)
        rows = np.empty((size, 4), dtype=np.float64)
        rows[:, 0] = success
        rows[:, 1] = np.where(success, goal_at, self.horizon)
        rows[:, 2] = np.where(detected, detection, self.horizon)
        rows[:, 3] = (
            (comp <= done[:, None]).sum(axis=1) / self._arrays.n_hosts
            if self._arrays.n_hosts
            else 0.0
        )
        self._record_telemetry(size)
        return rows

    def run_outcomes(
        self, size: int, rng: np.random.Generator
    ) -> List[AttackOutcome]:
        """Advance ``size`` lanes; return lightweight outcomes.

        The outcomes carry everything the indicator pipeline consumes —
        success/``success_time``, ``detection_time``,
        ``compromise_times``/``root_times``, horizon, host count — with
        an empty trace and no stage timeline (the vectorized resolution
        does not materialize per-event traces).  Scalar-fallback lanes
        return full scalar outcomes.
        """
        if size == 1 or self._arrays is None:
            outcomes = [self.campaign.run(rng) for _ in range(size)]
            self._record_telemetry(size)
            return outcomes
        comp, act, root, detection, evict_at, goal_at = self._resolve(
            size, rng
        )
        done = np.minimum(np.minimum(goal_at, evict_at), self.horizon)
        success = np.isfinite(goal_at) & (goal_at <= evict_at)
        detected = np.isfinite(detection) & (detection <= goal_at)
        evicted = np.isfinite(evict_at) & (evict_at < goal_at)
        nodes = self._arrays.nodes
        outcomes: List[AttackOutcome] = []
        for lane in range(size):
            cutoff = done[lane]
            compromise_times = {
                nodes[i]: float(t)
                for i, t in enumerate(comp[lane])
                if t <= cutoff
            }
            root_times = {
                nodes[i]: float(t)
                for i, t in enumerate(root[lane])
                if t <= cutoff
            }
            outcomes.append(
                AttackOutcome(
                    success=bool(success[lane]),
                    success_time=(
                        float(goal_at[lane])
                        if success[lane]
                        else float("nan")
                    ),
                    detection_time=(
                        float(detection[lane])
                        if detected[lane]
                        else float("nan")
                    ),
                    compromise_times=compromise_times,
                    root_times=root_times,
                    sabotage_start=float("nan"),
                    stage_times={},
                    horizon=self.horizon,
                    n_hosts=self._arrays.n_hosts,
                    trace=TraceRecorder(),
                    evicted=bool(evicted[lane]),
                )
            )
        self._record_telemetry(size)
        return outcomes

    # ------------------------------------------------------------------
    # vectorized resolution
    # ------------------------------------------------------------------

    def _resolve(
        self, size: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, ...]:
        """Resolve ``size`` lanes in closed form.

        Returns ``(comp, act, root, detection, evict_at, goal_at)`` —
        per-lane-per-node first-compromise / activation / root matrices
        (``inf`` = never before the horizon) and per-lane first
        detection, eviction and goal-achievement times.
        """
        arrays = self._arrays
        horizon = self.horizon
        n = arrays.n_nodes

        # Fixed block-draw order, so a unit's row stream is a pure
        # function of its spawned seed.
        entry = rng.standard_exponential(
            (size, arrays.entry_idx.size)
        ) * arrays.entry_scale
        entry_noise = rng.standard_exponential(
            (size, arrays.entry_noise_scale.size)
        ) * arrays.entry_noise_scale
        act_delay = rng.standard_exponential((size, n)) * arrays.act_scale
        root_delay = rng.standard_exponential(
            (size, arrays.root_idx.size)
        ) * arrays.root_scale
        esc_noise = rng.standard_exponential(
            (size, arrays.esc_noise_idx.size)
        ) * arrays.esc_noise_scale
        edge_delay = rng.standard_exponential(
            (size, arrays.edge_src.size)
        ) * arrays.edge_scale
        edge_noise = rng.standard_exponential(
            (size, arrays.edge_noise_src.size)
        ) * arrays.edge_noise_scale

        lanes = np.arange(size)[:, None]
        comp = np.full((size, n), np.inf)
        if arrays.entry_idx.size:
            entry = np.where(entry <= horizon, entry, np.inf)
            np.minimum.at(comp, (lanes, arrays.entry_idx[None, :]), entry)

        # Bellman–Ford relaxation of the compromise-time shortest paths:
        # each sweep extends the earliest attack chains by one edge, so
        # n_nodes sweeps reach the fixpoint (chains are simple paths).
        for _ in range(n):
            act = comp + act_delay
            act[act > horizon] = np.inf
            if not arrays.edge_src.size:
                break
            cand = act[:, arrays.edge_src] + edge_delay
            cand[cand > horizon] = np.inf
            before = comp.copy()
            np.minimum.at(comp, (lanes, arrays.edge_tgt[None, :]), cand)
            if not (comp < before).any():
                break
        act = comp + act_delay
        act[act > horizon] = np.inf

        root = np.full((size, n), np.inf)
        if arrays.root_idx.size:
            drawn = act[:, arrays.root_idx] + root_delay
            root[:, arrays.root_idx] = np.where(
                drawn <= horizon, drawn, np.inf
            )

        # First detection: the min over every noise/beacon candidate.
        detection = np.full(size, np.inf)
        if arrays.entry_noise_scale.size:
            noise = np.where(entry_noise <= horizon, entry_noise, np.inf)
            np.minimum(detection, noise.min(axis=1), out=detection)
        if arrays.esc_noise_idx.size:
            cand = act[:, arrays.esc_noise_idx] + esc_noise
            cand[cand > horizon] = np.inf
            np.minimum(detection, cand.min(axis=1), out=detection)
        if arrays.edge_noise_src.size:
            # The scalar loop schedules an edge's noise only when the
            # target is still uncompromised at the source's activation.
            src_act = act[:, arrays.edge_noise_src]
            cand = src_act + edge_noise
            cand[
                (cand > horizon)
                | (comp[:, arrays.edge_noise_tgt] <= src_act)
            ] = np.inf
            np.minimum(detection, cand.min(axis=1), out=detection)
        if arrays.c2_p > 0.0:
            first_act = act.min(axis=1)
            beacons = rng.geometric(arrays.c2_p, size)
            c2 = first_act + beacons * arrays.c2_interval
            c2[c2 > horizon] = np.inf
            np.minimum(detection, c2, out=detection)
        finding_time = self._healthy_finding_time()
        if finding_time is not None:
            np.minimum(detection, finding_time, out=detection)

        # Incident response: eviction delayed past the horizon never
        # fires (the scalar path schedules nothing).
        evict_at = np.full(size, np.inf)
        if arrays.response_enabled:
            if arrays.response_delay_rate is None:
                evict_at = detection.copy()
            else:
                delay = rng.standard_exponential(size) * (
                    1.0 / arrays.response_delay_rate
                )
                evict_at = detection + delay
                evict_at[evict_at > horizon] = np.inf

        if arrays.recon_k:
            goal_at = self._recon_time(comp)
        else:
            goal_at = self._exfiltration_time(root)
        return comp, act, root, detection, evict_at, goal_at

    def _recon_time(self, comp: np.ndarray) -> np.ndarray:
        """Per-lane time of the K-th compromise (``inf`` = never)."""
        k = self._arrays.recon_k
        if k > comp.shape[1]:
            return np.full(comp.shape[0], np.inf)
        return np.partition(comp, k - 1, axis=1)[:, k - 1]

    def _exfiltration_time(self, root: np.ndarray) -> np.ndarray:
        """Per-lane first tick crossing the exfiltration target.

        Mirrors the scalar predicted-crossing check in array form: a
        rooted data-reachable host starts contributing one
        ``rate × tick_interval`` unit per tick at the first tick
        *after* its root time, so within the segment where ``s`` hosts
        contribute, the accrued amount at tick ``j`` is
        ``s·(j+1) − Σ q_i`` units and the crossing tick solves a linear
        inequality per segment.
        """
        arrays = self._arrays
        size = root.shape[0]
        goal_at = np.full(size, np.inf)
        if not arrays.eligible_idx.size or not math.isfinite(
            arrays.exfil_cost
        ):
            return goal_at
        traj = self.campaign._healthy_trajectory()
        times = np.asarray(traj.times)
        n_ticks = traj.n_ticks
        if n_ticks < 1:
            return goal_at
        sentinel = n_ticks + 1
        rooted = root[:, arrays.eligible_idx]
        # First contributing tick per host: the first tick strictly
        # after the root time (the root tick itself still accrues with
        # the pre-root count, as in ``_exfil_catch_up``).
        q = np.searchsorted(times, rooted, side="right")
        q = np.where(
            np.isfinite(rooted) & (q <= n_ticks), q, sentinel
        ).astype(np.float64)
        q.sort(axis=1)
        prefix = np.cumsum(q, axis=1)
        counts = np.arange(1, q.shape[1] + 1, dtype=np.float64)
        bound = np.empty_like(q)
        bound[:, :-1] = q[:, 1:]
        bound[:, -1] = sentinel
        np.minimum(bound, sentinel, out=bound)
        # Smallest j with counts·(j+1) − prefix ≥ cost inside each
        # segment [q_s, bound_s); +1 fixes float-boundary rounding.
        j = np.ceil((arrays.exfil_cost + prefix) / counts) - 1.0
        np.maximum(j, q, out=j)
        j += counts * (j + 1.0) - prefix < arrays.exfil_cost
        valid = (q <= n_ticks) & (j < bound) & (j <= n_ticks)
        j[~valid] = sentinel
        jstar = j.min(axis=1)
        crossing = jstar <= n_ticks
        goal_at[crossing] = times[jstar[crossing].astype(np.intp)]
        return goal_at

    def _healthy_finding_time(self) -> Optional[float]:
        """The shared healthy trajectory's first master finding time.

        Scanned lazily in chunks (shared and cached campaign-wide);
        ``None`` when the healthy plant never trips the master before
        the horizon.
        """
        traj = self.campaign._healthy_trajectory()
        while traj.first_finding is None and not traj.scan_exhausted:
            traj.scan_to(traj.scanned + _FINDING_SCAN_CHUNK)
        if traj.first_finding is None:
            return None
        return traj.tick_time(traj.first_finding[0])

    @staticmethod
    def _record_telemetry(size: int) -> None:
        telemetry = _current_telemetry()
        if telemetry is None:
            return
        metrics = telemetry.metrics
        metrics.inc("batch.batches")
        metrics.inc("batch.lanes", size)
        metrics.inc("batch.lane_retirements", size)


def simulate_batch_rows(
    engine: CampaignBatchEngine, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Module-level batch unit body (picklable for ``process``
    backends): one unit advances ``size`` lanes on its own generator."""
    return engine.run_rows(size, rng)


def simulate_batch_outcomes(
    engine: CampaignBatchEngine, size: int, rng: np.random.Generator
) -> List[AttackOutcome]:
    """Module-level outcome-returning batch unit body (picklable)."""
    return engine.run_outcomes(size, rng)
