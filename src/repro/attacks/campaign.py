"""The attack-campaign simulator.

Couples a :class:`~repro.attacks.profiles.ThreatProfile`, a
:class:`~repro.scada.network.SCADANetwork` (with installed variants), the
:class:`~repro.diversity.catalog.VariantCatalog`, the cooling plant and
the SCADA master into one discrete-event simulation.  Each replication
produces an :class:`AttackOutcome`, from which the paper's security
indicators — Time-To-Attack, Time-To-Security-Failure, compromised ratio
— are computed (:mod:`repro.core.indicators`).

Modeling notes
--------------

* Attempt processes are *thinned Poisson processes*: attempts occur at a
  vector's base rate and each succeeds with the per-variant probability
  from the catalog, so the time to first success is exponential with
  rate ``base_rate × p_success`` — zero-probability targets are simply
  never compromised.  This is exactly the paper's mechanism of *"varying
  the success probabilities involved at each attack stage"* as a function
  of the installed component variants.
* Failed attempts are noisy: they feed a detection process whose rate
  grows when behavioural antivirus variants are deployed.
* Sabotage couples to the physical plant through the PLC register image;
  the payload spoofs the monitoring signal (replay or constant-hold),
  and the master's alarm/spoof-detection logic defines the perceived
  manifestation time (TTSF).
* Time unit: hours.
"""

from __future__ import annotations

import bisect
import copy
import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.telemetry.core import current as _current_telemetry
from repro.telemetry.core import trace as _span

if TYPE_CHECKING:  # avoid import cost on the hot serial path
    from repro.exec.runner import ExperimentRunner
    from repro.exec.seeding import SeedLike

from repro.attacks.profiles import ThreatProfile
from repro.attacks.stages import AttackStage, StageTracker
from repro.attacks.vectors import PropagationVector
from repro.diversity.catalog import VariantCatalog
from repro.scada.components import ComponentKind, HostRole
from repro.scada.monitoring import Alarm, SCADAMaster
from repro.scada.network import SCADANetwork, Zone
from repro.scada.plant.cooling import CoolingPlant, CoolingPlantConfig
from repro.scada.plant.process import PhysicalProcess
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceRecorder


def _default_plant() -> PhysicalProcess:
    """The SCoPE-like cooling plant, history off for Monte-Carlo speed."""
    return CoolingPlant(CoolingPlantConfig(), record_history=False)


@dataclass
class CampaignConfig:
    """Campaign simulation parameters.

    Attributes:
        horizon: Simulation horizon (hours).
        tick_interval: Plant/master polling period (hours).
        failed_attempt_noise: Baseline probability that one failed
            exploit attempt is noticed by host defenses.
        response_enabled: If True, incident response reacts to the first
            detection; if False (default) the attack continues and
            detection is recorded as TTSF only.
        response_delay_rate: With response enabled, the eviction happens
            an Exp(rate)-distributed delay after detection (triage +
            containment time).  ``None`` means instantaneous eviction
            (the pre-existing stop-at-detection behaviour).
        plant_factory: Builds the physical process under control — the
            cooling plant by default; pass e.g.
            ``lambda: PowerFeeder()`` for the smart-grid scenario.
        tick_elision: Run the campaign event loop on the tick-elision
            fast path (default).  Pre-sabotage plant/master ticks are
            rng-free and independent of the attack state, so they are
            served from one lazily-extended healthy trajectory shared
            by every replication of the campaign; the per-tick loop
            resumes bit-exactly when a controller is reprogrammed.
            ``False`` keeps the legacy per-tick loop — outcomes are
            identical either way for the same seed (see
            ``tests/test_campaign_tick_elision.py``).
    """

    horizon: float = 400.0
    tick_interval: float = 0.25
    failed_attempt_noise: float = 0.03
    response_enabled: bool = False
    response_delay_rate: Optional[float] = None
    plant_factory: Callable[[], PhysicalProcess] = field(
        default=_default_plant
    )
    tick_elision: bool = True


@dataclass
class AttackOutcome:
    """Result of one campaign replication.

    Attributes:
        success: Whether the threat achieved its goal before the horizon.
        success_time: Goal-achievement time (nan when unsuccessful) —
            the Time-To-Attack sample.
        detection_time: First perceived manifestation (nan if never) —
            the Time-To-Security-Failure sample.
        compromise_times: ``{host: first_compromise_time}``.
        root_times: ``{host: root_access_time}``.
        sabotage_start: When the controller was reprogrammed (nan if
            never).
        stage_times: First-entry time per canonical attack stage.
        horizon: Horizon used.
        n_hosts: Total computer hosts in the system (denominator of the
            compromised ratio).
        trace: Full event trace.
        evicted: Whether incident response evicted the attacker before
            the goal (always False when response is disabled).
    """

    success: bool
    success_time: float
    detection_time: float
    compromise_times: Dict[str, float]
    root_times: Dict[str, float]
    sabotage_start: float
    stage_times: Dict[AttackStage, float]
    horizon: float
    n_hosts: int
    trace: TraceRecorder
    evicted: bool = False

    def compromised_ratio_at(self, time: float) -> float:
        """Fraction of hosts compromised by ``time``."""
        if self.n_hosts == 0:
            return 0.0
        count = sum(1 for t in self.compromise_times.values() if t <= time)
        return count / self.n_hosts

    def compromised_ratio_curve(
        self, times: List[float]
    ) -> List[Tuple[float, float]]:
        """The compromised-ratio step function sampled at ``times``."""
        return [(t, self.compromised_ratio_at(t)) for t in times]

    def response_row(
        self, horizon: float
    ) -> Tuple[float, float, float, float]:
        """The long-format response tuple
        ``(success, tta, ttsf, final_ratio)`` with the library's
        horizon-censoring conventions (censored times count ``horizon``).
        """
        return (
            1.0 if self.success else 0.0,
            self.success_time if self.success else horizon,
            (
                self.detection_time
                if not math.isnan(self.detection_time)
                else horizon
            ),
            self.compromised_ratio_at(horizon),
        )


def _response_row_unit(
    campaign: "AttackCampaign", rng: np.random.Generator
) -> Tuple[float, float, float, float]:
    """Run one replication, return only its compact response row.

    Module-level so the ``process`` backend can pickle it; shipping four
    floats back instead of a full :class:`AttackOutcome` (with its
    trace) is what makes :meth:`AttackCampaign.run_batch_table` cheap
    across process boundaries.
    """
    return campaign.run(rng).response_row(campaign.config.horizon)


def _feed_aggregators(
    aggregators: Tuple[Callable[..., None], ...],
    columns: Dict[str, np.ndarray],
    rows: List[Tuple[float, float, float, float]],
) -> None:
    """Fold one chunk of response rows into every aggregator.

    Aggregators with an ``observe_columns`` method (e.g.
    :class:`~repro.results.streaming.StreamingSummary`) get the whole
    chunk vectorized; plain callables are invoked once per row with the
    ``(success, tta, ttsf, final_ratio)`` tuple.
    """
    for aggregator in aggregators:
        observe = getattr(aggregator, "observe_columns", None)
        if observe is not None:
            observe(columns)
        else:
            for row in rows:
                aggregator(tuple(row))


@dataclass
class _CampaignTables:
    """Static probability tables shared by every replication.

    Attributes:
        entry: ``(host, p_entry)`` per entry candidate, candidate order.
        escalation: ``host → p_escalation`` for computer hosts.
        detection_noise: ``host → p_detect`` for every host.
        propagation: ``source host → [(vector, target, rate, p), ...]``
            in the vector × target order the inline loop used.
        reprogram: ``host → [(plc, p), ...]`` over flow-allowed PLCs,
            with the host's engineering-tool factor folded in.
        spoof: Probability the payload can tamper the monitored signal.
    """

    entry: List[Tuple[str, float]]
    escalation: Dict[str, float]
    detection_noise: Dict[str, float]
    propagation: Dict[str, List[Tuple[str, str, float, float]]]
    reprogram: Dict[str, List[Tuple[str, float]]]
    spoof: float


def _build_master(plant: PhysicalProcess) -> SCADAMaster:
    """The master configuration every replication (and the healthy
    trajectory probe) uses: one stress alarm plus spoof detection on the
    plant's monitored register."""
    monitored = plant.monitored_register
    master = SCADAMaster(
        alarms=[
            Alarm(
                "process_stress",
                monitored,
                high=plant.alarm_threshold,
                scale=plant.alarm_scale,
            )
        ]
    )
    master.watch(monitored)
    return master


#: Ticks scanned per milestone-pump step on the elided path.  Small
#: enough that replications ending early never pay for the full horizon,
#: large enough that pump events are negligible next to real ticks.
_MILESTONE_SCAN_CHUNK = 64


class _HealthyTickTrajectory:
    """The deterministic pre-sabotage tick trajectory of one campaign.

    Until a controller is reprogrammed, the campaign's ``on_tick``
    handler is a pure function of the (plant, config) pair: it draws no
    randomness, reads no attack state, and the control registers never
    change.  Every replication therefore ticks through the *same*
    healthy trajectory — so one probe simulation, extended lazily and
    shared by all replications of the campaign, replaces the per-tick
    loop.  The probe records, per tick ``k`` (1-based, times built by
    the same float accumulation the event loop uses):

    * the master's first finding (alarm or spoof-detector label) and
      the first tick at which accumulated damage crosses impairment —
      the only two tick-loop effects visible to a replication that
      never reaches sabotage;
    * the monitored reading stream (for spoofer/detector state
      restoration) and full ``(plant, registers, damage)`` snapshots,
      so a replication whose sabotage starts after tick ``j`` can
      resume the exact legacy per-tick loop from tick ``j + 1``.

    Thread-safe: extension is serialized by a lock (the ``thread``
    backend runs replications of one campaign concurrently); already
    scanned ticks are immutable and read lock-free.
    """

    def __init__(
        self, config: CampaignConfig, record_snapshots: bool = True
    ) -> None:
        self.config = config
        self.record_snapshots = record_snapshots
        self.plant = config.plant_factory()
        self.registers = self.plant.default_registers()
        self.damage = self.plant.make_damage_model()
        self.monitored = self.plant.monitored_register
        self.master = _build_master(self.plant)
        # times[k] is tick k's firing time; built by repeated addition
        # (t += interval) exactly like the legacy tick chain, so the
        # elided path reproduces the same float values.
        times = [0.0]
        while True:
            nxt = times[-1] + config.tick_interval
            if nxt > config.horizon:
                break
            times.append(nxt)
        self.times = times
        self.n_ticks = len(times) - 1
        self.scanned = 0
        # Index k holds post-tick-k state; index 0 is the initial state.
        self.snapshots: List[Tuple[PhysicalProcess, Dict[int, int], float]] = [
            (copy.deepcopy(self.plant), dict(self.registers), 0.0)
        ]
        self.readings: List[float] = [float("nan")]  # index 0 unused
        self.first_finding: Optional[Tuple[int, str]] = None
        self.first_impairment: Optional[int] = None
        self._lock = threading.Lock()

    @property
    def scan_exhausted(self) -> bool:
        """Whether every tick up to the horizon has been scanned."""
        return self.scanned >= self.n_ticks

    def tick_time(self, k: int) -> Optional[float]:
        """Tick ``k``'s firing time, or None past the horizon."""
        if 1 <= k <= self.n_ticks:
            return self.times[k]
        return None

    def ticks_at_or_before(self, time: float) -> int:
        """How many ticks fire at or before ``time``."""
        return min(bisect.bisect_right(self.times, time) - 1, self.n_ticks)

    def scan_to(self, k: int) -> None:
        """Extend the probe simulation through tick ``min(k, n_ticks)``."""
        if self.scanned >= min(k, self.n_ticks):
            return
        with self._lock:
            target = min(k, self.n_ticks)
            while self.scanned < target:
                self._step_once()

    def _step_once(self) -> None:
        """One healthy tick, mirroring ``on_tick``'s pre-sabotage body."""
        k = self.scanned + 1
        now = self.times[k]
        dt_seconds = self.config.tick_interval * 3600.0
        self.plant.step(self.registers, dt=dt_seconds)
        self.damage.update(self.plant.stress_level(), dt_seconds, now)
        reported = dict(self.registers)
        actual = float(self.registers.get(self.monitored, 0))
        findings = self.master.poll(now, reported)
        self.readings.append(actual)
        if self.record_snapshots:
            self.snapshots.append(
                (
                    copy.deepcopy(self.plant),
                    dict(self.registers),
                    self.damage.damage,
                )
            )
        if findings and self.first_finding is None:
            self.first_finding = (k, findings[0])
        if self.damage.impaired and self.first_impairment is None:
            self.first_impairment = k
        self.scanned = k

    # -------------------- replication restore helpers --------------------

    def _require_snapshots(self) -> None:
        if not self.record_snapshots:
            raise RuntimeError(
                "trajectory was built without state snapshots "
                "(record_snapshots=False); restore is only needed — and "
                "snapshots only recorded — for sabotage-capable "
                "(impair-goal) campaigns"
            )

    def plant_at(self, k: int) -> PhysicalProcess:
        """A private copy of the plant state after tick ``k``."""
        self._require_snapshots()
        self.scan_to(k)
        return copy.deepcopy(self.snapshots[k][0])

    def registers_at(self, k: int) -> Dict[int, int]:
        """The register image after tick ``k``."""
        self._require_snapshots()
        self.scan_to(k)
        return dict(self.snapshots[k][1])

    def damage_at(self, k: int) -> float:
        """Accumulated damage after tick ``k``."""
        self._require_snapshots()
        self.scan_to(k)
        return self.snapshots[k][2]

    def readings_through(self, k: int) -> List[float]:
        """Monitored readings of ticks ``1..k`` (the healthy record
        stream seen by spoofers and the master's spoof detector)."""
        self.scan_to(k)
        return self.readings[1 : k + 1]


class AttackCampaign:
    """Runs attack campaigns against a configured SCADA system.

    The per-host success/detection probabilities are pure functions of
    the (network, catalog, threat, config) quadruple, which is fixed for
    the campaign's lifetime — they are compiled into lookup tables on
    the first replication (:meth:`_compile_tables`) instead of being
    recomputed from catalog lookups on every event.  Values and
    iteration orders replicate the inline computations exactly, so
    outcomes are bit-identical to the uncached path.

    Mutating the network/catalog/threat *after* a replication has run
    therefore requires :meth:`invalidate_tables` (in-repo callers build
    a fresh campaign per configuration, which is the recommended
    pattern).
    """

    def __init__(
        self,
        network: SCADANetwork,
        catalog: VariantCatalog,
        threat: ThreatProfile,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self.network = network
        self.catalog = catalog
        self.threat = threat
        self.config = config or CampaignConfig()
        self._tables: Optional[_CampaignTables] = None
        self._trajectory: Optional[_HealthyTickTrajectory] = None

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the healthy trajectory (it holds a lock and is
        cheap to rebuild worker-side, where one unpickled campaign is
        shared by every replication of a chunk)."""
        state = self.__dict__.copy()
        state["_trajectory"] = None
        return state

    # ------------------------------------------------------------------
    # probability helpers
    # ------------------------------------------------------------------

    def _entry_candidates(self) -> List[str]:
        """Hosts the initial infection can land on.

        Removable media crosses air gaps: any computer with USB ports is
        a candidate; enterprise-zone computers are candidates regardless
        (mail/web entry).
        """
        names: List[str] = []
        for host in self.network.hosts:
            if not host.is_computer:
                continue
            if host.usb_ports or self.network.zone_of(host.name) == Zone.ENTERPRISE:
                names.append(host.name)
        return names

    def _entry_probability(self, host_name: str) -> float:
        host = self.network.host(host_name)
        os_variant = host.variant_of(ComponentKind.OPERATING_SYSTEM)
        action = "usb_autorun" if host.usb_ports else "net_exploit"
        p = self.catalog.success_probability(
            ComponentKind.OPERATING_SYSTEM, os_variant, action
        )
        av = host.variant_of(ComponentKind.ANTIVIRUS)
        if av is not None:
            p *= self.catalog.success_probability(
                ComponentKind.ANTIVIRUS, av, "av_evasion"
            )
        if host.resilient:
            p *= 0.05
        return p

    def _escalation_probability(self, host_name: str) -> float:
        host = self.network.host(host_name)
        os_variant = host.variant_of(ComponentKind.OPERATING_SYSTEM)
        p = self.catalog.success_probability(
            ComponentKind.OPERATING_SYSTEM, os_variant, "priv_escalation"
        )
        if host.resilient:
            p *= 0.05
        return p

    def _propagation_probability(
        self, vector: PropagationVector, target_name: str
    ) -> float:
        target = self.network.host(target_name)
        p = vector.success_probability(target, self.catalog)
        if target.resilient:
            p *= 0.05
        return p

    def _reprogram_probability(self, plc_name: str) -> float:
        plc = self.network.host(plc_name)
        p_fw = self.catalog.success_probability(
            ComponentKind.PLC_FIRMWARE,
            plc.variant_of(ComponentKind.PLC_FIRMWARE),
            "reprogram",
        )
        p_stack = self.catalog.success_probability(
            ComponentKind.PROTOCOL_STACK,
            plc.variant_of(ComponentKind.PROTOCOL_STACK),
            "reprogram",
        )
        p = p_fw * p_stack
        if plc.resilient:
            p *= 0.05
        return p

    def _spoof_probability(self) -> float:
        """Probability the payload can tamper with the monitored signal."""
        sensors = self.network.hosts_with_role(HostRole.SENSOR)
        if not sensors:
            return 1.0
        # The attacker must tamper with the sensor path feeding the
        # master; authenticated sensors make that unlikely.
        probs = [
            self.catalog.success_probability(
                ComponentKind.SENSOR_MODEL,
                s.variant_of(ComponentKind.SENSOR_MODEL),
                "signal_tamper",
            )
            for s in sensors
        ]
        return max(probs)

    def _detection_noise(self, host_name: str) -> float:
        """Per-failed-attempt detection probability at ``host_name``."""
        host = self.network.host(host_name)
        base = self.config.failed_attempt_noise
        av = host.variant_of(ComponentKind.ANTIVIRUS)
        if av is not None:
            evasion = self.catalog.success_probability(
                ComponentKind.ANTIVIRUS, av, "av_evasion"
            )
            base += 0.25 * (1.0 - evasion)
        return min(1.0, base)

    def _propagation_plans(
        self, host: str
    ) -> List[Tuple[str, str, float, float]]:
        """``(vector, target, rate, p)`` lateral-movement plans from ``host``."""
        return [
            (
                vector.name,
                target,
                vector.rate,
                self._propagation_probability(vector, target),
            )
            for vector in self.threat.vectors
            for target in vector.targets(host, self.network)
        ]

    def _reprogram_plans(
        self, host: str, plcs: List[str]
    ) -> List[Tuple[str, float]]:
        """``(plc, p)`` over flow-allowed PLCs, engineering tool folded in.

        Stuxnet drove the PLC through the engineering suite: a tool
        variant on ``host`` scales the reprogram probability.
        """
        tool = self.network.host(host).variant_of(
            ComponentKind.ENGINEERING_TOOL
        )
        tool_factor = (
            self.catalog.success_probability(
                ComponentKind.ENGINEERING_TOOL, tool, "reprogram"
            )
            if tool is not None
            else None
        )
        plans: List[Tuple[str, float]] = []
        for plc_name in plcs:
            if not self.network.flow_allowed(host, plc_name, "modbus"):
                continue
            p = self._reprogram_probability(plc_name)
            if tool_factor is not None:
                p *= tool_factor
            plans.append((plc_name, p))
        return plans

    def invalidate_tables(self) -> None:
        """Drop the compiled probability tables and healthy trajectory.

        Call after mutating the campaign's network, catalog, threat or
        config in place; the next replication recompiles both against
        the new configuration.
        """
        self._tables = None
        self._trajectory = None

    def _healthy_trajectory(self) -> _HealthyTickTrajectory:
        """The shared healthy tick trajectory (built on first use).

        Per-tick state snapshots exist to resume the per-tick loop at
        sabotage, which only ``"impair"``-goal threats can trigger —
        other goals skip the deepcopy-per-tick cost entirely.
        """
        trajectory = self._trajectory
        if trajectory is None:
            trajectory = _HealthyTickTrajectory(
                self.config,
                record_snapshots=(self.threat.goal == "impair"),
            )
            self._trajectory = trajectory
        return trajectory

    def _compile_tables(self) -> _CampaignTables:
        """Build (once) the static probability tables ``run`` reads."""
        if self._tables is not None:
            return self._tables
        computers = [h.name for h in self.network.hosts if h.is_computer]
        plcs = [h.name for h in self.network.hosts_with_role(HostRole.PLC)]
        self._tables = _CampaignTables(
            entry=[
                (h, self._entry_probability(h))
                for h in self._entry_candidates()
            ],
            escalation={h: self._escalation_probability(h) for h in computers},
            detection_noise={
                h: self._detection_noise(h) for h in self.network.host_names
            },
            propagation={h: self._propagation_plans(h) for h in computers},
            reprogram={h: self._reprogram_plans(h, plcs) for h in computers},
            spoof=self._spoof_probability(),
        )
        return self._tables

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def run(self, rng: np.random.Generator) -> AttackOutcome:
        """One campaign replication.

        Runs the tick-elision fast path when
        :attr:`CampaignConfig.tick_elision` is set (the default): the
        rng-free healthy tick stream is served from the campaign's
        shared :class:`_HealthyTickTrajectory` and the legacy per-tick
        loop is resumed — from a bit-exact state restore — only once a
        controller is reprogrammed.  Outcomes are identical to the
        legacy loop for the same generator state.
        """
        tables = self._compile_tables()
        cfg = self.config
        elide = cfg.tick_elision
        traj = self._healthy_trajectory() if elide else None
        engine = SimulationEngine()
        trace = TraceRecorder()
        stages = StageTracker()

        computers = [h.name for h in self.network.hosts if h.is_computer]
        plcs = [h.name for h in self.network.hosts_with_role(HostRole.PLC)]
        n_hosts = len(computers)

        compromised: Set[str] = set()
        activated: Set[str] = set()
        rooted: Set[str] = set()
        compromise_times: Dict[str, float] = {}
        root_times: Dict[str, float] = {}
        scheduled_pairs: Set[Tuple[str, str, str]] = set()
        reprogram_scheduled: Set[str] = set()

        state = {
            "detection_time": float("nan"),
            "success_time": float("nan"),
            "sabotage_start": float("nan"),
            "exfiltrated": 0.0,
            "spoof_effective": False,
            "c2_started": False,
            "done": False,
            "evicted": False,
        }

        plant = cfg.plant_factory()
        registers = plant.default_registers()
        damage = plant.make_damage_model()
        monitored = plant.monitored_register
        master = _build_master(plant)
        spoofer = self.threat.make_spoofer()

        # Tick-elision bookkeeping (one dict to keep the closures below
        # free of nonlocal declarations).  ``suspended`` flips when the
        # legacy per-tick loop takes over at sabotage; stale milestone
        # events then no-op instead of being cancelled.
        elided: Dict[str, object] = {
            "suspended": False,
            "detect_scheduled": False,
            "impair_scheduled": False,
            "effects_tick": 0,
            "frontier": 0,
            "exfil_idx": 0,
            "exfil_amount": 0.0,
            "exfil_n": 0,
            "exfil_event": None,
        }

        def evict(time: float) -> None:
            if state["done"]:
                return
            state["evicted"] = True
            state["done"] = True
            trace.record(time, "eviction", "incident_response")
            engine.request_stop()

        def detect(time: float, source: str) -> None:
            if math.isnan(state["detection_time"]):
                state["detection_time"] = time
                trace.record(time, "detection", source)
                if cfg.response_enabled:
                    if cfg.response_delay_rate is None:
                        evict(time)
                    else:
                        delay = rng.exponential(
                            1.0 / cfg.response_delay_rate
                        )
                        if time + delay <= cfg.horizon:
                            engine.schedule(
                                time + delay, lambda ev: evict(ev.time)
                            )

        def succeed(time: float, how: str) -> None:
            if math.isnan(state["success_time"]):
                state["success_time"] = time
                trace.record(time, "goal", how)
                state["done"] = True
                engine.request_stop()

        # -------------------------- handlers ---------------------------

        def schedule_detection_noise(
            now: float, rate: float, p_success: float, host: str
        ) -> None:
            """Failed attempts against ``host`` may be noticed."""
            p_detect = tables.detection_noise.get(host)
            if p_detect is None:
                p_detect = self._detection_noise(host)
            noisy_rate = rate * (1.0 - p_success) * p_detect
            if noisy_rate <= 0:
                return
            t = now + rng.exponential(1.0 / noisy_rate)
            if t <= cfg.horizon:
                engine.schedule(
                    t, lambda ev, h=host: detect(ev.time, f"host_ids:{h}")
                )

        def schedule_compromise(
            now: float,
            source: str,
            target: str,
            vector_name: str,
            rate: float,
            p_success: float,
        ) -> None:
            key = (source, target, vector_name)
            if key in scheduled_pairs or target in compromised:
                return
            scheduled_pairs.add(key)
            schedule_detection_noise(now, rate, p_success, target)
            effective = rate * p_success
            if effective <= 0:
                return
            t = now + rng.exponential(1.0 / effective)
            if t <= cfg.horizon:
                engine.schedule(
                    t,
                    lambda ev, tgt=target, vec=vector_name: on_compromise(
                        ev.time, tgt, vec
                    ),
                )

        def on_compromise(now: float, host: str, how: str) -> None:
            if host in compromised or state["done"]:
                return
            compromised.add(host)
            compromise_times[host] = now
            trace.record(now, "compromise", host, vector=how)
            stages.reach(AttackStage.INITIAL, now, host)
            if how != "entry":
                # Lateral movement, not an independent initial infection.
                stages.reach(AttackStage.PROPAGATION, now, host)
            delay = rng.exponential(1.0 / self.threat.activation_delay_rate)
            if now + delay <= cfg.horizon:
                engine.schedule(
                    now + delay, lambda ev, h=host: on_activation(ev.time, h)
                )
            if self.threat.goal == "recon":
                if len(compromised) >= self.threat.recon_fraction * n_hosts:
                    succeed(now, "recon_complete")

        def on_activation(now: float, host: str) -> None:
            if state["done"] or host in activated:
                return
            activated.add(host)
            trace.record(now, "activation", host)
            stages.reach(AttackStage.ACTIVATED, now, host)
            # C2 channel comes alive with the first activation.
            if self.threat.c2 is not None and not state["c2_started"]:
                state["c2_started"] = True
                t_detect = self.threat.c2.first_detection_time(
                    now, cfg.horizon, self.network, self.catalog, rng
                )
                if t_detect is not None:
                    engine.schedule(
                        t_detect, lambda ev: detect(ev.time, "c2_beacon")
                    )
            # Privilege escalation.
            p_root = tables.escalation.get(host)
            if p_root is None:
                p_root = self._escalation_probability(host)
            schedule_detection_noise(
                now, self.threat.escalation_rate, p_root, host
            )
            rate = self.threat.escalation_rate * p_root
            if rate > 0:
                t = now + rng.exponential(1.0 / rate)
                if t <= cfg.horizon:
                    engine.schedule(
                        t, lambda ev, h=host: on_root(ev.time, h)
                    )
            # Lateral movement.
            plans = tables.propagation.get(host)
            if plans is None:  # non-computer host: not precompiled
                plans = self._propagation_plans(host)
            for vector_name, target, rate, p in plans:
                schedule_compromise(
                    now, host, target, vector_name, rate, p
                )

        def on_root(now: float, host: str) -> None:
            if state["done"] or host in rooted:
                return
            rooted.add(host)
            root_times[host] = now
            trace.record(now, "root", host)
            stages.reach(AttackStage.ROOT_ACCESS, now, host)
            maybe_schedule_reprogram(now, host)
            if elide and self.threat.goal == "exfiltrate":
                _exfil_update(now)

        def maybe_schedule_reprogram(now: float, host: str) -> None:
            if self.threat.goal != "impair":
                return
            role = self.network.host(host).role
            if (
                self.threat.requires_engineering_host
                and role != HostRole.ENGINEERING_WORKSTATION
            ):
                return
            plc_probs = tables.reprogram.get(host)
            if plc_probs is None:  # non-computer host: not precompiled
                plc_probs = self._reprogram_plans(host, plcs)
            for plc_name, p in plc_probs:
                if plc_name in reprogram_scheduled:
                    continue
                schedule_detection_noise(
                    now, self.threat.reprogram_rate, p, plc_name
                )
                rate = self.threat.reprogram_rate * p
                if rate <= 0:
                    continue
                reprogram_scheduled.add(plc_name)
                t = now + rng.exponential(1.0 / rate)
                if t <= cfg.horizon:
                    engine.schedule(
                        t,
                        lambda ev, p_name=plc_name: on_sabotage(
                            ev.time, p_name
                        ),
                    )

        def on_sabotage(now: float, plc_name: str) -> None:
            if state["done"] or not math.isnan(state["sabotage_start"]):
                return
            if elide:
                _resume_ticking(now)
            state["sabotage_start"] = now
            trace.record(now, "sabotage", plc_name)
            plant.sabotage(registers)
            state["spoof_effective"] = (
                spoofer is not None and rng.random() < tables.spoof
            )

        def _reachable_data() -> List[str]:
            """Rooted hosts with process-data access (exfiltration)."""
            return [
                h
                for h in rooted
                if self.network.host(h).role
                in (HostRole.HISTORIAN, HostRole.SCADA_SERVER)
                or any(
                    self.network.flow_allowed(h, other, "historian")
                    for other in self.network.host_names
                    if self.network.host(other).role == HostRole.HISTORIAN
                )
            ]

        def on_tick(now: float) -> None:
            if state["done"]:
                return
            state["ticks"] = state.get("ticks", 0) + 1
            dt_seconds = cfg.tick_interval * 3600.0
            plant.step(registers, dt=dt_seconds)
            damage.update(plant.stress_level(), dt_seconds, now)
            sabotage_active = not math.isnan(state["sabotage_start"])
            # What the master sees.
            reported = dict(registers)
            actual_reading = float(registers.get(monitored, 0))
            if sabotage_active and state["spoof_effective"] and spoofer is not None:
                reported[monitored] = max(0, int(spoofer.emit(rng)))
            elif spoofer is not None and not sabotage_active:
                spoofer.record(actual_reading)
            findings = master.poll(now, reported)
            if findings:
                detect(now, findings[0])
            # Goal progress.
            if self.threat.goal == "impair" and damage.impaired:
                stages.reach(
                    AttackStage.DEVICE_IMPAIRMENT, now, "physical_process"
                )
                succeed(now, "device_impairment")
            if self.threat.goal == "exfiltrate":
                reachable_data = _reachable_data()
                if reachable_data:
                    state["exfiltrated"] += (
                        self.threat.exfiltration_rate
                        * cfg.tick_interval
                        * len(reachable_data)
                    )
                    if state["exfiltrated"] >= self.threat.exfiltration_target:
                        succeed(now, "exfiltration_complete")
            next_tick = now + cfg.tick_interval
            if next_tick <= cfg.horizon:
                engine.schedule(next_tick, lambda ev: on_tick(ev.time))

        # ---------------------- tick-elision fast path ------------------
        #
        # Pre-sabotage, ``on_tick`` draws no randomness and depends only
        # on the (plant, config) pair, so its three observable effects —
        # the master's first finding, healthy impairment, and
        # exfiltration accrual — are reproduced from the shared healthy
        # trajectory (the first two) and tick arithmetic (the third).
        # Once sabotage starts, ``_resume_ticking`` restores the exact
        # legacy state at the last elided tick and hands control back to
        # ``on_tick``.

        def _healthy_tick_effects(ev) -> None:
            """Replay every elided effect of the tick firing at ``ev.time``.

            One idempotent dispatcher backs all scheduled milestone /
            exfiltration-check events, because the legacy ``on_tick``
            body does *not* stop mid-tick when detection evicts the
            attacker: an eviction (which sets ``done``) is still
            followed, within the same tick, by the impairment and
            exfiltration success checks.  Processing the whole tick from
            whichever coinciding event fires first — in the legacy
            sub-order detect → impair → exfiltrate, with ``done``
            guarding only the tick *entry* — reproduces that exactly.
            """
            if elided["suspended"] or state["done"]:
                return
            now = ev.time
            k = traj.ticks_at_or_before(now)
            if elided["effects_tick"] == k:
                return  # a coinciding event already replayed this tick
            elided["effects_tick"] = k
            finding = traj.first_finding
            if finding is not None and finding[0] == k:
                detect(now, finding[1])
            if (
                self.threat.goal == "impair"
                and traj.first_impairment == k
            ):
                stages.reach(
                    AttackStage.DEVICE_IMPAIRMENT, now, "physical_process"
                )
                succeed(now, "device_impairment")
            if self.threat.goal == "exfiltrate":
                _exfil_catch_up(now)
                if (
                    float(elided["exfil_amount"])
                    >= self.threat.exfiltration_target
                ):
                    succeed(now, "exfiltration_complete")

        def _advance_milestones(ev=None) -> None:
            """Scan the next trajectory chunk; schedule found milestones.

            Re-scheduled at the scan frontier while a milestone is still
            unresolved, so replications that end early never pay for a
            full-horizon scan.
            """
            if state["done"] or elided["suspended"]:
                return
            need_impair = self.threat.goal == "impair"
            traj.scan_to(int(elided["frontier"]) + _MILESTONE_SCAN_CHUNK)
            elided["frontier"] = traj.scanned
            if not elided["detect_scheduled"] and traj.first_finding:
                elided["detect_scheduled"] = True
                engine.schedule(
                    traj.tick_time(traj.first_finding[0]),
                    _healthy_tick_effects,
                )
            if (
                need_impair
                and not elided["impair_scheduled"]
                and traj.first_impairment is not None
            ):
                elided["impair_scheduled"] = True
                engine.schedule(
                    traj.tick_time(traj.first_impairment),
                    _healthy_tick_effects,
                )
            unresolved = (
                not elided["detect_scheduled"]
                or (need_impair and not elided["impair_scheduled"])
            ) and not traj.scan_exhausted
            if unresolved:
                engine.schedule(
                    traj.tick_time(int(elided["frontier"])),
                    _advance_milestones,
                )

        def _exfil_catch_up(now: float) -> None:
            """Accrue the elided ticks at or before ``now`` with the
            current reachable-host count (exactly one addition per tick,
            in tick order, matching the legacy loop's float stream)."""
            idx = int(elided["exfil_idx"])
            n = int(elided["exfil_n"])
            while True:
                t_next = traj.tick_time(idx + 1)
                if t_next is None or t_next > now:
                    break
                idx += 1
                if n > 0:
                    elided["exfil_amount"] = float(elided["exfil_amount"]) + (
                        self.threat.exfiltration_rate * cfg.tick_interval * n
                    )
            elided["exfil_idx"] = idx

        def _exfil_update(now: float) -> None:
            """Re-predict the exfiltration-complete tick after ``rooted``
            changed; keeps exactly one pending check event at the tick
            where the legacy loop would declare success."""
            _exfil_catch_up(now)
            elided["exfil_n"] = len(_reachable_data())
            pending = elided["exfil_event"]
            if pending is not None:
                engine.cancel(pending)
                elided["exfil_event"] = None
            n = int(elided["exfil_n"])
            if n <= 0:
                return
            amount = float(elided["exfil_amount"])
            k = int(elided["exfil_idx"])
            while True:
                t_next = traj.tick_time(k + 1)
                if t_next is None:
                    return  # never crosses the target before the horizon
                k += 1
                amount += (
                    self.threat.exfiltration_rate * cfg.tick_interval * n
                )
                if amount >= self.threat.exfiltration_target:
                    elided["exfil_event"] = engine.schedule(
                        t_next, _healthy_tick_effects
                    )
                    return

        def _resume_ticking(now: float) -> None:
            """Hand control back to the legacy per-tick loop at sabotage.

            Restores plant, registers, damage, spoofer and the master's
            spoof-detector window to their exact states after the last
            elided tick ``j <= now``, then schedules tick ``j + 1`` —
            from there on the resumed loop is byte-for-byte the legacy
            one (including its per-tick spoofed-signal rng draws).
            """
            nonlocal plant
            elided["suspended"] = True
            j = traj.ticks_at_or_before(now)
            elided["resume_tick"] = j
            plant = traj.plant_at(j)
            registers.clear()
            registers.update(traj.registers_at(j))
            # repro: allow[RACE002] engine callbacks run single-threaded inside one work unit's event loop
            damage.damage = traj.damage_at(j)
            healthy_readings = traj.readings_through(j)
            if spoofer is not None:
                for value in healthy_readings:
                    spoofer.record(value)
            detector = master.detectors.get(monitored)
            if detector is not None:
                detector.preload(healthy_readings[-detector.window:])
            t_next = traj.tick_time(j + 1)
            if t_next is not None:
                engine.schedule(t_next, lambda ev: on_tick(ev.time))

        # --------------------------- kick-off ---------------------------

        for entry, p in tables.entry:
            schedule_detection_noise(0.0, self.threat.entry_rate, p, entry)
            rate = self.threat.entry_rate * p
            if rate > 0:
                t = rng.exponential(1.0 / rate)
                if t <= cfg.horizon:
                    engine.schedule(
                        t,
                        lambda ev, h=entry: on_compromise(
                            ev.time, h, "entry"
                        ),
                    )
        if elide:
            _advance_milestones()
        else:
            engine.schedule(cfg.tick_interval, lambda ev: on_tick(ev.time))
        with _span("campaign.replication"):
            engine.run(horizon=cfg.horizon)

        # Telemetry accounting happens after the event loop has fully
        # settled and touches no RNG or simulation state, so enabling it
        # can never perturb the outcome.
        telemetry = _current_telemetry()
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.inc("campaign.replications")
            metrics.inc("campaign.ticks_executed", state.get("ticks", 0))
            if elide:
                if elided["suspended"]:
                    metrics.inc("campaign.sabotage_resumes")
                    metrics.inc(
                        "campaign.ticks_elided", int(elided["resume_tick"])
                    )
                else:
                    metrics.inc(
                        "campaign.ticks_elided",
                        traj.ticks_at_or_before(
                            min(engine.now, cfg.horizon)
                        ),
                    )

        return AttackOutcome(
            success=not math.isnan(state["success_time"]),
            success_time=state["success_time"],
            detection_time=state["detection_time"],
            compromise_times=compromise_times,
            root_times=root_times,
            sabotage_start=state["sabotage_start"],
            stage_times={
                r.stage: r.time for r in stages.records()
            },
            horizon=cfg.horizon,
            n_hosts=n_hosts,
            trace=trace,
            evicted=bool(state["evicted"]),
        )

    def run_batch(
        self,
        replications: int,
        rng: "SeedLike" = None,
        runner: Optional["ExperimentRunner"] = None,
        on_result: Optional[Callable[[int], None]] = None,
        cancel: Optional[object] = None,
    ) -> List[AttackOutcome]:
        """Independent replications.

        Two execution modes:

        * **Shared-generator (legacy)** — when ``rng`` is a
          :class:`numpy.random.Generator` and no ``runner`` is given,
          replications draw sequentially from that one generator,
          preserving the library's historical streams.
        * **Runner** — when a ``runner`` is given (or ``rng`` is a seed
          / ``SeedSequence`` / ``None``), each replication gets its own
          generator spawned centrally from the root seed, so results
          are identical across the ``serial``, ``thread`` and
          ``process`` backends and any worker count.  A ``Generator``
          passed together with a runner contributes one draw to derive
          the root seed.

        ``on_result(replication_index)`` (optional) reports partial
        progress; ``cancel`` (optional, ``is_set()`` protocol) aborts
        the batch with
        :class:`~repro.exec.backends.ExecutionCancelled`.  Neither
        affects outcomes.

        Raises:
            ValueError: If ``replications < 1``.
        """
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        if runner is None and isinstance(rng, np.random.Generator):
            return self._legacy_batch(
                replications, rng, self.run, on_result, cancel
            )
        from repro.exec import ExperimentRunner

        active = runner or ExperimentRunner()
        unit_hook = None
        if on_result is not None:
            unit_hook = lambda index, _result: on_result(index)
        return active.run_replications(
            self.run,
            replications,
            seed=rng,
            on_result=unit_hook,
            cancel=cancel,
        )

    def _legacy_batch(
        self,
        replications: int,
        rng: np.random.Generator,
        body: Callable[[np.random.Generator], object],
        on_result: Optional[Callable[[int], None]],
        cancel: Optional[object],
    ) -> List:
        """Shared-generator loop with the optional progress hooks."""
        if on_result is None and cancel is None:
            return [body(rng) for _ in range(replications)]
        from repro.exec.backends import ExecutionCancelled

        results: List = []
        for index in range(replications):
            if cancel is not None and cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {index} of "
                    f"{replications} replications"
                )
            results.append(body(rng))
            if on_result is not None:
                on_result(index)
        return results

    def run_batch_table(
        self,
        replications: int,
        rng: "SeedLike" = None,
        runner: Optional["ExperimentRunner"] = None,
        on_result: Optional[Callable[[int], None]] = None,
        cancel: Optional[object] = None,
        max_records_in_ram: Optional[int] = None,
        aggregators: Tuple[Callable[..., None], ...] = (),
        batch_size: Optional[int] = None,
    ):
        """Independent replications as a columnar response table.

        Same seeding/execution modes as :meth:`run_batch`, but each
        replication reduces to its ``(success, tta, ttsf, final_ratio)``
        response row worker-side — the ``process`` backend ships four
        floats per replication instead of pickling full
        :class:`AttackOutcome` objects (traces included) — and the batch
        comes back as a :class:`repro.results.RecordTable`.

        ``max_records_in_ram`` switches the batch to **streaming** mode:
        rows flow through a
        :class:`~repro.results.streaming.StreamingTableBuilder` that
        spills fixed-size chunks to ``.npz`` shards, the runner runs
        with ``collect=False`` (no per-unit state at the coordinator),
        and the result is a lazy
        :class:`~repro.results.streaming.ShardedRecordTable`.  Rows are
        identical to the default mode for the same seed — only where
        they live differs.

        ``aggregators`` are fed every response row as it completes, in
        submission order — :class:`~repro.results.streaming
        .StreamingSummary` instances stream whole chunks, any other
        callable is invoked per row as ``agg((success, tta, ttsf,
        final_ratio))`` — in both modes, so running summaries/CIs come
        out of a campaign without touching the table at all.

        ``batch_size`` switches replications to the **mega-batch**
        lowering: lanes advance ``batch_size`` at a time through
        :class:`repro.attacks.batched.CampaignBatchEngine`, each batch
        unit seeded exactly like :meth:`ExperimentRunner
        .run_batched_replications` (``batch_size=1`` is therefore
        bit-identical to the runner-mode scalar path; larger batches on
        the vectorized path are distribution-identical).  Batching
        always uses runner-mode seeding — a ``Generator`` passed as
        ``rng`` contributes one draw to derive the root seed — and
        composes with streaming and aggregators; progress hooks observe
        one *unit* (one batch) per call.

        Returns:
            A :class:`repro.results.RecordTable` with the library's
            response columns, one row per replication in order (a
            ``ShardedRecordTable`` in streaming mode).

        Raises:
            TypeError: If ``replications`` or ``batch_size`` is not an
                integer.
            ValueError: If either is ``< 1``.
        """
        from repro.exec import validate_batch_args

        validate_batch_args(replications, batch_size)
        from repro.results import RecordTable

        if max_records_in_ram is not None:
            return self._stream_batch_table(
                replications,
                rng,
                runner,
                on_result,
                cancel,
                max_records_in_ram,
                aggregators,
                batch_size,
            )
        if batch_size is not None:
            rows = None
            data = self._batched_rows(
                replications, rng, runner, on_result, cancel, batch_size
            )
        elif runner is None and isinstance(rng, np.random.Generator):
            rows = self._legacy_batch(
                replications,
                rng,
                lambda gen: self.run(gen).response_row(self.config.horizon),
                on_result,
                cancel,
            )
        else:
            from repro.exec import ExperimentRunner

            active = runner or ExperimentRunner()
            unit_hook = None
            if on_result is not None:
                unit_hook = lambda index, _result: on_result(index)
            rows = active.run_replications(
                _response_row_unit,
                replications,
                seed=rng,
                common_args=(self,),
                on_result=unit_hook,
                cancel=cancel,
            )
        if rows is not None:
            data = np.asarray(rows, dtype=np.float64).reshape(len(rows), 4)
        columns = {
            "success": data[:, 0],
            "tta": data[:, 1],
            "ttsf": data[:, 2],
            "final_ratio": data[:, 3],
        }
        if aggregators:
            _feed_aggregators(
                aggregators, columns, rows if rows is not None else list(data)
            )
        return RecordTable(columns)

    def _batched_rows(
        self,
        replications: int,
        rng: "SeedLike",
        runner: Optional["ExperimentRunner"],
        on_result: Optional[Callable[[int], None]],
        cancel: Optional[object],
        batch_size: int,
        take: Optional[Callable[[int, np.ndarray], None]] = None,
    ) -> Optional[np.ndarray]:
        """Run the mega-batch lowering; return stacked response rows.

        With ``take`` the per-unit row blocks stream through it instead
        (``collect=False``) and ``None`` is returned.
        """
        from repro.attacks.batched import (
            CampaignBatchEngine,
            simulate_batch_rows,
        )
        from repro.exec import ExperimentRunner

        engine = CampaignBatchEngine(self)
        active = runner or ExperimentRunner()
        unit_hook = take
        if unit_hook is None and on_result is not None:
            unit_hook = lambda index, _result: on_result(index)
        blocks = active.run_batched_replications(
            simulate_batch_rows,
            replications,
            batch_size,
            seed=rng,
            common_args=(engine,),
            on_result=unit_hook,
            cancel=cancel,
            collect=take is None,
        )
        if take is not None:
            return None
        return np.concatenate(blocks, axis=0)

    def _stream_batch_table(
        self,
        replications: int,
        rng: "SeedLike",
        runner: Optional["ExperimentRunner"],
        on_result: Optional[Callable[[int], None]],
        cancel: Optional[object],
        max_records_in_ram: int,
        aggregators: Tuple[Callable[..., None], ...],
        batch_size: Optional[int] = None,
    ):
        """The bounded-memory body of :meth:`run_batch_table`."""
        from repro.results.streaming import StreamingTableBuilder

        builder = StreamingTableBuilder(
            max_records_in_ram=max_records_in_ram
        )
        buffer: List[Tuple[float, float, float, float]] = []
        flush_at = min(max_records_in_ram, 4096)

        def flush() -> None:
            if not buffer:
                return
            data = np.asarray(buffer, dtype=np.float64).reshape(
                len(buffer), 4
            )
            columns = {
                "success": data[:, 0],
                "tta": data[:, 1],
                "ttsf": data[:, 2],
                "final_ratio": data[:, 3],
            }
            if aggregators:
                _feed_aggregators(aggregators, columns, buffer)
            builder.append_rows(columns)
            buffer.clear()

        def take(index: int, row: Tuple[float, float, float, float]) -> None:
            buffer.append(row)
            if on_result is not None:
                on_result(index)
            if len(buffer) >= flush_at:
                flush()

        if batch_size is not None:

            def take_block(index: int, block: np.ndarray) -> None:
                buffer.extend(tuple(row) for row in block)
                if on_result is not None:
                    on_result(index)
                if len(buffer) >= flush_at:
                    flush()

            self._batched_rows(
                replications,
                rng,
                runner,
                on_result,
                cancel,
                batch_size,
                take=take_block,
            )
        elif runner is None and isinstance(rng, np.random.Generator):
            # Legacy shared-generator mode, streamed: same draw order
            # as the collected path, rows folded in as they complete.
            from repro.exec.backends import ExecutionCancelled

            for index in range(replications):
                if cancel is not None and cancel.is_set():
                    raise ExecutionCancelled(
                        f"batch cancelled after {index} of "
                        f"{replications} replications"
                    )
                take(
                    index, self.run(rng).response_row(self.config.horizon)
                )
        else:
            from repro.exec import ExperimentRunner

            active = runner or ExperimentRunner()
            active.run_replications(
                _response_row_unit,
                replications,
                seed=rng,
                common_args=(self,),
                on_result=take,
                cancel=cancel,
                collect=False,
            )
        flush()
        return builder.build()
