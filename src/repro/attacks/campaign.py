"""The attack-campaign simulator.

Couples a :class:`~repro.attacks.profiles.ThreatProfile`, a
:class:`~repro.scada.network.SCADANetwork` (with installed variants), the
:class:`~repro.diversity.catalog.VariantCatalog`, the cooling plant and
the SCADA master into one discrete-event simulation.  Each replication
produces an :class:`AttackOutcome`, from which the paper's security
indicators — Time-To-Attack, Time-To-Security-Failure, compromised ratio
— are computed (:mod:`repro.core.indicators`).

Modeling notes
--------------

* Attempt processes are *thinned Poisson processes*: attempts occur at a
  vector's base rate and each succeeds with the per-variant probability
  from the catalog, so the time to first success is exponential with
  rate ``base_rate × p_success`` — zero-probability targets are simply
  never compromised.  This is exactly the paper's mechanism of *"varying
  the success probabilities involved at each attack stage"* as a function
  of the installed component variants.
* Failed attempts are noisy: they feed a detection process whose rate
  grows when behavioural antivirus variants are deployed.
* Sabotage couples to the physical plant through the PLC register image;
  the payload spoofs the monitoring signal (replay or constant-hold),
  and the master's alarm/spoof-detection logic defines the perceived
  manifestation time (TTSF).
* Time unit: hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # avoid import cost on the hot serial path
    from repro.exec.runner import ExperimentRunner
    from repro.exec.seeding import SeedLike

from repro.attacks.profiles import ThreatProfile
from repro.attacks.stages import AttackStage, StageTracker
from repro.attacks.vectors import PropagationVector
from repro.diversity.catalog import VariantCatalog
from repro.scada.components import ComponentKind, HostRole
from repro.scada.monitoring import Alarm, SCADAMaster
from repro.scada.network import SCADANetwork, Zone
from repro.scada.plant.cooling import CoolingPlant, CoolingPlantConfig
from repro.scada.plant.process import PhysicalProcess
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceRecorder


def _default_plant() -> PhysicalProcess:
    """The SCoPE-like cooling plant, history off for Monte-Carlo speed."""
    return CoolingPlant(CoolingPlantConfig(), record_history=False)


@dataclass
class CampaignConfig:
    """Campaign simulation parameters.

    Attributes:
        horizon: Simulation horizon (hours).
        tick_interval: Plant/master polling period (hours).
        failed_attempt_noise: Baseline probability that one failed
            exploit attempt is noticed by host defenses.
        response_enabled: If True, incident response reacts to the first
            detection; if False (default) the attack continues and
            detection is recorded as TTSF only.
        response_delay_rate: With response enabled, the eviction happens
            an Exp(rate)-distributed delay after detection (triage +
            containment time).  ``None`` means instantaneous eviction
            (the pre-existing stop-at-detection behaviour).
        plant_factory: Builds the physical process under control — the
            cooling plant by default; pass e.g.
            ``lambda: PowerFeeder()`` for the smart-grid scenario.
    """

    horizon: float = 400.0
    tick_interval: float = 0.25
    failed_attempt_noise: float = 0.03
    response_enabled: bool = False
    response_delay_rate: Optional[float] = None
    plant_factory: Callable[[], PhysicalProcess] = field(
        default=_default_plant
    )


@dataclass
class AttackOutcome:
    """Result of one campaign replication.

    Attributes:
        success: Whether the threat achieved its goal before the horizon.
        success_time: Goal-achievement time (nan when unsuccessful) —
            the Time-To-Attack sample.
        detection_time: First perceived manifestation (nan if never) —
            the Time-To-Security-Failure sample.
        compromise_times: ``{host: first_compromise_time}``.
        root_times: ``{host: root_access_time}``.
        sabotage_start: When the controller was reprogrammed (nan if
            never).
        stage_times: First-entry time per canonical attack stage.
        horizon: Horizon used.
        n_hosts: Total computer hosts in the system (denominator of the
            compromised ratio).
        trace: Full event trace.
        evicted: Whether incident response evicted the attacker before
            the goal (always False when response is disabled).
    """

    success: bool
    success_time: float
    detection_time: float
    compromise_times: Dict[str, float]
    root_times: Dict[str, float]
    sabotage_start: float
    stage_times: Dict[AttackStage, float]
    horizon: float
    n_hosts: int
    trace: TraceRecorder
    evicted: bool = False

    def compromised_ratio_at(self, time: float) -> float:
        """Fraction of hosts compromised by ``time``."""
        if self.n_hosts == 0:
            return 0.0
        count = sum(1 for t in self.compromise_times.values() if t <= time)
        return count / self.n_hosts

    def compromised_ratio_curve(
        self, times: List[float]
    ) -> List[Tuple[float, float]]:
        """The compromised-ratio step function sampled at ``times``."""
        return [(t, self.compromised_ratio_at(t)) for t in times]


@dataclass
class _CampaignTables:
    """Static probability tables shared by every replication.

    Attributes:
        entry: ``(host, p_entry)`` per entry candidate, candidate order.
        escalation: ``host → p_escalation`` for computer hosts.
        detection_noise: ``host → p_detect`` for every host.
        propagation: ``source host → [(vector, target, rate, p), ...]``
            in the vector × target order the inline loop used.
        reprogram: ``host → [(plc, p), ...]`` over flow-allowed PLCs,
            with the host's engineering-tool factor folded in.
        spoof: Probability the payload can tamper the monitored signal.
    """

    entry: List[Tuple[str, float]]
    escalation: Dict[str, float]
    detection_noise: Dict[str, float]
    propagation: Dict[str, List[Tuple[str, str, float, float]]]
    reprogram: Dict[str, List[Tuple[str, float]]]
    spoof: float


class AttackCampaign:
    """Runs attack campaigns against a configured SCADA system.

    The per-host success/detection probabilities are pure functions of
    the (network, catalog, threat, config) quadruple, which is fixed for
    the campaign's lifetime — they are compiled into lookup tables on
    the first replication (:meth:`_compile_tables`) instead of being
    recomputed from catalog lookups on every event.  Values and
    iteration orders replicate the inline computations exactly, so
    outcomes are bit-identical to the uncached path.

    Mutating the network/catalog/threat *after* a replication has run
    therefore requires :meth:`invalidate_tables` (in-repo callers build
    a fresh campaign per configuration, which is the recommended
    pattern).
    """

    def __init__(
        self,
        network: SCADANetwork,
        catalog: VariantCatalog,
        threat: ThreatProfile,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self.network = network
        self.catalog = catalog
        self.threat = threat
        self.config = config or CampaignConfig()
        self._tables: Optional[_CampaignTables] = None

    # ------------------------------------------------------------------
    # probability helpers
    # ------------------------------------------------------------------

    def _entry_candidates(self) -> List[str]:
        """Hosts the initial infection can land on.

        Removable media crosses air gaps: any computer with USB ports is
        a candidate; enterprise-zone computers are candidates regardless
        (mail/web entry).
        """
        names: List[str] = []
        for host in self.network.hosts:
            if not host.is_computer:
                continue
            if host.usb_ports or self.network.zone_of(host.name) == Zone.ENTERPRISE:
                names.append(host.name)
        return names

    def _entry_probability(self, host_name: str) -> float:
        host = self.network.host(host_name)
        os_variant = host.variant_of(ComponentKind.OPERATING_SYSTEM)
        action = "usb_autorun" if host.usb_ports else "net_exploit"
        p = self.catalog.success_probability(
            ComponentKind.OPERATING_SYSTEM, os_variant, action
        )
        av = host.variant_of(ComponentKind.ANTIVIRUS)
        if av is not None:
            p *= self.catalog.success_probability(
                ComponentKind.ANTIVIRUS, av, "av_evasion"
            )
        if host.resilient:
            p *= 0.05
        return p

    def _escalation_probability(self, host_name: str) -> float:
        host = self.network.host(host_name)
        os_variant = host.variant_of(ComponentKind.OPERATING_SYSTEM)
        p = self.catalog.success_probability(
            ComponentKind.OPERATING_SYSTEM, os_variant, "priv_escalation"
        )
        if host.resilient:
            p *= 0.05
        return p

    def _propagation_probability(
        self, vector: PropagationVector, target_name: str
    ) -> float:
        target = self.network.host(target_name)
        p = vector.success_probability(target, self.catalog)
        if target.resilient:
            p *= 0.05
        return p

    def _reprogram_probability(self, plc_name: str) -> float:
        plc = self.network.host(plc_name)
        p_fw = self.catalog.success_probability(
            ComponentKind.PLC_FIRMWARE,
            plc.variant_of(ComponentKind.PLC_FIRMWARE),
            "reprogram",
        )
        p_stack = self.catalog.success_probability(
            ComponentKind.PROTOCOL_STACK,
            plc.variant_of(ComponentKind.PROTOCOL_STACK),
            "reprogram",
        )
        p = p_fw * p_stack
        if plc.resilient:
            p *= 0.05
        return p

    def _spoof_probability(self) -> float:
        """Probability the payload can tamper with the monitored signal."""
        sensors = self.network.hosts_with_role(HostRole.SENSOR)
        if not sensors:
            return 1.0
        # The attacker must tamper with the sensor path feeding the
        # master; authenticated sensors make that unlikely.
        probs = [
            self.catalog.success_probability(
                ComponentKind.SENSOR_MODEL,
                s.variant_of(ComponentKind.SENSOR_MODEL),
                "signal_tamper",
            )
            for s in sensors
        ]
        return max(probs)

    def _detection_noise(self, host_name: str) -> float:
        """Per-failed-attempt detection probability at ``host_name``."""
        host = self.network.host(host_name)
        base = self.config.failed_attempt_noise
        av = host.variant_of(ComponentKind.ANTIVIRUS)
        if av is not None:
            evasion = self.catalog.success_probability(
                ComponentKind.ANTIVIRUS, av, "av_evasion"
            )
            base += 0.25 * (1.0 - evasion)
        return min(1.0, base)

    def _propagation_plans(
        self, host: str
    ) -> List[Tuple[str, str, float, float]]:
        """``(vector, target, rate, p)`` lateral-movement plans from ``host``."""
        return [
            (
                vector.name,
                target,
                vector.rate,
                self._propagation_probability(vector, target),
            )
            for vector in self.threat.vectors
            for target in vector.targets(host, self.network)
        ]

    def _reprogram_plans(
        self, host: str, plcs: List[str]
    ) -> List[Tuple[str, float]]:
        """``(plc, p)`` over flow-allowed PLCs, engineering tool folded in.

        Stuxnet drove the PLC through the engineering suite: a tool
        variant on ``host`` scales the reprogram probability.
        """
        tool = self.network.host(host).variant_of(
            ComponentKind.ENGINEERING_TOOL
        )
        tool_factor = (
            self.catalog.success_probability(
                ComponentKind.ENGINEERING_TOOL, tool, "reprogram"
            )
            if tool is not None
            else None
        )
        plans: List[Tuple[str, float]] = []
        for plc_name in plcs:
            if not self.network.flow_allowed(host, plc_name, "modbus"):
                continue
            p = self._reprogram_probability(plc_name)
            if tool_factor is not None:
                p *= tool_factor
            plans.append((plc_name, p))
        return plans

    def invalidate_tables(self) -> None:
        """Drop the compiled probability tables.

        Call after mutating the campaign's network, catalog or threat in
        place; the next replication recompiles the tables against the
        new configuration.
        """
        self._tables = None

    def _compile_tables(self) -> _CampaignTables:
        """Build (once) the static probability tables ``run`` reads."""
        if self._tables is not None:
            return self._tables
        computers = [h.name for h in self.network.hosts if h.is_computer]
        plcs = [h.name for h in self.network.hosts_with_role(HostRole.PLC)]
        self._tables = _CampaignTables(
            entry=[
                (h, self._entry_probability(h))
                for h in self._entry_candidates()
            ],
            escalation={h: self._escalation_probability(h) for h in computers},
            detection_noise={
                h: self._detection_noise(h) for h in self.network.host_names
            },
            propagation={h: self._propagation_plans(h) for h in computers},
            reprogram={h: self._reprogram_plans(h, plcs) for h in computers},
            spoof=self._spoof_probability(),
        )
        return self._tables

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def run(self, rng: np.random.Generator) -> AttackOutcome:
        """One campaign replication."""
        tables = self._compile_tables()
        cfg = self.config
        engine = SimulationEngine()
        trace = TraceRecorder()
        stages = StageTracker()

        computers = [h.name for h in self.network.hosts if h.is_computer]
        plcs = [h.name for h in self.network.hosts_with_role(HostRole.PLC)]
        n_hosts = len(computers)

        compromised: Set[str] = set()
        activated: Set[str] = set()
        rooted: Set[str] = set()
        compromise_times: Dict[str, float] = {}
        root_times: Dict[str, float] = {}
        scheduled_pairs: Set[Tuple[str, str, str]] = set()
        reprogram_scheduled: Set[str] = set()

        state = {
            "detection_time": float("nan"),
            "success_time": float("nan"),
            "sabotage_start": float("nan"),
            "exfiltrated": 0.0,
            "spoof_effective": False,
            "c2_started": False,
            "done": False,
            "evicted": False,
        }

        plant = cfg.plant_factory()
        registers = plant.default_registers()
        damage = plant.make_damage_model()
        monitored = plant.monitored_register
        master = SCADAMaster(
            alarms=[
                Alarm(
                    "process_stress",
                    monitored,
                    high=plant.alarm_threshold,
                    scale=plant.alarm_scale,
                )
            ]
        )
        master.watch(monitored)
        spoofer = self.threat.make_spoofer()

        def evict(time: float) -> None:
            if state["done"]:
                return
            state["evicted"] = True
            state["done"] = True
            trace.record(time, "eviction", "incident_response")
            engine.request_stop()

        def detect(time: float, source: str) -> None:
            if math.isnan(state["detection_time"]):
                state["detection_time"] = time
                trace.record(time, "detection", source)
                if cfg.response_enabled:
                    if cfg.response_delay_rate is None:
                        evict(time)
                    else:
                        delay = rng.exponential(
                            1.0 / cfg.response_delay_rate
                        )
                        if time + delay <= cfg.horizon:
                            engine.schedule(
                                time + delay, lambda ev: evict(ev.time)
                            )

        def succeed(time: float, how: str) -> None:
            if math.isnan(state["success_time"]):
                state["success_time"] = time
                trace.record(time, "goal", how)
                state["done"] = True
                engine.request_stop()

        # -------------------------- handlers ---------------------------

        def schedule_detection_noise(
            now: float, rate: float, p_success: float, host: str
        ) -> None:
            """Failed attempts against ``host`` may be noticed."""
            p_detect = tables.detection_noise.get(host)
            if p_detect is None:
                p_detect = self._detection_noise(host)
            noisy_rate = rate * (1.0 - p_success) * p_detect
            if noisy_rate <= 0:
                return
            t = now + rng.exponential(1.0 / noisy_rate)
            if t <= cfg.horizon:
                engine.schedule(
                    t, lambda ev, h=host: detect(ev.time, f"host_ids:{h}")
                )

        def schedule_compromise(
            now: float,
            source: str,
            target: str,
            vector_name: str,
            rate: float,
            p_success: float,
        ) -> None:
            key = (source, target, vector_name)
            if key in scheduled_pairs or target in compromised:
                return
            scheduled_pairs.add(key)
            schedule_detection_noise(now, rate, p_success, target)
            effective = rate * p_success
            if effective <= 0:
                return
            t = now + rng.exponential(1.0 / effective)
            if t <= cfg.horizon:
                engine.schedule(
                    t,
                    lambda ev, tgt=target, vec=vector_name: on_compromise(
                        ev.time, tgt, vec
                    ),
                )

        def on_compromise(now: float, host: str, how: str) -> None:
            if host in compromised or state["done"]:
                return
            compromised.add(host)
            compromise_times[host] = now
            trace.record(now, "compromise", host, vector=how)
            stages.reach(AttackStage.INITIAL, now, host)
            if how != "entry":
                # Lateral movement, not an independent initial infection.
                stages.reach(AttackStage.PROPAGATION, now, host)
            delay = rng.exponential(1.0 / self.threat.activation_delay_rate)
            if now + delay <= cfg.horizon:
                engine.schedule(
                    now + delay, lambda ev, h=host: on_activation(ev.time, h)
                )
            if self.threat.goal == "recon":
                if len(compromised) >= self.threat.recon_fraction * n_hosts:
                    succeed(now, "recon_complete")

        def on_activation(now: float, host: str) -> None:
            if state["done"] or host in activated:
                return
            activated.add(host)
            trace.record(now, "activation", host)
            stages.reach(AttackStage.ACTIVATED, now, host)
            # C2 channel comes alive with the first activation.
            if self.threat.c2 is not None and not state["c2_started"]:
                state["c2_started"] = True
                t_detect = self.threat.c2.first_detection_time(
                    now, cfg.horizon, self.network, self.catalog, rng
                )
                if t_detect is not None:
                    engine.schedule(
                        t_detect, lambda ev: detect(ev.time, "c2_beacon")
                    )
            # Privilege escalation.
            p_root = tables.escalation.get(host)
            if p_root is None:
                p_root = self._escalation_probability(host)
            schedule_detection_noise(
                now, self.threat.escalation_rate, p_root, host
            )
            rate = self.threat.escalation_rate * p_root
            if rate > 0:
                t = now + rng.exponential(1.0 / rate)
                if t <= cfg.horizon:
                    engine.schedule(
                        t, lambda ev, h=host: on_root(ev.time, h)
                    )
            # Lateral movement.
            plans = tables.propagation.get(host)
            if plans is None:  # non-computer host: not precompiled
                plans = self._propagation_plans(host)
            for vector_name, target, rate, p in plans:
                schedule_compromise(
                    now, host, target, vector_name, rate, p
                )

        def on_root(now: float, host: str) -> None:
            if state["done"] or host in rooted:
                return
            rooted.add(host)
            root_times[host] = now
            trace.record(now, "root", host)
            stages.reach(AttackStage.ROOT_ACCESS, now, host)
            maybe_schedule_reprogram(now, host)

        def maybe_schedule_reprogram(now: float, host: str) -> None:
            if self.threat.goal != "impair":
                return
            role = self.network.host(host).role
            if (
                self.threat.requires_engineering_host
                and role != HostRole.ENGINEERING_WORKSTATION
            ):
                return
            plc_probs = tables.reprogram.get(host)
            if plc_probs is None:  # non-computer host: not precompiled
                plc_probs = self._reprogram_plans(host, plcs)
            for plc_name, p in plc_probs:
                if plc_name in reprogram_scheduled:
                    continue
                schedule_detection_noise(
                    now, self.threat.reprogram_rate, p, plc_name
                )
                rate = self.threat.reprogram_rate * p
                if rate <= 0:
                    continue
                reprogram_scheduled.add(plc_name)
                t = now + rng.exponential(1.0 / rate)
                if t <= cfg.horizon:
                    engine.schedule(
                        t,
                        lambda ev, p_name=plc_name: on_sabotage(
                            ev.time, p_name
                        ),
                    )

        def on_sabotage(now: float, plc_name: str) -> None:
            if state["done"] or not math.isnan(state["sabotage_start"]):
                return
            state["sabotage_start"] = now
            trace.record(now, "sabotage", plc_name)
            plant.sabotage(registers)
            state["spoof_effective"] = (
                spoofer is not None and rng.random() < tables.spoof
            )

        def on_tick(now: float) -> None:
            if state["done"]:
                return
            dt_seconds = cfg.tick_interval * 3600.0
            plant.step(registers, dt=dt_seconds)
            damage.update(plant.stress_level(), dt_seconds, now)
            sabotage_active = not math.isnan(state["sabotage_start"])
            # What the master sees.
            reported = dict(registers)
            actual_reading = float(registers.get(monitored, 0))
            if sabotage_active and state["spoof_effective"] and spoofer is not None:
                reported[monitored] = max(0, int(spoofer.emit(rng)))
            elif spoofer is not None and not sabotage_active:
                spoofer.record(actual_reading)
            findings = master.poll(now, reported)
            if findings:
                detect(now, findings[0])
            # Goal progress.
            if self.threat.goal == "impair" and damage.impaired:
                stages.reach(
                    AttackStage.DEVICE_IMPAIRMENT, now, "physical_process"
                )
                succeed(now, "device_impairment")
            if self.threat.goal == "exfiltrate":
                reachable_data = [
                    h
                    for h in rooted
                    if self.network.host(h).role
                    in (HostRole.HISTORIAN, HostRole.SCADA_SERVER)
                    or any(
                        self.network.flow_allowed(h, other, "historian")
                        for other in self.network.host_names
                        if self.network.host(other).role == HostRole.HISTORIAN
                    )
                ]
                if reachable_data:
                    state["exfiltrated"] += (
                        self.threat.exfiltration_rate
                        * cfg.tick_interval
                        * len(reachable_data)
                    )
                    if state["exfiltrated"] >= self.threat.exfiltration_target:
                        succeed(now, "exfiltration_complete")
            next_tick = now + cfg.tick_interval
            if next_tick <= cfg.horizon:
                engine.schedule(next_tick, lambda ev: on_tick(ev.time))

        # --------------------------- kick-off ---------------------------

        for entry, p in tables.entry:
            schedule_detection_noise(0.0, self.threat.entry_rate, p, entry)
            rate = self.threat.entry_rate * p
            if rate > 0:
                t = rng.exponential(1.0 / rate)
                if t <= cfg.horizon:
                    engine.schedule(
                        t,
                        lambda ev, h=entry: on_compromise(
                            ev.time, h, "entry"
                        ),
                    )
        engine.schedule(cfg.tick_interval, lambda ev: on_tick(ev.time))
        engine.run(horizon=cfg.horizon)

        return AttackOutcome(
            success=not math.isnan(state["success_time"]),
            success_time=state["success_time"],
            detection_time=state["detection_time"],
            compromise_times=compromise_times,
            root_times=root_times,
            sabotage_start=state["sabotage_start"],
            stage_times={
                r.stage: r.time for r in stages.records()
            },
            horizon=cfg.horizon,
            n_hosts=n_hosts,
            trace=trace,
            evicted=bool(state["evicted"]),
        )

    def run_batch(
        self,
        replications: int,
        rng: "SeedLike" = None,
        runner: Optional["ExperimentRunner"] = None,
    ) -> List[AttackOutcome]:
        """Independent replications.

        Two execution modes:

        * **Shared-generator (legacy)** — when ``rng`` is a
          :class:`numpy.random.Generator` and no ``runner`` is given,
          replications draw sequentially from that one generator,
          preserving the library's historical streams.
        * **Runner** — when a ``runner`` is given (or ``rng`` is a seed
          / ``SeedSequence`` / ``None``), each replication gets its own
          generator spawned centrally from the root seed, so results
          are identical across the ``serial``, ``thread`` and
          ``process`` backends and any worker count.  A ``Generator``
          passed together with a runner contributes one draw to derive
          the root seed.

        Raises:
            ValueError: If ``replications < 1``.
        """
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        if runner is None and isinstance(rng, np.random.Generator):
            return [self.run(rng) for _ in range(replications)]
        from repro.exec import ExperimentRunner

        active = runner or ExperimentRunner()
        return active.run_replications(self.run, replications, seed=rng)
