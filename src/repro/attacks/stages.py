"""Attack-stage progression.

The paper's example stage chain: *"initial, activated, root access,
network propagation, device impairment"*.  The campaign simulator records
the first time each stage is reached; security indicators are defined
over these times.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional


class AttackStage(IntEnum):
    """Canonical stages, ordered by progression."""

    INITIAL = 0
    ACTIVATED = 1
    ROOT_ACCESS = 2
    PROPAGATION = 3
    DEVICE_IMPAIRMENT = 4

    @property
    def label(self) -> str:
        """Lower-case human-readable label."""
        return self.name.lower()


@dataclass(frozen=True)
class StageRecord:
    """First entry into a stage.

    Attributes:
        stage: The stage reached.
        time: Simulation time of first entry.
        subject: Host (or device) on which the stage milestone occurred.
    """

    stage: AttackStage
    time: float
    subject: str


class StageTracker:
    """Tracks the earliest time each stage is reached."""

    def __init__(self) -> None:
        self._records: Dict[AttackStage, StageRecord] = {}

    def reach(self, stage: AttackStage, time: float, subject: str) -> bool:
        """Record a stage milestone; returns True if it is the first."""
        if stage not in self._records:
            self._records[stage] = StageRecord(stage, time, subject)
            return True
        return False

    def time_of(self, stage: AttackStage) -> Optional[float]:
        """First-entry time of ``stage`` (None if never reached)."""
        record = self._records.get(stage)
        return record.time if record else None

    def reached(self, stage: AttackStage) -> bool:
        """Whether ``stage`` was ever reached."""
        return stage in self._records

    def records(self) -> List[StageRecord]:
        """All records in stage order."""
        return [self._records[s] for s in sorted(self._records)]

    def furthest(self) -> Optional[AttackStage]:
        """The most advanced stage reached, or None."""
        if not self._records:
            return None
        return max(self._records)
