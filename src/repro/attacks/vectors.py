"""Propagation vectors.

Stuxnet *"propagates either locally (e.g., by means of USB sticks) or
remotely (e.g., via shared folders or the print spooler vulnerability)"*.
Each vector knows:

* which **service** it needs on the network path (firewall-relevant),
* which **exploit action** it exercises (catalog key → per-variant
  success probability),
* which hosts it can target at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.diversity.catalog import VariantCatalog
from repro.scada.components import ComponentKind, Host
from repro.scada.network import SCADANetwork


@dataclass(frozen=True)
class PropagationVector:
    """Base propagation vector.

    Attributes:
        name: Vector name.
        service: Network service label the vector rides on (``"local"``
            means no network flow is needed — e.g. removable media).
        action: Exploitability key in the variant catalog.
        rate: Base attempt rate (attempts per time unit) of a compromised
            host wielding this vector.
    """

    name: str
    service: str
    action: str
    rate: float = 1.0

    def applicable(self, target: Host) -> bool:
        """Whether the vector can target ``target`` at all."""
        return target.is_computer

    def success_probability(
        self, target: Host, catalog: VariantCatalog
    ) -> float:
        """Per-attempt success probability against ``target``.

        The OS exploit must land *and* the host's antivirus must be
        evaded (their probabilities multiply).
        """
        os_variant = target.variant_of(ComponentKind.OPERATING_SYSTEM)
        p_exploit = catalog.success_probability(
            ComponentKind.OPERATING_SYSTEM, os_variant, self.action
        )
        av_variant = target.variant_of(ComponentKind.ANTIVIRUS)
        if av_variant is not None:
            p_exploit *= catalog.success_probability(
                ComponentKind.ANTIVIRUS, av_variant, "av_evasion"
            )
        return p_exploit

    def targets(
        self, source: str, network: SCADANetwork
    ) -> List[str]:
        """Host names this vector can reach from ``source``."""
        if self.service == "local":
            # Removable media moves inside a zone (operator behaviour).
            zone = network.zone_of(source)
            return [
                h.name
                for h in network.hosts_in_zone(zone)
                if h.name != source and self.applicable(h)
            ]
        return [
            name
            for name in network.reachable_targets(source, self.service)
            if self.applicable(network.host(name))
        ]


class USBVector(PropagationVector):
    """Removable-media infection (Stuxnet's local vector)."""

    def __init__(self, rate: float = 0.2) -> None:
        super().__init__(
            name="usb", service="local", action="usb_autorun", rate=rate
        )

    def applicable(self, target: Host) -> bool:
        return target.is_computer and target.usb_ports


class SharedFolderVector(PropagationVector):
    """Network-share infection (Stuxnet's SMB vector)."""

    def __init__(self, rate: float = 0.6) -> None:
        super().__init__(
            name="shared_folder", service="smb", action="smb_exploit", rate=rate
        )

    def applicable(self, target: Host) -> bool:
        return target.is_computer and target.shared_folders


class PrintSpoolerVector(PropagationVector):
    """Print-spooler remote code execution (MS10-061 style)."""

    def __init__(self, rate: float = 0.4) -> None:
        super().__init__(
            name="print_spooler",
            service="spooler",
            action="print_spooler",
            rate=rate,
        )

    def applicable(self, target: Host) -> bool:
        return target.is_computer and target.print_spooler


class NetworkExploitVector(PropagationVector):
    """Generic remote service exploitation."""

    def __init__(self, rate: float = 0.3, service: str = "scada") -> None:
        super().__init__(
            name="net_exploit", service=service, action="net_exploit", rate=rate
        )
