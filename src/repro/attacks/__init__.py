"""Threat models and the attack-campaign simulator.

Implements the paper's attack side:

* :mod:`repro.attacks.stages` — the canonical stage progression the
  paper lists (*initial, activated, root access, network propagation,
  device impairment*).
* :mod:`repro.attacks.vectors` — Stuxnet's propagation vectors (USB
  removable media, shared folders, print spooler, generic network
  exploit).
* :mod:`repro.attacks.c2` — command-and-control beaconing and its
  detection.
* :mod:`repro.attacks.spoof` — monitoring-signal spoofing (constant
  hold vs. record-and-replay).
* :mod:`repro.attacks.profiles` — Stuxnet-like (sabotage), Duqu-like
  (exfiltration) and Flame-like (reconnaissance) threat profiles.
* :mod:`repro.attacks.campaign` — the discrete-event campaign simulator
  coupling a threat profile, a SCADA network, the variant catalog, the
  cooling plant and the SCADA master; produces the
  :class:`~repro.attacks.campaign.AttackOutcome` records from which the
  security indicators are computed.
"""

from repro.attacks.batched import CampaignBatchEngine
from repro.attacks.c2 import C2Channel
from repro.attacks.campaign import AttackCampaign, AttackOutcome, CampaignConfig
from repro.attacks.history import (
    CalibratedStages,
    IncidentRecord,
    calibrate,
    generate_incident_history,
)
from repro.attacks.profiles import (
    ThreatProfile,
    duqu_like,
    flame_like,
    stuxnet_like,
)
from repro.attacks.spoof import ConstantSpoofer, ReplaySpoofer, Spoofer
from repro.attacks.stages import AttackStage, StageRecord
from repro.attacks.vectors import (
    NetworkExploitVector,
    PrintSpoolerVector,
    PropagationVector,
    SharedFolderVector,
    USBVector,
)

__all__ = [
    "AttackCampaign",
    "AttackOutcome",
    "AttackStage",
    "C2Channel",
    "CalibratedStages",
    "CampaignBatchEngine",
    "CampaignConfig",
    "IncidentRecord",
    "calibrate",
    "generate_incident_history",
    "ConstantSpoofer",
    "NetworkExploitVector",
    "PrintSpoolerVector",
    "PropagationVector",
    "ReplaySpoofer",
    "SharedFolderVector",
    "Spoofer",
    "StageRecord",
    "ThreatProfile",
    "USBVector",
    "duqu_like",
    "flame_like",
    "stuxnet_like",
]
