"""Plackett–Burman screening designs.

PB designs estimate k <= N-1 main effects in N runs (N a multiple of 4)
and are the classical choice for *screening*: finding which of many
components matter before running a finer experiment — exactly the
narrowing role DoE plays in the paper's step 2.

Designs for N in {8, 12, 16, 20, 24} are built by cyclic rotation of the
standard generating rows, plus a final row of all minus signs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.doe.design import Design, Factor, Run

# Standard Plackett–Burman generating rows (+ = +1, - = -1).
_GENERATING_ROWS: Dict[int, str] = {
    8: "+++-+--",
    12: "++-+++---+-",
    16: "++++-+-++--+---",
    20: "++--++++-+-+----++-",
    24: "+++++-+-++--++--+-+----",
}


def _pb_matrix(n_runs: int) -> np.ndarray:
    """The full (n_runs × n_runs-1) PB matrix in coded units."""
    if n_runs not in _GENERATING_ROWS:
        raise ValueError(
            f"Plackett-Burman designs available for N in "
            f"{sorted(_GENERATING_ROWS)}, got {n_runs}"
        )
    row = [1 if c == "+" else -1 for c in _GENERATING_ROWS[n_runs]]
    size = n_runs - 1
    matrix = np.zeros((n_runs, size), dtype=int)
    current = list(row)
    for i in range(size):
        matrix[i, :] = current
        # cyclic right-shift
        current = [current[-1]] + current[:-1]
    matrix[size, :] = -1
    return matrix


def smallest_pb_runs(n_factors: int) -> int:
    """The smallest supported PB run count that fits ``n_factors``."""
    for n in sorted(_GENERATING_ROWS):
        if n - 1 >= n_factors:
            return n
    raise ValueError(
        f"too many factors ({n_factors}) for the built-in PB designs"
    )


def plackett_burman(factors: Sequence[Factor]) -> Design:
    """Build a Plackett–Burman design for two-level ``factors``.

    The smallest supported run count with enough columns is chosen
    automatically; surplus columns are dropped.

    Raises:
        ValueError: If any factor is not two-level, or too many factors.
    """
    factors = list(factors)
    if not factors:
        raise ValueError("plackett_burman requires at least one factor")
    for f in factors:
        if f.n_levels != 2:
            raise ValueError(
                f"Plackett-Burman designs are two-level; factor {f.name!r} "
                f"has {f.n_levels} levels"
            )
    n_runs = smallest_pb_runs(len(factors))
    matrix = _pb_matrix(n_runs)
    runs: List[Run] = []
    for i in range(n_runs):
        settings = {
            f.name: f.levels[0] if matrix[i, j] < 0 else f.levels[1]
            for j, f in enumerate(factors)
        }
        runs.append(Run(settings))
    return Design(
        factors=factors,
        runs=runs,
        name=f"Plackett-Burman N={n_runs}",
        metadata={"n_runs": n_runs},
    )
