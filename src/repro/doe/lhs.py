"""Latin hypercube sampling designs.

LHS provides space-filling coverage of continuous factor ranges (e.g.
per-stage success probabilities in a sensitivity analysis) with far fewer
runs than grids.  A maximin variant performs random restarts and keeps the
sample maximizing the minimal pairwise distance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.doe.design import Design, Factor, Run


def latin_hypercube_matrix(
    n_samples: int,
    n_dims: int,
    rng: np.random.Generator,
    maximin_restarts: int = 0,
) -> np.ndarray:
    """An (n_samples × n_dims) LHS matrix in [0, 1).

    Each column is a random permutation of stratified draws — one point
    per equal-probability stratum.

    Args:
        n_samples: Number of rows (runs).
        n_dims: Number of columns (factors).
        rng: Random generator.
        maximin_restarts: If > 0, draw that many candidate hypercubes and
            keep the one with the largest minimal pairwise distance.

    Raises:
        ValueError: If sizes are not positive.
    """
    if n_samples < 1 or n_dims < 1:
        raise ValueError("n_samples and n_dims must be >= 1")

    def one_sample() -> np.ndarray:
        cut = (np.arange(n_samples) + rng.random(size=(n_dims, n_samples))) / n_samples
        for d in range(n_dims):
            rng.shuffle(cut[d])
        return cut.T

    best = one_sample()
    if maximin_restarts > 0 and n_samples > 1:
        best_score = _min_pairwise_distance(best)
        for _ in range(maximin_restarts):
            cand = one_sample()
            score = _min_pairwise_distance(cand)
            if score > best_score:
                best, best_score = cand, score
    return best


def _min_pairwise_distance(points: np.ndarray) -> float:
    """Minimal Euclidean distance among rows of ``points``."""
    diff = points[:, None, :] - points[None, :, :]
    dist2 = (diff**2).sum(axis=2)
    n = points.shape[0]
    dist2[np.arange(n), np.arange(n)] = np.inf
    return float(np.sqrt(dist2.min()))


def latin_hypercube(
    names: Sequence[str],
    bounds: Sequence[Tuple[float, float]],
    n_samples: int,
    rng: Optional[np.random.Generator] = None,
    maximin_restarts: int = 10,
) -> Tuple[Design, np.ndarray]:
    """LHS design over continuous factors.

    Because :class:`~repro.doe.design.Factor` levels are discrete, the
    returned design uses the *run index* as a placeholder level while the
    actual coordinates are returned as a float matrix; the pair keeps the
    design machinery (tables, replication) available for continuous
    studies.

    Args:
        names: Factor names.
        bounds: ``(low, high)`` per factor.
        n_samples: Number of runs.
        rng: Random generator.  When omitted, fresh OS entropy is drawn
            via ``SeedSequence()`` and recorded under
            ``design.metadata["entropy"]`` (same policy as ``Session``
            run seeds), so the sampled design can be regenerated exactly
            with ``default_rng(SeedSequence(entropy))``.
        maximin_restarts: Restarts for the maximin criterion.

    Returns:
        ``(design, matrix)`` where ``matrix[i, j]`` is the value of factor
        ``j`` in run ``i``.

    Raises:
        ValueError: On mismatched names/bounds or bad bounds.
    """
    if len(names) != len(bounds):
        raise ValueError("names and bounds must have equal length")
    for name, (low, high) in zip(names, bounds):
        if high <= low:
            raise ValueError(f"factor {name!r} has empty range [{low}, {high}]")
    entropy: Optional[int] = None
    if rng is None:
        seed_seq = np.random.SeedSequence()
        entropy = int(seed_seq.entropy)
        rng = np.random.default_rng(seed_seq)
    unit = latin_hypercube_matrix(
        n_samples, len(names), rng, maximin_restarts=maximin_restarts
    )
    lows = np.array([b[0] for b in bounds])
    highs = np.array([b[1] for b in bounds])
    matrix = lows + unit * (highs - lows)

    factors = [Factor(n, tuple(range(n_samples))) for n in names]
    runs: List[Run] = [
        Run({n: i for n in names}) for i in range(n_samples)
    ]
    design = Design(
        factors=factors,
        runs=runs,
        name=f"LHS n={n_samples}",
        metadata={"bounds": list(bounds), "matrix": matrix, "entropy": entropy},
    )
    return design, matrix
