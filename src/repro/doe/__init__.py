"""Design of Experiments (DoE).

The paper's second step uses DoE to *"narrow the number of configurations
to assess"* when measuring security indicators over diversified component
combinations.  This package provides classical designs:

* :func:`~repro.doe.factorial.full_factorial` — every level combination.
* :func:`~repro.doe.fractional.fractional_factorial` — 2^(k-p) designs with
  generator algebra, alias structure and resolution.
* :func:`~repro.doe.plackett_burman.plackett_burman` — screening designs.
* :func:`~repro.doe.lhs.latin_hypercube` — space-filling designs.
* :func:`~repro.doe.ccd.central_composite` — response-surface designs.

All designs share the :class:`~repro.doe.design.Design` container, which
maps coded runs back to concrete factor levels.
"""

from repro.doe.ccd import central_composite
from repro.doe.design import Design, Factor, Run
from repro.doe.factorial import full_factorial, two_level_full_factorial
from repro.doe.fractional import FractionalDesignInfo, fractional_factorial
from repro.doe.lhs import latin_hypercube
from repro.doe.plackett_burman import plackett_burman

__all__ = [
    "Design",
    "Factor",
    "FractionalDesignInfo",
    "Run",
    "central_composite",
    "fractional_factorial",
    "full_factorial",
    "latin_hypercube",
    "plackett_burman",
    "two_level_full_factorial",
]
