"""Two-level fractional factorial designs: 2^(k-p) with generator algebra.

A 2^(k-p) design runs a 1/2^p fraction of the full 2^k factorial.  The
first ``k - p`` factors form a base full factorial; each remaining factor
is *generated* as a product of base factors (e.g. ``"E=ABCD"``).  The
module computes the defining relation, the alias structure and the design
resolution, so a user can check which effects are confounded before
trusting the ANOVA from the paper's step 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.doe.design import Design, Factor, Run
from repro.doe.factorial import full_factorial

_LETTERS = "ABCDEFGHJKLMNPQRSTUVWXYZ"  # classical DoE letters (no I or O)


@dataclass
class FractionalDesignInfo:
    """Confounding structure of a fractional factorial design.

    Attributes:
        generators: The generator strings, e.g. ``["E=ABC"]``.
        defining_relation: Words of the defining relation (excluding the
            identity), as sorted letter strings, e.g. ``["ABCE"]``.
        resolution: Length of the shortest defining word (design
            resolution in the usual Roman-numeral sense).
        aliases: Map from each main effect letter to the effects it is
            aliased with (letter strings), truncated to interactions of
            length <= 3 for readability.
    """

    generators: List[str]
    defining_relation: List[str]
    resolution: int
    aliases: Dict[str, List[str]] = field(default_factory=dict)


def _word_multiply(a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
    """Multiply two effect words modulo squares (symmetric difference)."""
    return a.symmetric_difference(b)


def _parse_generator(gen: str, known: Sequence[str]) -> Tuple[str, FrozenSet[str]]:
    """Parse ``"E=ABC"`` into ``("E", frozenset({"A","B","C"}))``.

    Raises:
        ValueError: On malformed generators or unknown letters.
    """
    gen = gen.replace(" ", "").upper()
    if "=" not in gen:
        raise ValueError(f"generator must look like 'E=ABC', got {gen!r}")
    target, word = gen.split("=", 1)
    if len(target) != 1 or not word:
        raise ValueError(f"generator must look like 'E=ABC', got {gen!r}")
    for ch in word:
        if ch not in known:
            raise ValueError(
                f"generator {gen!r} uses letter {ch!r} outside the base factors"
            )
    return target, frozenset(word)


def fractional_factorial(
    factor_names: Sequence[str],
    generators: Sequence[str],
    levels: Sequence = (-1, 1),
) -> Tuple[Design, FractionalDesignInfo]:
    """Build a 2^(k-p) fractional factorial design.

    Args:
        factor_names: Names of all k factors, in design-letter order: the
            first ``k - p`` names take the base letters A, B, C, ...; the
            rest are assigned by the generators.
        generators: p generator strings in letter algebra, e.g.
            ``["E=ABC", "F=BCD"]``.  Letters refer to positions in
            ``factor_names`` (A = first name, etc.).
        levels: The two concrete levels, low first (default coded -1/+1).

    Returns:
        ``(design, info)`` — the design and its confounding structure.

    Raises:
        ValueError: On inconsistent inputs.
    """
    k = len(factor_names)
    p = len(generators)
    if k < 2:
        raise ValueError("need at least two factors")
    if p < 1:
        raise ValueError("need at least one generator (else use full_factorial)")
    if k - p < 1:
        raise ValueError(f"too many generators: k={k}, p={p}")
    if len(levels) != 2:
        raise ValueError(f"fractional factorials are two-level, got {levels!r}")
    if k > len(_LETTERS):
        raise ValueError(f"at most {len(_LETTERS)} factors supported")

    letters = _LETTERS[:k]
    base_letters = letters[: k - p]
    generated_letters = letters[k - p :]

    parsed: Dict[str, FrozenSet[str]] = {}
    for gen in generators:
        target, word = _parse_generator(gen, base_letters)
        if target not in generated_letters:
            raise ValueError(
                f"generator target {target!r} must be one of {generated_letters!r}"
            )
        if target in parsed:
            raise ValueError(f"duplicate generator for {target!r}")
        parsed[target] = word
    missing = [g for g in generated_letters if g not in parsed]
    if missing:
        raise ValueError(f"missing generators for letters {missing!r}")

    # Base design in coded units.
    base = full_factorial([Factor(ch, (-1, 1)) for ch in base_letters])

    letter_to_name = dict(zip(letters, factor_names))
    factors = [Factor(name, tuple(levels)) for name in factor_names]
    runs: List[Run] = []
    for base_run in base.runs:
        coded: Dict[str, int] = {ch: int(base_run[ch]) for ch in base_letters}
        for target, word in parsed.items():
            value = 1
            for ch in word:
                value *= coded[ch]
            coded[target] = value
        settings = {
            letter_to_name[ch]: levels[0] if coded[ch] < 0 else levels[1]
            for ch in letters
        }
        runs.append(Run(settings))

    # Defining relation: products of all non-empty subsets of the p
    # defining words {target ∪ word}.
    defining_words = [
        frozenset({target}) | word for target, word in parsed.items()
    ]
    relation: set[FrozenSet[str]] = set()
    for r in range(1, p + 1):
        for combo in itertools.combinations(defining_words, r):
            word: FrozenSet[str] = frozenset()
            for w in combo:
                word = _word_multiply(word, w)
            if word:
                relation.add(word)
    relation_strs = sorted("".join(sorted(w)) for w in relation)
    resolution = min(len(w) for w in relation) if relation else k

    # Alias structure of main effects (up to 3-letter interactions).
    aliases: Dict[str, List[str]] = {}
    for ch in letters:
        partner_words = []
        for word in relation:
            alias = _word_multiply(frozenset({ch}), word)
            if 0 < len(alias) <= 3:
                partner_words.append("".join(sorted(alias)))
        aliases[ch] = sorted(partner_words)

    design = Design(
        factors=factors,
        runs=runs,
        name=f"2^({k}-{p}) fractional factorial (resolution {resolution})",
        metadata={"generators": list(generators), "letters": letters},
    )
    info = FractionalDesignInfo(
        generators=list(generators),
        defining_relation=relation_strs,
        resolution=resolution,
        aliases=aliases,
    )
    return design, info
