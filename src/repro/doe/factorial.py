"""Full factorial designs."""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.doe.design import Design, Factor, Run


def full_factorial(factors: Sequence[Factor]) -> Design:
    """Every combination of factor levels (general mixed-level design).

    The run count is the product of the level counts; for k two-level
    factors this is the classical 2^k design.

    Raises:
        ValueError: If no factors are given.
    """
    factors = list(factors)
    if not factors:
        raise ValueError("full_factorial requires at least one factor")
    runs = []
    for combo in itertools.product(*(f.levels for f in factors)):
        runs.append(Run({f.name: level for f, level in zip(factors, combo)}))
    sizes = "x".join(str(f.n_levels) for f in factors)
    return Design(factors=factors, runs=runs, name=f"full factorial {sizes}")


def two_level_full_factorial(names: Sequence[str]) -> Design:
    """2^k design over factors named ``names`` with generic low/high levels.

    Levels are the integers -1 and +1, convenient for purely coded studies.
    """
    factors = [Factor(n, (-1, 1)) for n in names]
    design = full_factorial(factors)
    design.name = f"2^{len(factors)} full factorial"
    return design
