"""Core DoE data structures: factors, runs and designs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Factor:
    """An experimental factor and its admissible levels.

    In this library a factor is typically a *component slot* of the SCADA
    system (e.g. ``"control_os"``) and its levels are the component
    variants available for that slot (e.g. ``("win_xp", "linux_rt")``).

    Attributes:
        name: Factor name; must be unique within a design.
        levels: Ordered levels.  For two-level coded designs the first
            level is coded -1 (low) and the second +1 (high).
    """

    name: str
    levels: Tuple[Hashable, ...]

    def __init__(self, name: str, levels: Sequence[Hashable]) -> None:
        if not name:
            raise ValueError("factor name must be non-empty")
        levels = tuple(levels)
        if len(levels) < 2:
            raise ValueError(f"factor {name!r} needs >= 2 levels, got {levels!r}")
        if len(set(levels)) != len(levels):
            raise ValueError(f"factor {name!r} has duplicate levels: {levels!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "levels", levels)

    @property
    def n_levels(self) -> int:
        """Number of levels."""
        return len(self.levels)

    def coded_to_level(self, coded: float) -> Hashable:
        """Map a coded value to a concrete level.

        For two-level factors, -1 maps to the first level and +1 to the
        second.  For multi-level factors the coded value is the level
        index.
        """
        if self.n_levels == 2:
            if coded <= 0:
                return self.levels[0]
            return self.levels[1]
        idx = int(round(coded))
        if not 0 <= idx < self.n_levels:
            raise ValueError(
                f"coded value {coded} out of range for factor {self.name!r}"
            )
        return self.levels[idx]

    def level_to_coded(self, level: Hashable) -> float:
        """Inverse of :meth:`coded_to_level`."""
        idx = self.levels.index(level)
        if self.n_levels == 2:
            return -1.0 if idx == 0 else 1.0
        return float(idx)


@dataclass(frozen=True)
class Run:
    """One experimental run: an assignment of a level to every factor."""

    settings: Tuple[Tuple[str, Hashable], ...]

    def __init__(self, settings: Dict[str, Hashable]) -> None:
        object.__setattr__(self, "settings", tuple(sorted(settings.items())))

    def __getitem__(self, factor: str) -> Hashable:
        for name, level in self.settings:
            if name == factor:
                return level
        raise KeyError(factor)

    def as_dict(self) -> Dict[str, Hashable]:
        """The run as a plain ``{factor: level}`` dict."""
        return dict(self.settings)

    def __iter__(self) -> Iterator[Tuple[str, Hashable]]:
        return iter(self.settings)


@dataclass
class Design:
    """A designed experiment: an ordered list of runs over shared factors.

    Attributes:
        factors: The factors, in column order.
        runs: The experimental runs.
        name: Human-readable design label, e.g. ``"2^(5-2) resolution III"``.
    """

    factors: List[Factor]
    runs: List[Run]
    name: str = "design"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [f.name for f in self.factors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate factor names in design: {names}")
        for run in self.runs:
            run_names = {n for n, _ in run.settings}
            if run_names != set(names):
                raise ValueError(
                    f"run {run!r} does not cover exactly the design factors"
                )

    @property
    def n_runs(self) -> int:
        """Number of runs."""
        return len(self.runs)

    @property
    def n_factors(self) -> int:
        """Number of factors."""
        return len(self.factors)

    def factor(self, name: str) -> Factor:
        """Look up a factor by name.

        Raises:
            KeyError: If absent.
        """
        for f in self.factors:
            if f.name == name:
                return f
        raise KeyError(name)

    def coded_matrix(self) -> np.ndarray:
        """The design as a coded (runs × factors) matrix."""
        matrix = np.zeros((self.n_runs, self.n_factors))
        for i, run in enumerate(self.runs):
            for j, f in enumerate(self.factors):
                matrix[i, j] = f.level_to_coded(run[f.name])
        return matrix

    def is_balanced(self) -> bool:
        """Every factor level appears equally often."""
        for f in self.factors:
            counts: Dict[Hashable, int] = {}
            for run in self.runs:
                counts[run[f.name]] = counts.get(run[f.name], 0) + 1
            if len(set(counts.values())) > 1 or len(counts) != f.n_levels:
                return False
        return True

    def is_orthogonal(self, tolerance: float = 1e-9) -> bool:
        """Coded columns are pairwise orthogonal (two-level designs)."""
        matrix = self.coded_matrix()
        gram = matrix.T @ matrix
        off_diag = gram - np.diag(np.diag(gram))
        return bool(np.all(np.abs(off_diag) <= tolerance))

    def replicate(self, times: int) -> "Design":
        """A new design with every run repeated ``times`` times.

        Raises:
            ValueError: If ``times < 1``.
        """
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        return Design(
            factors=list(self.factors),
            runs=[run for run in self.runs for _ in range(times)],
            name=f"{self.name} x{times}",
            metadata=dict(self.metadata),
        )

    def format_table(self) -> str:
        """Render the design as a plain-text run table."""
        names = [f.name for f in self.factors]
        widths = [max(len(n), 8) for n in names]
        header = f"{'run':>4}  " + "  ".join(
            f"{n:>{w}}" for n, w in zip(names, widths)
        )
        lines = [f"Design: {self.name} ({self.n_runs} runs)", header,
                 "-" * len(header)]
        for i, run in enumerate(self.runs):
            cells = "  ".join(
                f"{str(run[n]):>{w}}" for n, w in zip(names, widths)
            )
            lines.append(f"{i + 1:>4}  {cells}")
        return "\n".join(lines)
