"""Central composite designs (CCD) for response-surface studies.

A CCD augments a two-level factorial core with axial ("star") points at
distance ``alpha`` and replicated center points, enabling quadratic
response-surface fits — useful when tuning continuous security parameters
(e.g. detection thresholds) rather than categorical variants.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


def central_composite(
    n_factors: int,
    alpha: str = "rotatable",
    center_points: int = 4,
) -> Tuple[np.ndarray, dict]:
    """Coded CCD matrix for ``n_factors`` continuous factors.

    Args:
        n_factors: Number of factors (>= 2).
        alpha: ``"rotatable"`` (alpha = (2^k)^(1/4)), ``"faced"``
            (alpha = 1), or a numeric string.
        center_points: Number of replicated center runs.

    Returns:
        ``(matrix, info)`` where matrix rows are coded runs and ``info``
        describes the block structure.

    Raises:
        ValueError: On invalid sizes or alpha.
    """
    if n_factors < 2:
        raise ValueError(f"CCD needs >= 2 factors, got {n_factors}")
    if center_points < 0:
        raise ValueError("center_points must be >= 0")

    if alpha == "rotatable":
        a = (2.0**n_factors) ** 0.25
    elif alpha == "faced":
        a = 1.0
    else:
        try:
            a = float(alpha)
        except ValueError as exc:
            raise ValueError(f"unrecognized alpha {alpha!r}") from exc
        if a <= 0:
            raise ValueError(f"alpha must be > 0, got {a}")

    # Factorial core: full 2^k.
    core_rows: List[List[float]] = []
    for i in range(2**n_factors):
        row = [1.0 if (i >> j) & 1 else -1.0 for j in range(n_factors)]
        core_rows.append(row)

    # Axial points: two per factor.
    axial_rows: List[List[float]] = []
    for j in range(n_factors):
        for sign in (-1.0, 1.0):
            row = [0.0] * n_factors
            row[j] = sign * a
            axial_rows.append(row)

    center_rows = [[0.0] * n_factors for _ in range(center_points)]
    matrix = np.array(core_rows + axial_rows + center_rows)
    info = {
        "alpha": a,
        "n_core": len(core_rows),
        "n_axial": len(axial_rows),
        "n_center": center_points,
        "rotatable": math.isclose(a, (2.0**n_factors) ** 0.25),
    }
    return matrix, info
