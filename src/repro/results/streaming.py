"""Streaming, out-of-core results: sharded tables and running aggregators.

Million-replication Monte-Carlo campaigns cannot hold every record in
RAM, and a monolithic ``.npz`` cannot persist them atomically.  This
module provides the two halves of the streaming results layer:

* :class:`ShardedRecordTable` / :class:`StreamingTableBuilder` — a
  :class:`~repro.results.table.RecordTable` made of fixed-size row
  chunks.  Chunks beyond ``max_records_in_ram`` are spilled to
  per-shard ``.npz`` files and re-loaded lazily, one chunk at a time,
  by the streaming operations (``means`` / ``groupby`` / ``filter`` /
  ``iter_chunks`` / ``to_dicts``).  The sharded table subclasses
  ``RecordTable``, so every existing consumer — ``summarize_records``,
  ANOVA inputs, ``MeasurementResult.table``, ``SuiteResult.table``,
  ``CampaignRunResult`` — works unchanged; operations with no streaming
  form simply materialize on first access.
* :class:`RunningStats` / :class:`QuantileSketch` /
  :class:`StreamingSummary` — numerically stable running aggregators
  (Welford mean/variance with Chan parallel merge, a t-digest-style
  quantile sketch) that fold replications in as they complete on the
  existing ``on_result`` hooks of :mod:`repro.exec` and
  :class:`~repro.scenarios.suite.ScenarioSuite`, so summaries and
  confidence intervals come out of a campaign without materializing
  its records.  Aggregator states merge, which is what keeps
  :meth:`SuiteResult.merge <repro.scenarios.suite.SuiteResult.merge>`
  over many shards O(summary) instead of O(records).

Determinism: aggregation order is the deterministic submission order of
the runner's ``on_result`` hook, so streaming summaries are reproducible
bit-for-bit for a given seed and chunking — and match the exact
in-RAM ``summarize_records`` within ~1e-9 regardless of chunking.
"""

from __future__ import annotations

import logging
import math
import os
import shutil
import tempfile
import weakref
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.results.table import (
    RESPONSE_COLUMNS,
    RecordTable,
    summary_from_means,
)
from repro.telemetry.core import metric_gauge, metric_inc

_LOG = logging.getLogger(__name__)

#: Default in-RAM row budget of streaming tables (rows, not bytes —
#: a 4-column float table at the default is ~2 MiB resident).
DEFAULT_MAX_RECORDS_IN_RAM = 65536


# ---------------------------------------------------------------------------
# table parts
# ---------------------------------------------------------------------------


class _RamPart:
    """An in-RAM chunk of a sharded table."""

    __slots__ = ("table",)

    def __init__(self, table: RecordTable) -> None:
        self.table = table

    @property
    def n_rows(self) -> int:
        return len(self.table)

    @property
    def columns(self) -> List[str]:
        return self.table.columns

    @property
    def in_ram_rows(self) -> int:
        return len(self.table)

    def load(self) -> RecordTable:
        return self.table


class TableShard:
    """An on-disk ``.npz`` chunk of a sharded table (loaded lazily).

    The row count and schema are recorded at write time, so shape
    queries (``len``, ``columns``) never touch the file; only the
    streaming operations load it, one chunk at a time.
    """

    __slots__ = ("path", "_n_rows", "_columns")

    def __init__(
        self, path: str, n_rows: int, columns: Sequence[str]
    ) -> None:
        self.path = str(path)
        self._n_rows = int(n_rows)
        self._columns = list(columns)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def in_ram_rows(self) -> int:
        return 0

    def load(self) -> RecordTable:
        metric_inc("streaming.shard_loads")
        return RecordTable.load_npz(self.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableShard({self.path!r}, {self._n_rows} rows)"


class LazyPart:
    """A chunk computed on demand (e.g. a per-scenario column view).

    ``fn`` must be pure and cheap enough to re-run: the chunk is *not*
    cached, which is what keeps chained suite tables out-of-core.
    """

    __slots__ = ("fn", "_n_rows", "_columns")

    def __init__(
        self,
        fn: Callable[[], RecordTable],
        n_rows: int,
        columns: Sequence[str],
    ) -> None:
        self.fn = fn
        self._n_rows = int(n_rows)
        self._columns = list(columns)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def in_ram_rows(self) -> int:
        return 0

    def load(self) -> RecordTable:
        return self.fn()


#: Anything a sharded table can be assembled from.
TablePart = Union[_RamPart, TableShard, LazyPart]


# ---------------------------------------------------------------------------
# the sharded table
# ---------------------------------------------------------------------------


class ShardedRecordTable(RecordTable):
    """A :class:`RecordTable` stored as a chain of row chunks.

    Build one with :class:`StreamingTableBuilder` (spilling writer),
    :meth:`chain` (zero-copy concat of existing tables) or
    :meth:`from_parts`.  The full ``RecordTable`` surface keeps
    working: operations with a streaming form (``means`` / ``mean`` /
    ``groupby`` / ``where`` / ``filter`` / ``to_dicts`` / ``row`` /
    ``iter_chunks``) touch one chunk at a time; anything else —
    ``column()``, ``save_npz``, ``==`` — materializes the table on
    first access (cached), which is the compatibility fallback, not the
    out-of-core path.

    Args:
        parts: Row chunks in order (``_RamPart`` / :class:`TableShard`
            / :class:`LazyPart`); schema-less empty parts are dropped
            (concat-identity semantics) and the remaining parts must
            share one column schema.
        spill_dir: Directory holding this table's spilled shards.
        owns_spill: Delete ``spill_dir`` when the table is collected
            (builder-owned temp dirs; cache-owned shards pass False).
        max_records_in_ram: Row budget derived tables (``filter`` /
            ``groupby`` results) spill at; ``None`` keeps derived
            chunks in RAM.
        keepalive: Source tables whose spill files must outlive this
            chained view.
    """

    def __init__(
        self,
        parts: Sequence[TablePart],
        spill_dir: Optional[str] = None,
        owns_spill: bool = False,
        max_records_in_ram: Optional[int] = None,
        keepalive: Sequence[object] = (),
    ) -> None:
        kept = [p for p in parts if p.columns or p.n_rows]
        schema = kept[0].columns if kept else []
        for part in kept[1:]:
            if part.columns != schema:
                raise ValueError(
                    f"cannot chain parts with columns {part.columns} "
                    f"and {schema}"
                )
        self._parts = kept
        self._schema = schema
        self._total = sum(p.n_rows for p in kept)
        self._materialized: Optional[RecordTable] = None
        self._spill_dir = spill_dir
        self._max_records_in_ram = max_records_in_ram
        self._keepalive = list(keepalive)
        self._finalizer = (
            weakref.finalize(self, shutil.rmtree, spill_dir, True)
            if owns_spill and spill_dir
            else None
        )

    # ---- construction ----------------------------------------------------

    @classmethod
    def from_parts(
        cls, parts: Sequence[TablePart], **kwargs: object
    ) -> "ShardedRecordTable":
        """Assemble a sharded table from explicit parts."""
        return cls(parts, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def chain(
        cls,
        tables: Sequence[RecordTable],
        max_records_in_ram: Optional[int] = None,
    ) -> "ShardedRecordTable":
        """Zero-copy lazy concat of existing tables (sharded or not).

        Sharded inputs contribute their parts (and keep their spill
        files alive through the chained view); plain tables become
        single in-RAM chunks.  Schema rules match
        :meth:`RecordTable.concat`: schema-less empty tables are
        identity elements.
        """
        parts: List[TablePart] = []
        keepalive: List[object] = []
        for table in tables:
            if isinstance(table, ShardedRecordTable):
                parts.extend(table._parts)
                keepalive.append(table)
            else:
                parts.append(_RamPart(table))
        return cls(
            parts,
            max_records_in_ram=max_records_in_ram,
            keepalive=keepalive,
        )

    @classmethod
    def concat(cls, tables: Sequence[RecordTable]) -> "ShardedRecordTable":
        """Lazy concat — alias of :meth:`chain` (never copies rows)."""
        return cls.chain(list(tables))

    # ---- shape -----------------------------------------------------------

    @property
    def _columns(self) -> Dict[str, np.ndarray]:
        # Base-class methods without a streaming override reach the
        # columns through this property, which materializes once.
        return self._materialize()._columns  # type: ignore[attr-defined]

    @property
    def _n(self) -> int:
        return self._total

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    @property
    def columns(self) -> List[str]:
        return list(self._schema)

    @property
    def parts(self) -> List[TablePart]:
        """The chunk chain, in row order."""
        return list(self._parts)

    @property
    def shards(self) -> List[TableShard]:
        """The on-disk shards among :attr:`parts`."""
        return [p for p in self._parts if isinstance(p, TableShard)]

    @property
    def in_ram_rows(self) -> int:
        """Rows currently resident in RAM chunks (excludes any cached
        materialization)."""
        return sum(p.in_ram_rows for p in self._parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedRecordTable({self._total} rows x "
            f"{len(self._schema)} cols in {len(self._parts)} parts, "
            f"{len(self.shards)} on disk)"
        )

    # ---- streaming core --------------------------------------------------

    def iter_chunks(self) -> Iterator[RecordTable]:
        """Yield the row chunks in order, loading one at a time.

        On-disk and lazy chunks are *not* cached — iterating twice
        loads twice, which is the price of bounded memory.
        """
        for part in self._parts:
            yield part.load()

    def _materialize(self) -> RecordTable:
        """The whole table as one in-RAM :class:`RecordTable` (cached)."""
        if self._materialized is None:
            self._materialized = RecordTable.concat(
                [
                    chunk
                    if not isinstance(chunk, ShardedRecordTable)
                    else chunk._materialize()
                    for chunk in self.iter_chunks()
                ]
            )
        return self._materialized

    def materialize(self) -> RecordTable:
        """Public alias of the in-RAM compatibility fallback."""
        return self._materialize()

    def __reduce__(self) -> Tuple[object, ...]:
        # Pickling (e.g. process-backend transport) materializes: shard
        # files are local to this machine and lifetime.
        return (RecordTable, (dict(self._materialize()._columns),))

    # ---- streaming overrides of the RecordTable surface ------------------

    def mean(self, name: str) -> float:
        if self._total == 0:
            return float("nan")
        if name not in self._schema:
            raise KeyError(name)
        total = 0.0
        for chunk in self.iter_chunks():
            try:
                values = np.asarray(chunk.column(name), dtype=float)
            except (TypeError, ValueError):
                raise TypeError(
                    f"column {name!r} is not numeric; cannot take its "
                    "mean"
                ) from None
            total += float(np.sum(values))
        return total / self._total

    def values(self, name: str) -> List[object]:
        if name not in self._schema:
            raise KeyError(name)
        out: List[object] = []
        for chunk in self.iter_chunks():
            out.extend(chunk.values(name))
        return out

    def to_dicts(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for chunk in self.iter_chunks():
            out.extend(chunk.to_dicts())
        return out

    def row(self, index: int) -> Dict[str, object]:
        if index < 0:
            index += self._total
        offset = index
        for part in self._parts:
            if offset < part.n_rows:
                return part.load().row(offset)
            offset -= part.n_rows
        raise IndexError(index)

    def _derived(
        self, chunks: Iterable[RecordTable]
    ) -> "RecordTable":
        """Assemble a derived table, spilling if this table spills."""
        builder = StreamingTableBuilder(
            max_records_in_ram=self._max_records_in_ram
        )
        for chunk in chunks:
            builder.append_table(chunk)
        return builder.build()

    def filter(self, mask: np.ndarray) -> "RecordTable":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._total,):
            raise ValueError(
                f"mask shape {mask.shape} != ({self._total},)"
            )

        def filtered() -> Iterator[RecordTable]:
            offset = 0
            for part in self._parts:
                sub = mask[offset : offset + part.n_rows]
                offset += part.n_rows
                if sub.any():
                    yield part.load().filter(sub)

        return self._derived(filtered())

    def where(self, name: str, value: object) -> "RecordTable":
        return self._derived(
            chunk.where(name, value)
            for chunk in self.iter_chunks()
        )

    def groupby(
        self, name: str
    ) -> Iterator[Tuple[object, "RecordTable"]]:
        """Single-pass chunked group-by, first-appearance order, NaN
        rows coalesced into one group (see the base class)."""
        if name not in self._schema:
            raise KeyError(name)
        keys: List[object] = []
        builders: List[StreamingTableBuilder] = []
        seen_nan_at: Optional[int] = None
        for chunk in self.iter_chunks():
            for key, sub in chunk.groupby(name):
                if isinstance(key, float) and math.isnan(key):
                    if seen_nan_at is None:
                        seen_nan_at = len(keys)
                        keys.append(key)
                        builders.append(
                            StreamingTableBuilder(
                                max_records_in_ram=self._max_records_in_ram
                            )
                        )
                    builders[seen_nan_at].append_table(sub)
                    continue
                try:
                    slot = keys.index(key)
                except ValueError:
                    slot = len(keys)
                    keys.append(key)
                    builders.append(
                        StreamingTableBuilder(
                            max_records_in_ram=self._max_records_in_ram
                        )
                    )
                builders[slot].append_table(sub)
        for key, builder in zip(keys, builders):
            yield key, builder.build()


# ---------------------------------------------------------------------------
# the spilling writer
# ---------------------------------------------------------------------------


class StreamingTableBuilder:
    """Accumulates record chunks, spilling to ``.npz`` shards.

    The builder keeps at most ``max_records_in_ram`` rows buffered;
    every time the buffer fills, it is written out as one shard file
    (so shards hold exactly ``max_records_in_ram`` rows, except the
    final partial one).  Oversized incoming chunks are sliced, keeping
    the bound strict.  :meth:`build` returns the finished
    :class:`ShardedRecordTable`, which takes ownership of the spill
    directory (deleted when the table is garbage-collected, unless an
    explicit ``spill_dir`` was supplied).

    Spilled chunks must be ``.npz``-serializable (object columns hold
    strings — which long-format factor levels are).  Not thread-safe:
    feed it from one coordinating thread, which is where the runner's
    ``on_result`` hook already runs.

    Args:
        max_records_in_ram: Row budget before a spill; ``None``
            disables spilling (pure lazy chaining in RAM).
        spill_dir: Where shards go.  Default: a fresh temp directory
            owned (and eventually deleted) by the built table.
    """

    def __init__(
        self,
        max_records_in_ram: Optional[int] = DEFAULT_MAX_RECORDS_IN_RAM,
        spill_dir: Optional[str] = None,
    ) -> None:
        if max_records_in_ram is not None and max_records_in_ram < 1:
            raise ValueError(
                f"max_records_in_ram must be >= 1, got "
                f"{max_records_in_ram}"
            )
        self.max_records_in_ram = max_records_in_ram
        self._spill_dir = spill_dir
        self._owns_spill = spill_dir is None
        self._parts: List[TablePart] = []
        self._buffer: List[RecordTable] = []
        self._buffered_rows = 0
        self._schema: Optional[List[str]] = None
        self._rows_total = 0
        self._shard_index = 0
        self._built = False

    @property
    def rows_appended(self) -> int:
        """Rows appended so far."""
        return self._rows_total

    @property
    def buffered_rows(self) -> int:
        """Rows currently held in the in-RAM buffer."""
        return self._buffered_rows

    def append_table(self, table: RecordTable) -> None:
        """Append a table's rows (sharded inputs stream chunk-wise).

        Raises:
            ValueError: On a schema mismatch with earlier appends, or
                after :meth:`build`.
        """
        if self._built:
            raise ValueError("builder already built its table")
        chunks = (
            table.iter_chunks()
            if isinstance(table, ShardedRecordTable)
            else (table,)
        )
        for chunk in chunks:
            self._append_chunk(chunk)

    def append_rows(self, columns: Mapping[str, np.ndarray]) -> None:
        """Append aligned column arrays (one chunk of rows)."""
        self.append_table(RecordTable(columns))

    def _append_chunk(self, chunk: RecordTable) -> None:
        if not chunk.columns and not len(chunk):
            return  # concat identity
        if self._schema is None:
            self._schema = chunk.columns
        elif chunk.columns != self._schema:
            raise ValueError(
                f"cannot append table with columns {chunk.columns} "
                f"to builder with columns {self._schema}"
            )
        limit = self.max_records_in_ram
        if limit is None or not len(chunk):
            # Zero-row chunks still carry schema and dtypes: keep one
            # in the buffer so an all-empty build preserves the schema.
            self._buffer.append(chunk)
            self._buffered_rows += len(chunk)
            self._rows_total += len(chunk)
            return
        offset = 0
        n = len(chunk)
        while offset < n:
            take = min(n - offset, limit - self._buffered_rows)
            piece = (
                chunk
                if take == n and offset == 0
                else chunk.filter(
                    (np.arange(n) >= offset) & (np.arange(n) < offset + take)
                )
            )
            self._buffer.append(piece)
            self._buffered_rows += take
            self._rows_total += take
            offset += take
            metric_gauge("streaming.peak_resident_rows", self._buffered_rows)
            if self._buffered_rows >= limit:
                self._spill()

    def _ensure_spill_dir(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-shards-")
        return self._spill_dir

    def _spill(self) -> None:
        if not self._buffered_rows:
            return
        combined = RecordTable.concat(self._buffer)
        directory = self._ensure_spill_dir()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"shard-{self._shard_index:06d}.npz"
        )
        combined.save_npz(path)
        self._parts.append(
            TableShard(path, len(combined), combined.columns)
        )
        metric_inc("streaming.spills")
        try:
            metric_inc("streaming.bytes_spilled", os.path.getsize(path))
        except OSError:  # pragma: no cover - fs race
            pass
        _LOG.debug(
            "spilled shard %d (%d rows) to %s",
            self._shard_index, len(combined), path,
        )
        self._shard_index += 1
        self._buffer = []
        self._buffered_rows = 0

    def build(self) -> ShardedRecordTable:
        """Finish and return the sharded table (single use).

        The remaining buffer stays in RAM as the final chunk; spill
        ownership transfers to the returned table.
        """
        if self._built:
            raise ValueError("builder already built its table")
        self._built = True
        parts = list(self._parts)
        if self._buffer:
            parts.append(_RamPart(RecordTable.concat(self._buffer)))
        self._buffer = []
        return ShardedRecordTable(
            parts,
            spill_dir=self._spill_dir,
            owns_spill=self._owns_spill and self._spill_dir is not None,
            max_records_in_ram=self.max_records_in_ram,
        )


# ---------------------------------------------------------------------------
# running aggregators
# ---------------------------------------------------------------------------


class RunningStats:
    """Welford running mean/variance with Chan parallel merge.

    Numerically stable single-pass moments: feed values (or whole
    arrays) as they arrive, merge independently accumulated states
    (shards, workers), and read ``mean`` / ``variance`` / ``ci`` at any
    point.  NaN inputs propagate (matching ``np.mean``).
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        """Fold in one observation."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update_many(self, values: Sequence[float]) -> None:
        """Fold in a whole chunk (vectorized, then Chan-merged)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        other = RunningStats()
        other.count = int(arr.size)
        other.mean = float(arr.mean())
        other.m2 = float(np.sum((arr - other.mean) ** 2))
        other.minimum = float(arr.min())
        other.maximum = float(arr.max())
        self.merge(other)

    def merge(self, other: "RunningStats") -> None:
        """Fold another state in (Chan et al. parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        n = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * (
            self.count * other.count / n
        )
        self.mean += delta * (other.count / n)
        self.count = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1; nan below two observations)."""
        if self.count < 2:
            return float("nan")
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance) if self.count >= 2 else float("nan")

    def ci(self, level: float = 0.95):
        """Student-t CI for the mean, matching
        :func:`repro.stats.ci.mean_ci` on the same sample.

        Raises:
            ValueError: On an empty state or a level outside (0, 1).
        """
        from repro.stats.ci import ConfidenceInterval
        from scipy import stats as _sps

        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        if self.count == 0:
            raise ValueError("cannot compute a CI from an empty sample")
        if self.count == 1:
            return ConfidenceInterval(
                self.mean, self.mean, self.mean, level, 1
            )
        sem = self.std / math.sqrt(self.count)
        t_crit = float(
            _sps.t.ppf(0.5 + level / 2.0, df=self.count - 1)
        )
        return ConfidenceInterval(
            self.mean,
            self.mean - t_crit * sem,
            self.mean + t_crit * sem,
            level,
            self.count,
        )

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready state (for cache manifests / service payloads)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "RunningStats":
        """Rebuild a state written by :meth:`to_dict`."""
        stats = cls()
        stats.count = int(data["count"])
        stats.mean = float(data["mean"])
        stats.m2 = float(data["m2"])
        stats.minimum = float(data["min"])
        stats.maximum = float(data["max"])
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class QuantileSketch:
    """A t-digest-style mergeable quantile sketch.

    Maintains weighted centroids whose maximum weight follows the
    arcsine scale function ``k(q) = (δ/2π)·asin(2q−1)`` — fine near the
    tails, coarse in the middle — so extreme quantiles of skewed
    Time-To-Attack samples stay accurate at O(δ) memory.  Fully
    deterministic: no randomness, insertion order decides ties.

    Args:
        compression: The δ parameter; memory is O(δ), rank error
            roughly ``q(1-q)/δ``-scaled.
    """

    def __init__(self, compression: int = 200) -> None:
        if compression < 10:
            raise ValueError(
                f"compression must be >= 10, got {compression}"
            )
        self.compression = int(compression)
        self.count = 0
        self._means = np.empty(0, dtype=float)
        self._weights = np.empty(0, dtype=float)
        self._buffer: List[float] = []
        self._buffer_limit = 8 * self.compression
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        """Fold in one observation (non-finite values are ignored)."""
        value = float(value)
        if not math.isfinite(value):
            return
        self._buffer.append(value)
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._buffer) >= self._buffer_limit:
            self._compress()

    def update_many(self, values: Sequence[float]) -> None:
        """Fold in a whole chunk."""
        arr = np.asarray(values, dtype=float).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.minimum = min(self.minimum, float(arr.min()))
        self.maximum = max(self.maximum, float(arr.max()))
        self._buffer.extend(arr.tolist())
        if len(self._buffer) >= self._buffer_limit:
            self._compress()

    @staticmethod
    def _k(q: np.ndarray, delta: int) -> np.ndarray:
        return (delta / (2.0 * math.pi)) * np.arcsin(
            np.clip(2.0 * q - 1.0, -1.0, 1.0)
        )

    def _compress(self) -> None:
        if self._buffer:
            means = np.concatenate(
                [self._means, np.asarray(self._buffer, dtype=float)]
            )
            weights = np.concatenate(
                [self._weights, np.ones(len(self._buffer))]
            )
            self._buffer = []
        else:
            means, weights = self._means, self._weights
        if means.size == 0:
            return
        order = np.argsort(means, kind="stable")
        means, weights = means[order], weights[order]
        total = float(weights.sum())
        out_means: List[float] = []
        out_weights: List[float] = []
        cum = 0.0  # weight before the open cluster
        cluster_mean = means[0]
        cluster_weight = weights[0]
        k_start = float(self._k(np.asarray(cum / total), self.compression))
        for m, w in zip(means[1:], weights[1:]):
            q_end = (cum + cluster_weight + w) / total
            k_end = float(
                self._k(np.asarray(q_end), self.compression)
            )
            if k_end - k_start <= 1.0:
                cluster_mean += (m - cluster_mean) * (
                    w / (cluster_weight + w)
                )
                cluster_weight += w
            else:
                out_means.append(cluster_mean)
                out_weights.append(cluster_weight)
                cum += cluster_weight
                cluster_mean = m
                cluster_weight = w
                k_start = float(
                    self._k(np.asarray(cum / total), self.compression)
                )
        out_means.append(cluster_mean)
        out_weights.append(cluster_weight)
        self._means = np.asarray(out_means, dtype=float)
        self._weights = np.asarray(out_weights, dtype=float)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in."""
        if other.count == 0:
            return
        other._compress()
        self._compress()
        self._means = np.concatenate([self._means, other._means])
        self._weights = np.concatenate([self._weights, other._weights])
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self._compress()

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (nan on an empty sketch).

        Raises:
            ValueError: If ``q`` is outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        self._compress()
        if self.count == 0 or self._means.size == 0:
            return float("nan")
        if self._means.size == 1:
            return float(self._means[0])
        weights = self._weights
        total = float(weights.sum())
        target = q * total
        # Centroid i sits at the midpoint of its weight span.
        centers = np.cumsum(weights) - weights / 2.0
        if target <= centers[0]:
            # Interpolate from the true minimum to the first centroid.
            span = centers[0]
            frac = target / span if span > 0 else 0.0
            return float(
                self.minimum + frac * (self._means[0] - self.minimum)
            )
        if target >= centers[-1]:
            span = total - centers[-1]
            frac = (target - centers[-1]) / span if span > 0 else 1.0
            return float(
                self._means[-1]
                + frac * (self.maximum - self._means[-1])
            )
        idx = int(np.searchsorted(centers, target, side="right"))
        left, right = centers[idx - 1], centers[idx]
        frac = (target - left) / (right - left) if right > left else 0.0
        return float(
            self._means[idx - 1]
            + frac * (self._means[idx] - self._means[idx - 1])
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state."""
        self._compress()
        return {
            "compression": self.compression,
            "count": self.count,
            "means": [float(m) for m in self._means],
            "weights": [float(w) for w in self._weights],
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QuantileSketch":
        """Rebuild a sketch written by :meth:`to_dict`."""
        sketch = cls(compression=int(data["compression"]))
        sketch.count = int(data["count"])
        sketch._means = np.asarray(data["means"], dtype=float)
        sketch._weights = np.asarray(data["weights"], dtype=float)
        sketch.minimum = float(data["min"])
        sketch.maximum = float(data["max"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantileSketch(n={self.count}, "
            f"centroids={self._means.size}, "
            f"compression={self.compression})"
        )


class StreamingSummary:
    """Running ``summarize_records``-shaped summary over record streams.

    One :class:`RunningStats` (and optionally one
    :class:`QuantileSketch`) per response column, fed row chunks as
    they complete.  Registered directly on ``on_result`` hooks: the
    instance is callable with every hook shape used in the library —
    ``(index, result)`` from :class:`repro.exec.ExperimentRunner` /
    backends, or ``(result,)`` from
    :class:`~repro.scenarios.suite.ScenarioSuite` — and folds in
    response rows, whole tables, or results carrying a ``.table``.

    Args:
        columns: Tracked numeric columns (default: the library's
            response columns, which makes :meth:`summary` exactly
            ``summarize_records``-shaped).
        quantiles: Also maintain quantile sketches per column.
        compression: Sketch δ (see :class:`QuantileSketch`).
    """

    def __init__(
        self,
        columns: Sequence[str] = RESPONSE_COLUMNS,
        quantiles: bool = False,
        compression: int = 200,
    ) -> None:
        self.columns = tuple(columns)
        self.stats: Dict[str, RunningStats] = {
            c: RunningStats() for c in self.columns
        }
        self.sketches: Dict[str, QuantileSketch] = (
            {c: QuantileSketch(compression) for c in self.columns}
            if quantiles
            else {}
        )

    @property
    def count(self) -> int:
        """Rows observed."""
        return self.stats[self.columns[0]].count if self.columns else 0

    # ---- observation -----------------------------------------------------

    def observe_row(self, row: Sequence[float]) -> None:
        """Fold in one response row (values in column order)."""
        for name, value in zip(self.columns, row):
            self.stats[name].update(value)
            if self.sketches:
                self.sketches[name].update(value)

    def observe_columns(
        self, columns: Mapping[str, Sequence[float]]
    ) -> None:
        """Fold in a chunk of aligned column arrays."""
        for name in self.columns:
            values = np.asarray(columns[name], dtype=float)
            self.stats[name].update_many(values)
            if self.sketches:
                self.sketches[name].update_many(values)

    def observe_table(self, table: RecordTable) -> None:
        """Fold in a whole table, one chunk at a time if sharded."""
        chunks = (
            table.iter_chunks()
            if isinstance(table, ShardedRecordTable)
            else (table,)
        )
        for chunk in chunks:
            self.observe_columns(
                {name: chunk.column(name) for name in self.columns}
            )

    def observe(self, payload: object) -> None:
        """Fold in any result shape the hooks deliver."""
        if isinstance(payload, RecordTable):
            self.observe_table(payload)
        elif hasattr(payload, "table"):
            self.observe_table(payload.table)  # type: ignore[attr-defined]
        elif isinstance(payload, Mapping):
            self.observe_row(
                [float(payload[name]) for name in self.columns]
            )
        elif isinstance(payload, (tuple, list, np.ndarray)):
            self.observe_row(payload)  # type: ignore[arg-type]
        else:
            raise TypeError(
                f"cannot aggregate result of type {type(payload).__name__}"
            )

    def __call__(self, *args: object) -> None:
        # on_result hook adapter: (index, result) or (result,).
        if len(args) == 2 and isinstance(args[0], int):
            self.observe(args[1])
        elif len(args) == 1:
            self.observe(args[0])
        else:
            raise TypeError(
                f"expected (index, result) or (result,), got {len(args)} "
                "arguments"
            )

    # ---- read-out --------------------------------------------------------

    def merge(self, other: "StreamingSummary") -> None:
        """Fold another summary (e.g. a shard's) in — O(state)."""
        if other.columns != self.columns:
            raise ValueError(
                f"cannot merge summaries over columns {other.columns} "
                f"and {self.columns}"
            )
        for name in self.columns:
            self.stats[name].merge(other.stats[name])
            if self.sketches and other.sketches:
                self.sketches[name].merge(other.sketches[name])

    def mean(self, column: str) -> float:
        """Running mean of ``column`` (nan before any observation)."""
        stats = self.stats[column]
        return stats.mean if stats.count else float("nan")

    def means(self) -> Dict[str, float]:
        """Running means keyed by column."""
        return {name: self.mean(name) for name in self.columns}

    def variance(self, column: str) -> float:
        """Running sample variance of ``column``."""
        return self.stats[column].variance

    def ci(self, column: str, level: float = 0.95):
        """Student-t CI of ``column``'s mean (see
        :meth:`RunningStats.ci`)."""
        return self.stats[column].ci(level)

    def cis(self, level: float = 0.95) -> Dict[str, object]:
        """CIs for every tracked column."""
        return {name: self.ci(name, level) for name in self.columns}

    def quantile(self, column: str, q: float) -> float:
        """Sketched quantile (requires ``quantiles=True``).

        Raises:
            ValueError: If sketches were not enabled.
        """
        if not self.sketches:
            raise ValueError(
                "quantile sketches disabled; construct with "
                "quantiles=True"
            )
        return self.sketches[column].quantile(q)

    def summary(self) -> Dict[str, float]:
        """The ``summarize_records``-shaped scalar summary.

        Identical keys (``psa`` / restricted means) when tracking the
        library's response columns; ``{column}_mean`` keys otherwise.
        All-NaN before any observation, like ``summarize_records([])``.
        """
        means = self.means()
        if set(RESPONSE_COLUMNS) <= set(self.columns):
            return summary_from_means(means)
        return {f"{name}_mean": value for name, value in means.items()}

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state (cache manifests, service payloads)."""
        payload: Dict[str, object] = {
            "columns": list(self.columns),
            "stats": {
                name: self.stats[name].to_dict() for name in self.columns
            },
        }
        if self.sketches:
            payload["sketches"] = {
                name: self.sketches[name].to_dict()
                for name in self.columns
            }
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "StreamingSummary":
        """Rebuild a summary written by :meth:`to_dict`."""
        columns = list(data["columns"])  # type: ignore[arg-type]
        summary = cls(columns=columns, quantiles="sketches" in data)
        for name in columns:
            summary.stats[name] = RunningStats.from_dict(
                data["stats"][name]  # type: ignore[index]
            )
        for name in columns:
            if summary.sketches:
                summary.sketches[name] = QuantileSketch.from_dict(
                    data["sketches"][name]  # type: ignore[index]
                )
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingSummary(n={self.count}, "
            f"columns={list(self.columns)}, "
            f"quantiles={'on' if self.sketches else 'off'})"
        )


class SuiteStreamingAggregator:
    """Per-scenario + pooled streaming summaries over a suite run.

    Register it on :meth:`ScenarioSuite.run
    <repro.scenarios.suite.ScenarioSuite.run>`'s ``on_result`` hook (or
    pass it via ``aggregators=``): each finished scenario's table is
    folded, chunk-wise, into a per-scenario :class:`StreamingSummary`
    and a pooled one — so the cross-scenario comparison comes out of
    the run without ever materializing the combined table.
    """

    def __init__(self, quantiles: bool = False) -> None:
        self.quantiles = quantiles
        self.pooled = StreamingSummary(quantiles=quantiles)
        self.by_scenario: Dict[str, StreamingSummary] = {}
        self.meta: Dict[str, Dict[str, object]] = {}

    def observe_result(self, result: object) -> None:
        """Fold in one finished scenario result."""
        name = result.scenario.name  # type: ignore[attr-defined]
        per = self.by_scenario.get(name)
        if per is None:
            per = StreamingSummary(quantiles=self.quantiles)
            self.by_scenario[name] = per
        table = result.table  # type: ignore[attr-defined]
        per.observe_table(table)
        self.pooled.observe_table(table)
        self.meta[name] = {
            "runs": getattr(result, "n_runs", None),
            "reps": getattr(result, "replications", None),
        }

    __call__ = observe_result

    def merge(self, other: "SuiteStreamingAggregator") -> None:
        """Fold another aggregator (e.g. a suite shard's) in."""
        self.pooled.merge(other.pooled)
        for name, summary in other.by_scenario.items():
            mine = self.by_scenario.get(name)
            if mine is None:
                self.by_scenario[name] = summary
            else:
                mine.merge(summary)
        self.meta.update(other.meta)

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """``{scenario: summary dict}`` in first-completion order."""
        return {
            name: summary.summary()
            for name, summary in self.by_scenario.items()
        }

    def comparison_report(self, title: Optional[str] = None) -> str:
        """The cross-scenario comparison table, straight from the
        running aggregates."""
        from repro.core.report import comparison_table
        from repro.results.table import SUMMARY_METRICS

        summaries = {
            name: dict(
                summary,
                runs=self.meta.get(name, {}).get("runs", "--"),
                reps=self.meta.get(name, {}).get("reps", "--"),
            )
            for name, summary in self.summaries().items()
        }
        return comparison_table(
            "scenario",
            summaries,
            columns=("runs", "reps", *SUMMARY_METRICS),
            title=title
            or (
                f"Cross-scenario comparison ({len(summaries)} "
                "scenarios; streaming aggregates)"
            ),
        )
