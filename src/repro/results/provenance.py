"""Run provenance: what produced a result, pinned for reproduction.

Every facade-era result (:mod:`repro.api`) carries a
:class:`Provenance` — the content digest of the executed specification,
the root seed material, the execution backend and the library version —
so a result saved to disk or shipped across a service boundary records
everything needed to reproduce it bit-for-bit with
``Session.run(spec, seed=...)``.

The digest uses the same canonical-JSON SHA-256 as the content-addressed
result cache (:func:`repro.results.cache.content_key`): two runs with
equal ``spec_digest`` and equal seed material executed the same
experiment.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.results.cache import content_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.runner import ExperimentRunner


@dataclass(frozen=True)
class Provenance:
    """Reproduction record of one experiment run.

    Attributes:
        spec_digest: SHA-256 content digest of the canonical-JSON
            specification payload that was executed (scenario spec,
            measurement-plan payload, campaign payload, ...).
        entropy: Root :class:`~numpy.random.SeedSequence` entropy as a
            string (may be a >64-bit integer; ``None`` seeds record the
            fresh OS entropy that was drawn, so even "unseeded" runs
            are reproducible afterwards).
        spawn_key: Root sequence spawn key.
        backend: Execution backend name (``serial`` / ``thread`` /
            ``process``).
        n_workers: Worker-pool width the run was configured with
            (results never depend on it; recorded for performance
            forensics).
        library_version: ``repro.__version__`` at run time.
        source: The entry point that produced the result
            (``"scenario_suite"``, ``"measurement_plan"``,
            ``"campaign"``, ``"diversity_study"``, ...).
        execution: Execution-mode knobs that never affect records but
            matter for performance forensics — e.g. ``{"stream": True,
            "max_records_in_ram": 65536}`` on streaming runs.  Kept out
            of ``spec_digest`` deliberately: a streamed run and an
            in-RAM run of the same spec digest identically.
    """

    spec_digest: str
    entropy: str
    spawn_key: Tuple[int, ...]
    backend: str
    n_workers: int
    library_version: str
    source: str
    execution: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-data (JSON-ready) form."""
        data = asdict(self)
        data["spawn_key"] = list(self.spawn_key)
        return data

    def seed_material(self) -> Dict[str, object]:
        """The ``(entropy, spawn_key)`` pair as a dict."""
        return {"entropy": self.entropy, "spawn_key": list(self.spawn_key)}


def provenance_for(
    payload: Mapping[str, object],
    seq: np.random.SeedSequence,
    runner: "Optional[ExperimentRunner]" = None,
    source: str = "session",
    execution: Optional[Mapping[str, object]] = None,
) -> Provenance:
    """Build the :class:`Provenance` of a run about to execute.

    Args:
        payload: Canonical-JSON-serializable description of the
            experiment (digested, not stored).
        seq: The root seed sequence the run spawns its children from.
        runner: The executing runner; ``None`` records the serial
            reference semantics.
        source: Entry-point label.
        execution: Optional execution-mode knobs to record (streaming
            settings etc.); excluded from the digest by design.  A
            runner carrying a retry policy or an injected fault plan
            records them here too — resilience and chaos drills are
            *visible* in provenance without ever touching the spec
            digest (they cannot change results).
    """
    import repro

    execution_record = dict(execution) if execution is not None else {}
    retry = getattr(runner, "retry", None)
    if retry is not None:
        execution_record.setdefault("retry", retry.to_dict())
    fault_plan = getattr(runner, "fault_plan", None)
    if fault_plan is not None:
        execution_record.setdefault("fault_plan", fault_plan.to_dict())
    return Provenance(
        spec_digest=content_key(dict(payload)),
        entropy=str(seq.entropy),
        spawn_key=tuple(int(k) for k in seq.spawn_key),
        backend=runner.backend_name if runner is not None else "serial",
        n_workers=runner.n_workers if runner is not None else 1,
        library_version=repro.__version__,
        source=source,
        execution=execution_record or None,
    )
