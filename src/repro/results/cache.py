"""Content-addressed result caching.

A cache entry is addressed by the SHA-256 digest of a canonical-JSON
*key payload* — for scenario suites that payload is the full scenario
spec plus the replication seed material, so **any** change to the
scenario (a factor level, the horizon, the replication count, the seed)
produces a different address and therefore a cold miss.  Entries store a
:class:`~repro.results.table.RecordTable` as ``<digest>.npz`` next to a
``<digest>.json`` metadata document; both are written atomically
(temp-file + rename) so concurrent writers — e.g. two suite shards
filling one cache directory — never expose torn entries.

Streaming tables (:class:`~repro.results.streaming.ShardedRecordTable`)
are stored as a *shard manifest* instead of one monolithic ``.npz``:
each chunk goes to ``<digest>.shard<i>.npz`` and the metadata document
gains a reserved ``__shards__`` key listing the shard files, row counts
and schema.  The metadata is written last, so an entry only becomes
visible once every shard it names is in place; a manifest naming a
missing shard is a miss.  Loading a manifest entry rebuilds a lazy
``ShardedRecordTable`` over the cached shard files — no rows are read
until an operation streams them.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import zipfile
from typing import Dict, List, Mapping, Optional, Tuple

from repro.results.table import RecordTable
from repro.telemetry.core import metric_inc

_LOG = logging.getLogger(__name__)

#: Reserved metadata key naming the shard files of a manifest entry.
SHARD_MANIFEST_KEY = "__shards__"


def _size_of(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def canonical_json(payload: Mapping[str, object]) -> str:
    """Deterministic JSON used for content addressing.

    Raises:
        TypeError: If the payload contains non-JSON-serializable values
            (content addresses must never depend on ``repr`` fallbacks).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(payload: Mapping[str, object]) -> str:
    """SHA-256 hex digest of the canonical payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed ``RecordTable`` + metadata entries.

    Args:
        root: Cache directory (created on first use).

    Example:
        >>> import tempfile
        >>> cache = ResultCache(tempfile.mkdtemp())
        >>> key = content_key({"spec": {"name": "smoke"}, "seed": 7})
        >>> cache.load(key) is None
        True
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def _paths(self, key: str) -> Tuple[str, str]:
        return (
            os.path.join(self.root, f"{key}.npz"),
            os.path.join(self.root, f"{key}.json"),
        )

    def _shard_path(self, key: str, index: int) -> str:
        return os.path.join(self.root, f"{key}.shard{index:06d}.npz")

    def _read_meta(self, meta_path: str) -> Optional[Dict[str, object]]:
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def contains(self, key: str) -> bool:
        """Whether a complete entry exists for ``key`` (every shard a
        manifest names must be present)."""
        table_path, meta_path = self._paths(key)
        meta = self._read_meta(meta_path)
        if meta is None:
            return False
        manifest = meta.get(SHARD_MANIFEST_KEY)
        if manifest is None:
            return os.path.exists(table_path)
        try:
            files = [entry["file"] for entry in manifest["shards"]]
        except (TypeError, KeyError):
            return False
        return all(
            os.path.exists(os.path.join(self.root, name)) for name in files
        )

    def load(self, key: str) -> Optional[Tuple[RecordTable, Dict[str, object]]]:
        """Return ``(table, metadata)`` for ``key``, or ``None`` on a miss.

        Unreadable/corrupt entries are treated as misses rather than
        failures — a damaged cache must never sink a suite run.
        Manifest entries come back as a lazy
        :class:`~repro.results.streaming.ShardedRecordTable` over the
        cached shard files (the cache keeps owning the files).
        """
        table_path, meta_path = self._paths(key)
        meta = self._read_meta(meta_path)
        if meta is None:
            return None
        manifest = meta.pop(SHARD_MANIFEST_KEY, None)
        if manifest is None:
            try:
                table = RecordTable.load_npz(table_path)
            except (
                OSError,
                ValueError,
                KeyError,
                zipfile.BadZipFile,
            ):
                _LOG.debug("cache entry %s unreadable, treating as miss", key)
                metric_inc("cache.miss.corrupt")
                return None
            metric_inc(
                "cache.bytes_read", _size_of(table_path) + _size_of(meta_path)
            )
            return table, meta
        from repro.results.streaming import ShardedRecordTable, TableShard

        try:
            columns = list(manifest["columns"])
            parts: List[TableShard] = []
            total_bytes = _size_of(meta_path)
            for entry in manifest["shards"]:
                path = os.path.join(self.root, entry["file"])
                if not os.path.exists(path):
                    _LOG.debug(
                        "cache entry %s names missing shard %s "
                        "(torn manifest), treating as miss",
                        key, entry.get("file"),
                    )
                    metric_inc("cache.miss.torn_manifest")
                    return None  # torn manifest
                total_bytes += _size_of(path)
                parts.append(TableShard(path, int(entry["rows"]), columns))
        except (TypeError, KeyError, ValueError):
            _LOG.debug("cache entry %s has a bad manifest, treating as miss", key)
            metric_inc("cache.miss.corrupt")
            return None
        metric_inc("cache.bytes_read", total_bytes)
        return ShardedRecordTable(parts), meta

    def store(
        self, key: str, table: RecordTable, meta: Mapping[str, object]
    ) -> None:
        """Atomically persist ``(table, meta)`` under ``key``.

        A :class:`~repro.results.streaming.ShardedRecordTable` is
        persisted chunk-by-chunk as a shard manifest; anything else as
        one monolithic ``.npz``.  The metadata document lands last, so
        readers never see a partially written entry.

        Raises:
            ValueError: If ``meta`` uses the reserved ``__shards__`` key.
        """
        if SHARD_MANIFEST_KEY in meta:
            raise ValueError(
                f"metadata key {SHARD_MANIFEST_KEY!r} is reserved for "
                "shard manifests"
            )
        from repro.results.streaming import ShardedRecordTable

        os.makedirs(self.root, exist_ok=True)
        table_path, meta_path = self._paths(key)
        meta_out: Dict[str, object] = dict(meta)
        written = 0
        if isinstance(table, ShardedRecordTable):
            shards = []
            for index, chunk in enumerate(table.iter_chunks()):
                path = self._shard_path(key, index)
                self._write_atomic(path, chunk.save_npz)
                written += _size_of(path)
                shards.append(
                    {"file": os.path.basename(path), "rows": len(chunk)}
                )
            meta_out[SHARD_MANIFEST_KEY] = {
                "columns": table.columns,
                "shards": shards,
            }
        else:
            self._write_atomic(table_path, table.save_npz)
            written += _size_of(table_path)
        payload = json.dumps(meta_out, indent=2, sort_keys=True)

        def write_meta(path: str) -> None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)

        self._write_atomic(meta_path, write_meta)
        metric_inc("cache.stores")
        metric_inc("cache.bytes_written", written + _size_of(meta_path))
        _LOG.debug("cache stored %s (%d bytes)", key, written)

    def _write_atomic(self, path, writer) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=os.path.basename(path)
        )
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
