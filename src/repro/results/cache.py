"""Content-addressed result caching.

A cache entry is addressed by the SHA-256 digest of a canonical-JSON
*key payload* — for scenario suites that payload is the full scenario
spec plus the replication seed material, so **any** change to the
scenario (a factor level, the horizon, the replication count, the seed)
produces a different address and therefore a cold miss.  Entries store a
:class:`~repro.results.table.RecordTable` as ``<digest>.npz`` next to a
``<digest>.json`` metadata document; both are written atomically
(temp-file + rename) so concurrent writers — e.g. two suite shards
filling one cache directory — never expose torn entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from typing import Dict, Mapping, Optional, Tuple

from repro.results.table import RecordTable


def canonical_json(payload: Mapping[str, object]) -> str:
    """Deterministic JSON used for content addressing.

    Raises:
        TypeError: If the payload contains non-JSON-serializable values
            (content addresses must never depend on ``repr`` fallbacks).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(payload: Mapping[str, object]) -> str:
    """SHA-256 hex digest of the canonical payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed ``RecordTable`` + metadata entries.

    Args:
        root: Cache directory (created on first use).

    Example:
        >>> import tempfile
        >>> cache = ResultCache(tempfile.mkdtemp())
        >>> key = content_key({"spec": {"name": "smoke"}, "seed": 7})
        >>> cache.load(key) is None
        True
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def _paths(self, key: str) -> Tuple[str, str]:
        return (
            os.path.join(self.root, f"{key}.npz"),
            os.path.join(self.root, f"{key}.json"),
        )

    def contains(self, key: str) -> bool:
        """Whether a complete entry exists for ``key``."""
        table_path, meta_path = self._paths(key)
        return os.path.exists(table_path) and os.path.exists(meta_path)

    def load(self, key: str) -> Optional[Tuple[RecordTable, Dict[str, object]]]:
        """Return ``(table, metadata)`` for ``key``, or ``None`` on a miss.

        Unreadable/corrupt entries are treated as misses rather than
        failures — a damaged cache must never sink a suite run.
        """
        table_path, meta_path = self._paths(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            table = RecordTable.load_npz(table_path)
        except (
            OSError,
            ValueError,
            KeyError,
            json.JSONDecodeError,
            zipfile.BadZipFile,
        ):
            return None
        return table, meta

    def store(
        self, key: str, table: RecordTable, meta: Mapping[str, object]
    ) -> None:
        """Atomically persist ``(table, meta)`` under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        table_path, meta_path = self._paths(key)
        self._write_atomic(table_path, lambda path: table.save_npz(path))
        payload = json.dumps(dict(meta), indent=2, sort_keys=True)

        def write_meta(path: str) -> None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)

        self._write_atomic(meta_path, write_meta)

    def _write_atomic(self, path, writer) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=os.path.basename(path)
        )
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
