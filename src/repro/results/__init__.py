"""Columnar Monte-Carlo results: tables, aggregation, caching.

The results subsystem is the array-backed spine of the measurement
pipeline (see :mod:`repro.results.table`):

* :class:`RecordTable` — NumPy-columned long-format records with an
  exact ``from_dicts``/``to_dicts`` round-trip, concat/filter/group-by,
  and pickle-compact transport across the ``process`` backend.
* :func:`summarize_records` — the shared scalar summary
  (``psa`` / restricted means) computed on arrays.
* :class:`ResultCache` / :func:`content_key` — content-addressed,
  atomically-written on-disk caching of tables plus metadata, used by
  :class:`repro.scenarios.suite.ScenarioSuite` for warm re-runs and
  shard merging.
* :class:`Provenance` / :func:`provenance_for` — the reproduction
  record (spec digest, seed material, backend, library version) every
  facade-era result carries; see :mod:`repro.api`.
* :mod:`repro.results.streaming` — the out-of-core layer:
  :class:`ShardedRecordTable` / :class:`StreamingTableBuilder` spill
  fixed-size row chunks to per-shard ``.npz`` files behind the
  ``RecordTable`` surface, and :class:`RunningStats` /
  :class:`QuantileSketch` / :class:`StreamingSummary` fold
  replications into ``summarize_records``-shaped summaries on the
  ``on_result`` hooks without materializing records.
"""

from repro.results.cache import ResultCache, canonical_json, content_key
from repro.results.provenance import Provenance, provenance_for
from repro.results.streaming import (
    DEFAULT_MAX_RECORDS_IN_RAM,
    QuantileSketch,
    RunningStats,
    ShardedRecordTable,
    StreamingSummary,
    StreamingTableBuilder,
    SuiteStreamingAggregator,
    TableShard,
)
from repro.results.table import (
    RESPONSE_COLUMNS,
    SUMMARY_METRICS,
    RecordTable,
    TableRecordsMixin,
    summarize_records,
    summary_from_means,
)

__all__ = [
    "DEFAULT_MAX_RECORDS_IN_RAM",
    "RESPONSE_COLUMNS",
    "SUMMARY_METRICS",
    "Provenance",
    "QuantileSketch",
    "RecordTable",
    "ResultCache",
    "RunningStats",
    "ShardedRecordTable",
    "StreamingSummary",
    "StreamingTableBuilder",
    "SuiteStreamingAggregator",
    "TableRecordsMixin",
    "TableShard",
    "canonical_json",
    "content_key",
    "provenance_for",
    "summarize_records",
    "summary_from_means",
]
