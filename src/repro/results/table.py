"""The columnar record table.

Monte-Carlo experiments in this library historically flowed through
"long-format records": one ``Dict[str, object]`` per campaign
replication, aggregated with Python loops.  :class:`RecordTable` keeps
the same logical shape — named columns over aligned rows — but stores
each column as a NumPy array (``float64`` / ``int64`` for numeric
responses, ``object`` for factor levels), so

* aggregation (means, group-bys, ANOVA inputs) runs on arrays,
* the ``process`` backend ships compact column buffers instead of
  pickled dict lists, and
* results serialize to ``.npz`` for content-addressed caching.

``from_dicts`` / ``to_dicts`` round-trip exactly: a column whose values
are all Python ``float`` comes back as ``float``, all-``int`` columns as
``int``, and everything else (strings, mixed types) is kept in an
``object`` column holding the original Python objects.
"""

from __future__ import annotations

import json
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np


def _infer_column(values: Sequence[object]) -> np.ndarray:
    """Build the narrowest exactly-round-tripping array for ``values``."""
    if values and all(
        type(v) is int for v in values  # bool is *not* int here
    ):
        return np.asarray(values, dtype=np.int64)
    if values and all(type(v) is float for v in values):
        return np.asarray(values, dtype=np.float64)
    column = np.empty(len(values), dtype=object)
    column[:] = values
    return column


def _python_value(value: object) -> object:
    """Convert a NumPy scalar back to the Python type it round-trips to."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


class RecordTable:
    """An immutable-by-convention table of named, aligned columns.

    Args:
        columns: ``{name: 1-D array}`` — all arrays must share one
            length.  Insertion order is the column order.

    Raises:
        ValueError: On ragged columns or non-1-D arrays.
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        prepared: Dict[str, np.ndarray] = {}
        n: Optional[int] = None
        for name, array in columns.items():
            array = np.asarray(array)
            if array.ndim != 1:
                raise ValueError(
                    f"column {name!r} must be 1-D, got shape {array.shape}"
                )
            if n is None:
                n = array.shape[0]
            elif array.shape[0] != n:
                raise ValueError(
                    f"column {name!r} has {array.shape[0]} rows; "
                    f"expected {n}"
                )
            prepared[name] = array
        self._columns = prepared
        self._n = n or 0

    # ---- construction ----------------------------------------------------

    @classmethod
    def from_dicts(
        cls, records: Sequence[Mapping[str, object]]
    ) -> "RecordTable":
        """Build a table from long-format records.

        Every record must carry the same keys (the first record fixes
        the column order).

        Raises:
            ValueError: If records disagree on their key sets.
        """
        records = list(records)
        if not records:
            return cls({})
        names = list(records[0].keys())
        key_set = set(names)
        for i, record in enumerate(records):
            if set(record.keys()) != key_set:
                raise ValueError(
                    f"record {i} keys {sorted(record.keys())} != "
                    f"{sorted(key_set)}"
                )
        return cls(
            {
                name: _infer_column([record[name] for record in records])
                for name in names
            }
        )

    @classmethod
    def concat(cls, tables: Sequence["RecordTable"]) -> "RecordTable":
        """Stack tables that share a column schema (order-sensitive).

        Schema-less empty tables (zero rows *and* zero columns, e.g.
        ``from_dicts([])``, an empty suite shard, an empty DoE design)
        are identity elements: they are skipped, and the first table
        that *does* carry a schema fixes the column set.  Zero-row
        tables that have columns still participate in the schema check.

        Raises:
            ValueError: If the tables' column names differ.
        """
        tables = [t for t in tables if t.columns or len(t)]
        if not tables:
            return cls({})
        names = tables[0].columns
        for table in tables[1:]:
            if table.columns != names:
                raise ValueError(
                    f"cannot concat tables with columns {table.columns} "
                    f"and {names}"
                )
        if len(tables) == 1:
            return tables[0]
        return cls(
            {
                name: np.concatenate([t.column(name) for t in tables])
                for name in names
            }
        )

    # ---- basic shape -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    @property
    def columns(self) -> List[str]:
        """Column names in order."""
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """The raw array backing column ``name``.

        Raises:
            KeyError: On unknown columns.
        """
        return self._columns[name]

    def values(self, name: str) -> List[object]:
        """Column ``name`` as a list of Python scalars."""
        return [_python_value(v) for v in self._columns[name].tolist()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordTable):
            return NotImplemented
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(
            np.array_equal(self._columns[c], other._columns[c])
            for c in self.columns
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecordTable({self._n} rows x {len(self._columns)} cols: "
            f"{', '.join(self.columns)})"
        )

    # ---- row views -------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        """Long-format records, with the original Python value types."""
        names = self.columns
        pylists = {name: self.values(name) for name in names}
        return [
            {name: pylists[name][i] for name in names}
            for i in range(self._n)
        ]

    def row(self, index: int) -> Dict[str, object]:
        """One record."""
        return {
            name: _python_value(self._columns[name][index])
            for name in self.columns
        }

    # ---- relational operations ------------------------------------------

    def filter(self, mask: np.ndarray) -> "RecordTable":
        """Rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n,):
            raise ValueError(
                f"mask shape {mask.shape} != ({self._n},)"
            )
        return RecordTable(
            {name: array[mask] for name, array in self._columns.items()}
        )

    def match_mask(self, name: str, value: object) -> np.ndarray:
        """Boolean mask of rows whose column ``name`` equals ``value``.

        NaN-aware: a float NaN ``value`` matches the NaN rows of the
        column (``nan != nan`` under ``==``, which would otherwise make
        NaN rows unreachable through :meth:`where`/:meth:`groupby`).
        """
        column = self._columns[name]
        if isinstance(value, float) and math.isnan(value):
            if column.dtype == object:
                return np.fromiter(
                    (
                        isinstance(v, float) and math.isnan(v)
                        for v in column.tolist()
                    ),
                    dtype=bool,
                    count=column.shape[0],
                )
            if np.issubdtype(column.dtype, np.floating):
                return np.isnan(column)
            return np.zeros(column.shape[0], dtype=bool)
        mask = column == value
        if not isinstance(mask, np.ndarray):
            # Incomparable types collapse to a scalar bool.
            return np.full(column.shape[0], bool(mask))
        return np.asarray(mask, dtype=bool)

    def where(self, name: str, value: object) -> "RecordTable":
        """Rows whose column ``name`` equals ``value`` (NaN matches NaN)."""
        return self.filter(self.match_mask(name, value))

    def groupby(
        self, name: str
    ) -> Iterator[Tuple[object, "RecordTable"]]:
        """Yield ``(value, sub-table)`` groups in first-appearance order.

        All NaN rows (e.g. detection latencies of undetected runs)
        coalesce into a single NaN group at the first NaN's position —
        ``nan != nan`` would otherwise open one empty group per NaN row
        and drop those rows from every group.
        """
        column = self._columns[name]
        seen: List[object] = []
        seen_nan = False
        for v in column.tolist():
            v = _python_value(v)
            if isinstance(v, float) and math.isnan(v):
                if not seen_nan:
                    seen_nan = True
                    seen.append(v)
                continue
            if v not in seen:
                seen.append(v)
        for v in seen:
            yield v, self.where(name, v)

    # ---- aggregation -----------------------------------------------------

    def mean(self, name: str) -> float:
        """Mean of a numeric column (nan when the table is empty).

        Object columns are accepted as long as every value is numeric
        (mixed int/float factor levels).

        Raises:
            TypeError: If the column holds non-numeric values.
        """
        if self._n == 0:
            return float("nan")
        try:
            values = np.asarray(self._columns[name], dtype=float)
        except (TypeError, ValueError):
            raise TypeError(
                f"column {name!r} is not numeric; cannot take its mean"
            ) from None
        return float(np.mean(values))

    def means(self, names: Sequence[str]) -> Dict[str, float]:
        """Column means keyed by name."""
        return {name: self.mean(name) for name in names}

    # ---- serialization ---------------------------------------------------

    def save_npz(self, path: str) -> None:
        """Persist the table to ``path`` (NumPy ``.npz``, no pickling).

        Object columns are stored as fixed-width unicode arrays; their
        values must therefore be strings (which is what long-format
        factor levels are).  Numeric columns round-trip exactly.

        Raises:
            TypeError: If an object column holds non-string values.
        """
        payload: Dict[str, np.ndarray] = {}
        schema: List[Tuple[str, str]] = []
        for i, (name, array) in enumerate(self._columns.items()):
            key = f"col_{i}"
            if array.dtype == object:
                if not all(isinstance(v, str) for v in array.tolist()):
                    raise TypeError(
                        f"column {name!r} holds non-string objects; "
                        "cannot serialize without pickling"
                    )
                payload[key] = np.asarray(array.tolist(), dtype=np.str_)
                schema.append((name, "str"))
            else:
                payload[key] = array
                schema.append((name, array.dtype.str))
        payload["schema"] = np.frombuffer(
            json.dumps(schema).encode("utf-8"), dtype=np.uint8
        )
        payload["n_rows"] = np.asarray([self._n], dtype=np.int64)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)

    @classmethod
    def load_npz(cls, path: str) -> "RecordTable":
        """Rebuild a table written by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as archive:
            schema = json.loads(bytes(archive["schema"]).decode("utf-8"))
            n_rows = int(archive["n_rows"][0])
            columns: Dict[str, np.ndarray] = {}
            for i, (name, dtype) in enumerate(schema):
                raw = archive[f"col_{i}"]
                if dtype == "str":
                    column = np.empty(len(raw), dtype=object)
                    column[:] = [str(v) for v in raw.tolist()]
                    columns[name] = column
                else:
                    columns[name] = raw.astype(np.dtype(dtype), copy=False)
        table = cls(columns)
        if len(table) != n_rows:
            raise ValueError(
                f"corrupt table at {path}: header says {n_rows} rows, "
                f"columns carry {len(table)}"
            )
        return table


class TableRecordsMixin:
    """Lazy dict-record view over a dataclass's ``table`` field.

    Gives result objects holding a :class:`RecordTable` a ``records``
    property that materializes ``table.to_dicts()`` on first access,
    caches it, and drops the cache whenever ``table`` is reassigned —
    so the two views can never silently disagree.  The returned list is
    a **view**: replace it by assigning a new ``table`` (or, where a
    setter is provided, a new record list); in-place mutation of the
    dicts is not written back to the columns.
    """

    def __setattr__(self, name: str, value: object) -> None:
        if name == "table":
            self.__dict__.pop("_records", None)
        object.__setattr__(self, name, value)

    @property
    def records(self) -> List[Dict[str, object]]:
        """The table as long-format dict records (computed lazily)."""
        cached = self.__dict__.get("_records")
        if cached is None:
            cached = self.table.to_dicts()  # type: ignore[attr-defined]
            self.__dict__["_records"] = cached
        return cached


#: Response columns of campaign measurement records, in record order.
RESPONSE_COLUMNS = ("success", "tta", "ttsf", "final_ratio")

#: Cross-scenario comparison metrics derived from the responses.
SUMMARY_METRICS = ("psa", "tta_mean", "ttsf_mean", "final_ratio_mean")


def summary_from_means(means: Mapping[str, float]) -> Dict[str, float]:
    """The :data:`SUMMARY_METRICS` dict from per-response-column means.

    Shared by the exact array path (:func:`summarize_records`) and the
    streaming aggregators (:mod:`repro.results.streaming`), so both
    produce identically shaped summaries.
    """
    return {
        "psa": means["success"],
        "tta_mean": means["tta"],
        "ttsf_mean": means["ttsf"],
        "final_ratio_mean": means["final_ratio"],
    }


def summarize_records(
    records: "RecordTable | Sequence[Mapping[str, object]]",
) -> Dict[str, float]:
    """Scalar comparison metrics over long-format measurement records.

    Accepts a :class:`RecordTable` (array path) or a record sequence
    (converted first).  Empty input yields all-NaN metrics.
    """
    table = (
        records
        if isinstance(records, RecordTable)
        else RecordTable.from_dicts(list(records))
    )
    means = table.means(RESPONSE_COLUMNS) if len(table) else {
        name: float("nan") for name in RESPONSE_COLUMNS
    }
    return summary_from_means(means)
