"""Deterministic, backend-invariant seed derivation for parallel runs.

The contract that makes parallel execution reproducible is simple: the
coordinator spawns **one child ``SeedSequence`` per work unit, up front,
before any work is distributed**.  Each unit then builds its own
:class:`numpy.random.Generator` from its pre-assigned sequence.  Because
the spawn happens centrally, the stream a replication sees is a pure
function of ``(root seed, replication index)`` — it cannot depend on the
backend, the number of workers, or how units are chunked across them.

This is the ``SeedSequence.spawn`` discipline recommended by NumPy for
parallel Monte-Carlo work; see also :class:`repro.sim.rng.RandomStreams`,
which applies the same idea to *named* subsystem streams.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

#: Anything the runner accepts as a seed specification.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalise ``seed`` into a :class:`numpy.random.SeedSequence`.

    Accepts:

    * ``None`` — fresh OS entropy (non-reproducible);
    * ``int`` — the usual fixed root seed;
    * :class:`~numpy.random.SeedSequence` — rebuilt from its entropy
      and spawn key.  The rebuild (rather than pass-through) matters:
      ``spawn()`` advances a sequence's internal child counter, so
      reusing one ``SeedSequence`` object across runs would otherwise
      spawn different children each time and silently break the
      same-seed ⇒ same-records guarantee;
    * :class:`~numpy.random.Generator` — a 63-bit root seed is drawn
      from the generator (advancing it by one draw).  This keeps APIs
      that historically took a shared generator deterministic: the same
      generator state always derives the same root sequence.

    Example:
        >>> root = as_seed_sequence(42)
        >>> [s.spawn_key for s in root.spawn(2)]
        [(0,), (1,)]
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed.entropy,
            spawn_key=seed.spawn_key,
            pool_size=seed.pool_size,
        )
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    raise TypeError(
        "seed must be None, an int, a SeedSequence or a Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_sequences(
    root: SeedLike, count: int
) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child sequences of ``root``.

    Children are pairwise independent and deterministic given the root:
    child ``i`` is identical no matter how many other children exist or
    in which order they are consumed.

    Raises:
        ValueError: If ``count < 1``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return list(as_seed_sequence(root).spawn(count))


def replication_generators(
    root: SeedLike, count: int
) -> List[np.random.Generator]:
    """One independent :class:`~numpy.random.Generator` per replication."""
    return [np.random.default_rng(seq) for seq in spawn_sequences(root, count)]


def sequence_state(seq: np.random.SeedSequence, words: int = 4) -> tuple:
    """A hashable fingerprint of the stream ``seq`` would produce.

    Two sequences with equal fingerprints would seed identical
    generators; tests use this to assert stream independence.
    """
    return tuple(int(w) for w in seq.generate_state(words))
