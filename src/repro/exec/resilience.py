"""Fault-tolerant chunk execution: retry, watchdog, degradation.

The experiment pipeline assesses dependability under faults, and this
module gives its own execution layer the same treatment.  Three
cooperating pieces sit between :class:`~repro.exec.backends._PoolBackend`
and the worker pools:

* :class:`RetryPolicy` — how many attempts a work chunk gets, how long
  to back off between them (exponential, with deterministic jitter
  drawn from a **dedicated non-experiment seed stream**), which
  exceptions count as transient, the per-chunk watchdog timeout and
  the pool-death budget.
* :class:`ChunkDispatcher` — the coordinator-side submit/collect engine
  shared by the thread and process backends.  It re-dispatches failed
  or timed-out chunks **with the same work units** — each unit carries
  its centrally spawned :class:`~numpy.random.SeedSequence` in its
  arguments, so a retried run is bit-identical to a fault-free run and
  the submission-order deterministic merge is preserved.  When a
  process pool dies (``BrokenProcessPool``) it respawns the pool and
  re-runs the in-flight chunks; after the policy's respawn budget is
  exhausted it *degrades* to inline (serial) execution of the remaining
  chunks with a :class:`DegradedExecutionWarning` and a telemetry event
  instead of failing the whole job.
* Remote-traceback chaining — a worker exception crossing the process
  boundary normally loses its traceback; :func:`attach_remote_traceback`
  (worker side) and :func:`ensure_remote_cause` (coordinator side) keep
  the formatted worker traceback on the exception chain as a
  :class:`RemoteTracebackError` cause, for every pool backend.

Determinism contract: nothing here touches experiment RNG state.  Retry
backoff jitter comes from :attr:`RetryPolicy.jitter_seed` (a fixed,
policy-owned entropy source), re-dispatch reuses the original
:class:`~repro.exec.backends.WorkUnit` objects, and results are still
merged in submission order — so ``records with faults == records
without`` holds bit-for-bit, which the ``chaos`` test tier pins.
"""

from __future__ import annotations

import logging
import time
import traceback
import warnings
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.telemetry.core import Telemetry

_LOG = logging.getLogger(__name__)


class TransientWorkerError(RuntimeError):
    """Base class of errors the retry layer treats as transient.

    Raise (or subclass) this from work functions to mark a failure as
    retry-safe; anything else is fatal unless listed in
    :attr:`RetryPolicy.retry_on`.
    """


class CorruptChunkError(TransientWorkerError):
    """A chunk's result payload failed transport validation.

    Always transient: the chunk re-executes with its original seed
    material, so the retried payload is bit-identical to what the
    corrupted transfer should have carried.
    """


class ChunkTimeoutError(RuntimeError):
    """A chunk exceeded the watchdog timeout on every allowed attempt."""


class DegradedExecutionWarning(UserWarning):
    """The pool backend fell back to inline (serial) chunk execution."""


class RemoteTracebackError(Exception):
    """Carrier of a worker-side formatted traceback.

    Installed as the ``__cause__`` of a re-raised chunk error so the
    remote traceback shows up in the coordinator-side report even
    though tracebacks do not survive pickling.
    """

    def __init__(self, formatted: str) -> None:
        super().__init__(formatted)
        self.formatted = formatted

    def __str__(self) -> str:
        return "\n" + self.formatted


#: Attribute carrying the formatted worker traceback across pickling
#: (``BaseException.__reduce__`` preserves instance ``__dict__``).
_REMOTE_TB_ATTR = "_repro_remote_traceback"


def format_remote_traceback(exc: BaseException) -> str:
    """The worker-side traceback of ``exc``, formatted for transport."""
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


def attach_remote_traceback(exc: BaseException) -> BaseException:
    """Stamp ``exc`` with its formatted traceback (worker side).

    The text rides on the instance ``__dict__`` — which exception
    pickling preserves, unlike ``__traceback__``/``__cause__`` — so the
    coordinator can rebuild the chain after transport.  Exceptions
    whose ``__dict__`` is unwritable (rare C extensions) pass through
    unchanged.
    """
    try:
        setattr(exc, _REMOTE_TB_ATTR, format_remote_traceback(exc))
    except (AttributeError, TypeError):  # pragma: no cover - exotic excs
        pass
    return exc


def ensure_remote_cause(exc: BaseException) -> BaseException:
    """Rebuild the remote-traceback cause chain (coordinator side).

    No-op for exceptions that never crossed a worker boundary or whose
    chain is already in place, so re-raising an already-chained error
    stays idempotent.
    """
    formatted = getattr(exc, _REMOTE_TB_ATTR, None)
    if formatted and not isinstance(exc.__cause__, RemoteTracebackError):
        exc.__cause__ = RemoteTracebackError(formatted)
    return exc


@dataclass(frozen=True)
class RetryPolicy:
    """Transient-failure handling for one execution batch.

    Args:
        max_attempts: Total attempts a chunk gets (1 = never retry
            worker errors; the default of the no-policy legacy path).
        base_delay_s: Backoff before the first retry.
        backoff_factor: Multiplier per additional retry.
        max_delay_s: Backoff ceiling.
        jitter: Maximum extra delay as a fraction of the backoff
            (``0.1`` = up to +10%), drawn deterministically from
            ``jitter_seed``.
        jitter_seed: Entropy of the **dedicated jitter stream** — never
            derived from the experiment seed, so retrying cannot
            perturb any experiment RNG (and two runs of the same
            policy back off identically).
        timeout_s: Per-chunk watchdog: once a chunk has been *running*
            this long it is abandoned and re-dispatched with the same
            seed material (``None`` disables the watchdog).
        retry_on: Extra exception types to classify as transient, on
            top of :class:`TransientWorkerError`,
            :class:`ConnectionResetError` and :class:`BrokenPipeError`.
        max_pool_respawns: Pool deaths (``BrokenProcessPool``) survived
            by respawning before degrading.
        degrade: After the respawn budget, fall back to inline serial
            execution (with :class:`DegradedExecutionWarning`) instead
            of failing the batch.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    jitter_seed: int = 0x5EED_FA11
    timeout_s: Optional[float] = None
    retry_on: Tuple[type, ...] = ()
    max_pool_respawns: int = 2
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.max_pool_respawns < 0:
            raise ValueError(
                f"max_pool_respawns must be >= 0, "
                f"got {self.max_pool_respawns}"
            )

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is retry-safe under this policy."""
        return isinstance(
            exc,
            (
                TransientWorkerError,
                ConnectionResetError,
                BrokenPipeError,
                *self.retry_on,
            ),
        )

    def delay_s(
        self, retries_so_far: int, jitter_rng: Optional[np.random.Generator]
    ) -> float:
        """Backoff before retry number ``retries_so_far + 1``."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.backoff_factor ** retries_so_far,
        )
        if self.jitter and jitter_rng is not None:
            delay *= 1.0 + self.jitter * float(jitter_rng.random())
        return delay

    def jitter_generator(self) -> np.random.Generator:
        """A fresh deterministic jitter stream (one per batch).

        Seeded from :attr:`jitter_seed` alone — completely independent
        of every experiment seed by construction.
        """
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.jitter_seed)
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for provenance/telemetry annotations."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "backoff_factor": self.backoff_factor,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
            "jitter_seed": self.jitter_seed,
            "timeout_s": self.timeout_s,
            "retry_on": [t.__name__ for t in self.retry_on],
            "max_pool_respawns": self.max_pool_respawns,
            "degrade": self.degrade,
        }


#: The policy the pool backends run under when none is given: no
#: worker-error retries, no watchdog (bit-compatible with the historic
#: fail-fast semantics) — but pool deaths are still survived, because a
#: ``BrokenProcessPool`` half-way through an hour-long suite should
#: never have been fatal.
LEGACY_POLICY = RetryPolicy(max_attempts=1, timeout_s=None)


@dataclass
class CorruptChunkPayload:
    """Sentinel a fault plan substitutes for a chunk's real payload.

    Models a corrupted transport frame: the dispatcher's validation
    rejects it (:class:`CorruptChunkError`) and the chunk re-executes.
    """

    unit_indices: Tuple[int, ...] = ()
    note: str = "injected payload corruption"


class ChunkDispatcher:
    """Submit/collect engine with retry, watchdog and degradation.

    One instance serves one backend ``run()`` call.  The caller
    collects chunks strictly in submission order via
    :meth:`collect`; everything fault-tolerant happens inside.

    Args:
        make_executor: Zero-arg factory for a fresh worker pool (used
            once up front and again on every pool respawn).
        chunks: The submission-ordered chunk list (never mutated; a
            re-dispatched chunk reuses these exact
            :class:`~repro.exec.backends.WorkUnit` objects and
            therefore their original seed material).
        submit_chunk: ``(pool, chunk, attempt) -> Future`` — how one
            chunk is put on a pool (the backend chooses the worker
            entry point and threads the fault plan through).
        run_inline: ``(chunk, attempt) -> payload`` — coordinator-side
            execution of one chunk, used by the degradation ladder.
        policy: The :class:`RetryPolicy` in force.
        poll_interval: Seconds between cancellation/watchdog checks
            while waiting on an in-flight chunk.
        cancel: Optional cooperative-cancellation event
            (``is_set()`` protocol).
        telemetry: The coordinator's active telemetry, if any (retry
            counters and worker-delta merging).
        validate: ``payload -> pairs`` — transport validation +
            telemetry unpacking; must raise :class:`CorruptChunkError`
            on a corrupted payload.
        can_respawn: Whether pool death is survivable by respawning
            (process pools; thread pools never break this way).
        done: Shared one-element completed-unit counter (cancellation
            messages).
        total_units: Total units in the batch (cancellation messages).
    """

    def __init__(
        self,
        make_executor: Callable[[], Any],
        chunks: Sequence[Sequence[Any]],
        submit_chunk: Callable[[Any, Sequence[Any], int], Future],
        run_inline: Callable[[Sequence[Any], int], Any],
        validate: Callable[[Any], List[Tuple[int, Any]]],
        policy: RetryPolicy,
        poll_interval: float,
        cancel: Optional[Any],
        telemetry: Optional[Telemetry],
        can_respawn: bool,
        done: List[int],
        total_units: int,
    ) -> None:
        self._make_executor = make_executor
        self._chunks = chunks
        self._submit_chunk = submit_chunk
        self._run_inline = run_inline
        self._validate = validate
        self._policy = policy
        self._poll_interval = poll_interval
        self._cancel = cancel
        self._telemetry = telemetry
        self._can_respawn = can_respawn
        self._done = done
        self._total_units = total_units
        self._jitter_rng: Optional[np.random.Generator] = (
            policy.jitter_generator() if policy.max_attempts > 1 else None
        )
        self._attempts = [0] * len(chunks)
        self._retries = [0] * len(chunks)
        self._pool_deaths = 0
        self._degraded = False
        self._position = 0
        self._pool: Optional[Any] = make_executor()
        self._futures: Dict[int, Future] = {}
        for index in range(len(chunks)):
            self._submit(index)

    # ---- submission --------------------------------------------------

    def _submit(self, index: int) -> None:
        self._futures[index] = self._submit_chunk(
            self._pool, self._chunks[index], self._attempts[index]
        )

    # ---- public collection loop --------------------------------------

    def collect(self, index: int) -> List[Tuple[int, Any]]:
        """The ``(unit index, result)`` pairs of chunk ``index``.

        Must be called for ``index = 0, 1, ...`` in order (the caller's
        submission-order merge); blocks until the chunk has a valid
        payload, retrying/re-dispatching per the policy on the way.
        """
        self._position = index
        policy = self._policy
        wait_t0 = time.perf_counter()
        while True:
            if self._degraded:
                pairs = self._collect_inline(index)
                break
            status, value = self._await(index)
            if status == "ok":
                try:
                    pairs = self._validate(value)
                    break
                except CorruptChunkError as exc:
                    status, value = "error", exc
            if status == "error":
                exc = value
                if (
                    policy.is_transient(exc)
                    and self._attempts[index] + 1 < policy.max_attempts
                ):
                    self._backoff(index, exc)
                    self._attempts[index] += 1
                    try:
                        self._submit(index)
                    except BrokenExecutor as pool_exc:
                        # The pool died under an unrelated in-flight
                        # chunk; surfaces here as a failed resubmit.
                        self._handle_pool_death(index, pool_exc)
                    continue
                raise ensure_remote_cause(exc)
            if status == "timeout":
                self._metric("retry.chunk_timeouts")
                _LOG.warning(
                    "chunk %d exceeded the %.3gs watchdog (attempt %d)",
                    index, policy.timeout_s, self._attempts[index] + 1,
                )
                if self._attempts[index] + 1 >= policy.max_attempts:
                    raise ChunkTimeoutError(
                        f"chunk {index} still running after "
                        f"{policy.timeout_s}s on each of "
                        f"{policy.max_attempts} attempt(s)"
                    )
                self._attempts[index] += 1
                self._metric("retry.attempts")
                self._redispatch_after_timeout(index)
                continue
            if status == "broken":
                self._handle_pool_death(index, value)
                continue
        if self._telemetry is not None:
            self._telemetry.metrics.observe(
                "exec.chunk_wait_ms",
                (time.perf_counter() - wait_t0) * 1000.0,
            )
        return pairs

    # ---- waiting -----------------------------------------------------

    def _await(self, index: int) -> Tuple[str, Any]:
        """Outcome of chunk ``index``'s current future.

        Returns ``("ok", payload)``, ``("error", exc)``,
        ``("timeout", None)`` once the watchdog trips, or
        ``("broken", exc)`` when the pool itself died.  Raises
        :class:`~repro.exec.backends.ExecutionCancelled` on the
        cooperative cancel event.
        """
        from repro.exec.backends import ExecutionCancelled

        future = self._futures[index]
        timeout_s = self._policy.timeout_s
        poll = (
            self._poll_interval
            if (self._cancel is not None or timeout_s is not None)
            else None
        )
        running_since: Optional[float] = None
        while True:
            if self._cancel is not None and self._cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {self._done[0]} of "
                    f"{self._total_units} units"
                )
            try:
                return "ok", future.result(timeout=poll)
            except FutureTimeoutError:
                if timeout_s is None:
                    continue
                # The watchdog clock starts when the chunk actually
                # starts running — time spent queued behind other
                # chunks never counts against it.
                if not future.running():
                    continue
                now = time.monotonic()
                if running_since is None:
                    running_since = now
                elif now - running_since >= timeout_s:
                    return "timeout", None
            except BrokenExecutor as exc:
                return "broken", exc
            except BaseException as exc:
                return "error", exc

    # ---- retry plumbing ----------------------------------------------

    def _backoff(self, index: int, exc: BaseException) -> None:
        delay = self._policy.delay_s(self._retries[index], self._jitter_rng)
        self._retries[index] += 1
        self._metric("retry.attempts")
        self._observe("retry.backoff_ms", delay * 1000.0)
        _LOG.warning(
            "transient failure in chunk %d (%s); retrying in %.3gs "
            "(attempt %d of %d)",
            index, exc, delay,
            self._attempts[index] + 2, self._policy.max_attempts,
        )
        if delay > 0:
            time.sleep(delay)

    def _redispatch_after_timeout(self, index: int) -> None:
        """Abandon a hung chunk and run it again, same seeds."""
        self._futures[index].cancel()
        if self._can_respawn:
            # Process pools: terminate the hung worker with the pool
            # and resubmit every uncollected chunk to a fresh one.
            self._respawn_pool()
        else:
            # Thread pools: the hung thread cannot be killed — it
            # keeps its slot until it returns (results discarded) and
            # the retry lands on another worker.
            self._submit(index)

    def _handle_pool_death(self, index: int, exc: BaseException) -> None:
        self._pool_deaths += 1
        # Every uncollected chunk is about to be re-dispatched, so each
        # is charged an attempt — which also ages out attempt-gated
        # injected faults no matter which in-flight chunk actually
        # killed the pool.
        for position in range(index, len(self._chunks)):
            self._attempts[position] += 1
        self._metric("retry.pool_respawns")
        self._event(
            "exec.pool_death",
            chunk=index,
            deaths=self._pool_deaths,
            error=repr(exc),
        )
        if self._pool_deaths > self._policy.max_pool_respawns:
            if not self._policy.degrade:
                raise ensure_remote_cause(exc)
            self._degrade(exc)
            return
        _LOG.warning(
            "worker pool died (%s); respawning (%d of %d) and "
            "re-dispatching %d in-flight chunk(s)",
            exc, self._pool_deaths, self._policy.max_pool_respawns,
            len(self._chunks) - index,
        )
        self._respawn_pool()

    def _respawn_pool(self) -> None:
        """Replace the pool and resubmit every uncollected chunk.

        Re-dispatched chunks keep their original work units (and
        therefore seed material) and are still collected in submission
        order, so the merge stays deterministic.
        """
        self._shutdown_pool(abandon=True)
        self._pool = self._make_executor()
        for position in range(self._position, len(self._chunks)):
            self._submit(position)

    def _degrade(self, exc: BaseException) -> None:
        self._degraded = True
        self._shutdown_pool(abandon=True)
        self._pool = None
        self._metric("retry.degraded")
        self._event(
            "exec.degraded",
            reason=repr(exc),
            pool_deaths=self._pool_deaths,
            remaining_chunks=len(self._chunks) - self._position,
        )
        message = (
            f"worker pool died {self._pool_deaths} times (limit "
            f"{self._policy.max_pool_respawns}); degrading to inline "
            f"serial execution for the remaining "
            f"{len(self._chunks) - self._position} chunk(s) — results "
            f"are unaffected, wall-clock will suffer"
        )
        _LOG.error("%s", message)
        warnings.warn(message, DegradedExecutionWarning, stacklevel=4)

    def _collect_inline(self, index: int) -> List[Tuple[int, Any]]:
        """Degraded path: run the chunk in the coordinator, with the
        same retry classification as the pooled path."""
        from repro.exec.backends import ExecutionCancelled

        policy = self._policy
        while True:
            if self._cancel is not None and self._cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {self._done[0]} of "
                    f"{self._total_units} units"
                )
            try:
                return self._validate(
                    self._run_inline(
                        self._chunks[index], self._attempts[index]
                    )
                )
            except Exception as exc:
                if (
                    policy.is_transient(exc)
                    and self._attempts[index] + 1 < policy.max_attempts
                ):
                    self._backoff(index, exc)
                    self._attempts[index] += 1
                    continue
                raise ensure_remote_cause(exc)

    # ---- lifecycle ---------------------------------------------------

    def abort(self) -> None:
        """Fail fast: drop chunks that have not started (error path)."""
        for future in self._futures.values():
            future.cancel()
        self._shutdown_pool(abandon=True)
        self._pool = None

    def shutdown(self) -> None:
        """Normal-path cleanup: wait for stragglers, release the pool."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def _shutdown_pool(self, abandon: bool) -> None:
        pool = self._pool
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        if abandon:
            # Best effort: hung/doomed worker *processes* are killed
            # outright so a watchdog respawn does not leak them (thread
            # workers cannot be killed and just drain on their own).
            processes = getattr(pool, "_processes", None)
            if processes:
                for process in list(processes.values()):
                    try:
                        process.terminate()
                    except Exception:  # pragma: no cover - defensive
                        pass

    # ---- telemetry ---------------------------------------------------

    def _metric(self, name: str, value: float = 1.0) -> None:
        if self._telemetry is not None:
            self._telemetry.metrics.inc(name, value)

    def _observe(self, name: str, value: float) -> None:
        if self._telemetry is not None:
            self._telemetry.metrics.observe(name, value)

    def _event(self, kind: str, **payload: Any) -> None:
        if self._telemetry is not None:
            self._telemetry.emit_event(kind, **payload)
