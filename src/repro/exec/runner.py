"""The parallel experiment runner.

:class:`ExperimentRunner` fans independent work units out over a
pluggable backend and streams the results back **in deterministic
submission order**.  Combined with the central seed-spawning discipline
of :mod:`repro.exec.seeding`, every backend — including ``process`` —
produces bit-identical results for the same root seed.
"""

from __future__ import annotations

import logging
import math
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exec.backends import (
    ExecutionBackend,
    WorkUnit,
    default_chunk_size,
    get_backend,
)
from repro.exec.resilience import RetryPolicy
from repro.exec.seeding import SeedLike, as_seed_sequence, spawn_sequences
from repro.telemetry.core import current as _current_telemetry

_LOG = logging.getLogger(__name__)


def _call_with_generator(
    fn: Callable[..., Any], seq: np.random.SeedSequence, args: Tuple[Any, ...]
) -> Any:
    """Build the unit's generator worker-side and invoke ``fn``.

    Module-level so the ``process`` backend can pickle it.
    """
    return fn(*args, np.random.default_rng(seq))


def validate_batch_args(
    replications: Any, batch_size: Optional[Any] = None
) -> None:
    """Shared argument validation for every batched entry point.

    ``SANSimulator.batch``, ``AttackCampaign.run_batch*`` and
    :meth:`ExperimentRunner.run_batched_replications` all funnel through
    this so their error messages stay consistent.

    Raises:
        TypeError: If ``replications`` or ``batch_size`` is not an
            integer (bools are rejected too).
        ValueError: If ``replications < 1`` or ``batch_size < 1``.
    """
    if isinstance(replications, bool) or not isinstance(
        replications, (int, np.integer)
    ):
        raise TypeError(
            f"replications must be an integer, got {replications!r}"
        )
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if batch_size is None:
        return
    if isinstance(batch_size, bool) or not isinstance(
        batch_size, (int, np.integer)
    ):
        raise TypeError(f"batch_size must be an integer, got {batch_size!r}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")


def batch_unit_sizes(replications: int, batch_size: int) -> List[int]:
    """Lane counts per batch unit: full batches plus a ragged tail."""
    sizes = [batch_size] * (replications // batch_size)
    remainder = replications % batch_size
    if remainder:
        sizes.append(remainder)
    return sizes


class ExperimentRunner:
    """Deterministic fan-out of independent experiment work units.

    Args:
        backend: ``"serial"`` (default), ``"thread"``, ``"process"``, or
            an :class:`~repro.exec.backends.ExecutionBackend` instance.
        n_workers: Pool width for parallel backends; defaults to
            ``os.cpu_count()``.  Ignored by ``serial``.
        chunk_size: Units dispatched per pool task.  Defaults to
            ``ceil(n_units / (4 * n_workers))`` — big enough to amortise
            dispatch overhead, small enough to load-balance.  Chunking
            **never** affects results, only scheduling.
        retry: Optional :class:`~repro.exec.resilience.RetryPolicy`
            governing transient-failure retries, the per-chunk watchdog
            and pool-death handling.  Retried units re-run with their
            original spawned seeds, so resilience never affects
            results.  ``None`` keeps legacy fail-fast worker-error
            semantics (pool deaths are still survived).
        fault_plan: Optional :class:`~repro.faults.FaultPlan` injecting
            seeded faults at the execution gates — chaos testing only,
            never part of the spec digest.

    Guarantees:

    * **Ordered results** — ``map``/``run_replications`` return results
      in submission order regardless of completion order.
    * **Backend-invariant randomness** — replication ``i`` draws from a
      generator seeded by the ``i``-th child of the root
      :class:`~numpy.random.SeedSequence`, spawned centrally before
      dispatch.  ``serial``, ``thread`` and ``process`` therefore yield
      bit-identical records for the same seed, as do different
      ``n_workers``/``chunk_size`` choices.

    Choosing a backend / worker count:

    * Pure-Python simulation loops (attack campaigns, SAN runs) are
      CPU-bound: use ``process`` with ``n_workers`` ≈ physical cores.
    * Latency-bound or GIL-releasing units: use ``thread``; workers can
      exceed core count.
    * Debugging, tiny batches, or non-picklable work (closures over a
      shared generator): use ``serial``.

    Example:
        >>> import numpy as np
        >>> runner = ExperimentRunner(backend="thread", n_workers=2)
        >>> draws = runner.run_replications(
        ...     lambda rng: float(rng.random()), 4, seed=7
        ... )
        >>> draws == ExperimentRunner().run_replications(
        ...     lambda rng: float(rng.random()), 4, seed=7
        ... )
        True
    """

    def __init__(
        self,
        backend: Union[str, ExecutionBackend] = "serial",
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.backend = get_backend(backend)
        self.n_workers = n_workers or (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.retry = retry
        self.fault_plan = fault_plan

    @property
    def backend_name(self) -> str:
        """The resolved backend's registry name."""
        return self.backend.name

    def map(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[Tuple[Any, ...]],
        on_result: Optional[Callable[[int, Any], None]] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
    ) -> List[Any]:
        """Run ``fn(*args)`` for every argument tuple, results in order.

        With the ``process`` backend, ``fn``, the arguments and the
        results must all be picklable.

        Args:
            fn: The work function.
            args_list: One positional-argument tuple per unit.
            on_result: Optional progress hook, called in the
                coordinating thread as ``on_result(index, result)`` for
                every completed unit (pool backends call it as chunks
                are collected).
            cancel: Optional cancellation event (``is_set()`` protocol,
                e.g. :class:`threading.Event`); once set, the batch
                raises :class:`~repro.exec.backends.ExecutionCancelled`
                instead of completing.  Neither hook affects results.
            collect: With ``collect=False`` results flow only through
                ``on_result`` (still in submission order) and an empty
                list is returned — the coordinator holds no per-unit
                state, which is what keeps million-unit streaming
                batches on bounded memory.
        """
        units = [
            WorkUnit(index=i, fn=fn, args=tuple(args))
            for i, args in enumerate(args_list)
        ]
        chunk = self.chunk_size or default_chunk_size(
            len(units), self.n_workers
        )
        n_chunks = math.ceil(len(units) / chunk) if units else 0
        _LOG.debug(
            "dispatching %d units in %d chunks on %s (%d workers)",
            len(units), n_chunks, self.backend.name, self.n_workers,
        )
        telemetry = _current_telemetry()
        if telemetry is None:
            return self.backend.run(
                units,
                self.n_workers,
                chunk,
                on_result=on_result,
                cancel=cancel,
                collect=collect,
                retry=self.retry,
                fault_plan=self.fault_plan,
            )
        with telemetry.span("exec.map"):
            metrics = telemetry.metrics
            metrics.inc("exec.dispatches")
            metrics.inc("exec.units", len(units))
            metrics.inc("exec.chunks", n_chunks)
            metrics.gauge("exec.n_workers", self.n_workers)
            return self.backend.run(
                units,
                self.n_workers,
                chunk,
                on_result=on_result,
                cancel=cancel,
                collect=collect,
                telemetry=telemetry,
                retry=self.retry,
                fault_plan=self.fault_plan,
            )

    def run_replications(
        self,
        fn: Callable[..., Any],
        replications: int,
        seed: SeedLike = None,
        common_args: Tuple[Any, ...] = (),
        on_result: Optional[Callable[[int, Any], None]] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
    ) -> List[Any]:
        """Run ``replications`` independent calls of ``fn``.

        ``fn`` is invoked as ``fn(*common_args, rng)`` where ``rng`` is
        a fresh :class:`~numpy.random.Generator` seeded from the
        ``i``-th spawned child of ``seed`` — see the class docstring for
        the invariance guarantees.

        Args:
            fn: Replication body; receives the generator as its last
                positional argument.
            replications: Number of independent replications.
            seed: Root seed (``None``, int, ``SeedSequence``, or a
                ``Generator`` to derive the root from).
            common_args: Leading arguments passed to every call (must be
                picklable for the ``process`` backend).
            on_result / cancel / collect: Progress, cancellation and
                streaming knobs — see :meth:`map`.

        Raises:
            ValueError: If ``replications < 1``.
        """
        sequences = spawn_sequences(as_seed_sequence(seed), replications)
        return self.map(
            _call_with_generator,
            [(fn, seq, common_args) for seq in sequences],
            on_result=on_result,
            cancel=cancel,
            collect=collect,
        )

    def run_batched_replications(
        self,
        fn: Callable[..., Any],
        replications: int,
        batch_size: int,
        seed: SeedLike = None,
        common_args: Tuple[Any, ...] = (),
        on_result: Optional[Callable[[int, Any], None]] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
    ) -> List[Any]:
        """Run ``replications`` lanes as batch work units of ``batch_size``.

        The replication count is split into ``ceil(R / batch_size)``
        units — full batches plus a ragged tail — and each unit receives
        its own centrally-spawned seed, exactly like
        :meth:`run_replications` does per replication.  ``fn`` is
        invoked as ``fn(*common_args, size, rng)`` and should advance
        ``size`` lanes on the unit's generator, returning their results
        as a sequence.  Batch units compose with every backend and with
        the ``on_result``/``cancel``/``collect=False`` streaming knobs
        (hooks observe one *unit* — i.e. one batch — per call).

        With ``batch_size=1`` the spawned seed per unit is identical to
        :meth:`run_replications`'s seed per replication, which is what
        lets single-lane batch engines pin bit-exactness against the
        scalar path.

        Raises:
            TypeError: If ``replications`` or ``batch_size`` is not an
                integer.
            ValueError: If either is ``< 1``.
        """
        validate_batch_args(replications, batch_size)
        sizes = batch_unit_sizes(replications, batch_size)
        sequences = spawn_sequences(as_seed_sequence(seed), len(sizes))
        return self.map(
            _call_with_generator,
            [
                (fn, seq, (*common_args, size))
                for size, seq in zip(sizes, sequences)
            ],
            on_result=on_result,
            cancel=cancel,
            collect=collect,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExperimentRunner(backend={self.backend.name!r}, "
            f"n_workers={self.n_workers}, chunk_size={self.chunk_size})"
        )
