"""repro.exec — deterministic parallel execution of experiment batches.

The subsystem has three layers:

* :mod:`repro.exec.seeding` — central ``SeedSequence.spawn`` discipline
  that makes randomness a pure function of ``(root seed, unit index)``;
* :mod:`repro.exec.backends` — ``serial`` / ``thread`` / ``process``
  execution strategies with order-preserving result collection;
* :mod:`repro.exec.runner` — :class:`ExperimentRunner`, the façade the
  measurement, campaign and SAN batch entry points build on;
* :mod:`repro.exec.resilience` — :class:`RetryPolicy`, the per-chunk
  watchdog and the pool-respawn/degradation ladder layered under the
  pool backends (retries re-use the originally spawned seeds, so fault
  tolerance never changes results).

See the "Parallel execution" and "Fault tolerance & chaos testing"
sections of the README for guidance on choosing a backend, worker
count and retry policy.
"""

from repro.exec.backends import (
    ExecutionBackend,
    ExecutionCancelled,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkUnit,
    available_backends,
    get_backend,
)
from repro.exec.resilience import (
    ChunkTimeoutError,
    CorruptChunkError,
    DegradedExecutionWarning,
    RemoteTracebackError,
    RetryPolicy,
    TransientWorkerError,
)
from repro.exec.runner import (
    ExperimentRunner,
    batch_unit_sizes,
    validate_batch_args,
)
from repro.exec.seeding import (
    SeedLike,
    as_seed_sequence,
    replication_generators,
    sequence_state,
    spawn_sequences,
)

__all__ = [
    "ChunkTimeoutError",
    "CorruptChunkError",
    "DegradedExecutionWarning",
    "ExecutionBackend",
    "ExecutionCancelled",
    "ExperimentRunner",
    "ProcessBackend",
    "RemoteTracebackError",
    "RetryPolicy",
    "SeedLike",
    "SerialBackend",
    "ThreadBackend",
    "TransientWorkerError",
    "WorkUnit",
    "as_seed_sequence",
    "available_backends",
    "batch_unit_sizes",
    "validate_batch_args",
    "get_backend",
    "replication_generators",
    "sequence_state",
    "spawn_sequences",
]
