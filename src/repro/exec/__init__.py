"""repro.exec — deterministic parallel execution of experiment batches.

The subsystem has three layers:

* :mod:`repro.exec.seeding` — central ``SeedSequence.spawn`` discipline
  that makes randomness a pure function of ``(root seed, unit index)``;
* :mod:`repro.exec.backends` — ``serial`` / ``thread`` / ``process``
  execution strategies with order-preserving result collection;
* :mod:`repro.exec.runner` — :class:`ExperimentRunner`, the façade the
  measurement, campaign and SAN batch entry points build on.

See the "Parallel execution" section of the README for guidance on
choosing a backend and worker count.
"""

from repro.exec.backends import (
    ExecutionBackend,
    ExecutionCancelled,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkUnit,
    available_backends,
    get_backend,
)
from repro.exec.runner import (
    ExperimentRunner,
    batch_unit_sizes,
    validate_batch_args,
)
from repro.exec.seeding import (
    SeedLike,
    as_seed_sequence,
    replication_generators,
    sequence_state,
    spawn_sequences,
)

__all__ = [
    "ExecutionBackend",
    "ExecutionCancelled",
    "ExperimentRunner",
    "ProcessBackend",
    "SeedLike",
    "SerialBackend",
    "ThreadBackend",
    "WorkUnit",
    "as_seed_sequence",
    "available_backends",
    "batch_unit_sizes",
    "validate_batch_args",
    "get_backend",
    "replication_generators",
    "sequence_state",
    "spawn_sequences",
]
