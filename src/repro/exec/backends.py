"""Execution backends for the experiment runner.

A backend takes an ordered list of :class:`WorkUnit` and returns the
results **in submission order**, however the units were actually
scheduled.  Three backends cover the practical space:

* :class:`SerialBackend` — in-process ``for`` loop; zero overhead, the
  reference semantics every other backend must reproduce.
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``;
  best for latency-bound units (network/file waits) or NumPy-heavy code
  that releases the GIL.  No pickling requirements.
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``;
  true CPU parallelism for pure-Python simulation loops.  Work
  functions, their arguments and their results must be picklable
  (module-level functions and dataclass-style objects are; closures and
  lambdas are not).

Because seeding is decided *before* dispatch (see
:mod:`repro.exec.seeding`), every backend produces bit-identical results
for the same work list.
"""

from __future__ import annotations

import math
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple, Union


@dataclass(frozen=True)
class WorkUnit:
    """One independent unit of work: ``fn(*args)`` tagged with its slot.

    Attributes:
        index: Position of this unit's result in the output list.
        fn: The work function.
        args: Positional arguments for ``fn``.
    """

    index: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()


def run_chunk(chunk: Sequence[WorkUnit]) -> List[Tuple[int, Any]]:
    """Execute a chunk of units sequentially (worker-side entry point).

    Module-level so :class:`ProcessBackend` can pickle it.
    """
    return [(unit.index, unit.fn(*unit.args)) for unit in chunk]


def make_chunks(
    units: Sequence[WorkUnit], chunk_size: int
) -> List[List[WorkUnit]]:
    """Split ``units`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(units[i : i + chunk_size])
        for i in range(0, len(units), chunk_size)
    ]


def default_chunk_size(n_units: int, n_workers: int) -> int:
    """A chunk size giving each worker ~4 chunks (amortises dispatch
    overhead while keeping the pool load-balanced)."""
    if n_units <= 0:
        return 1
    return max(1, math.ceil(n_units / (4 * max(1, n_workers))))


class ExecutionBackend:
    """Interface: run work units, return results in submission order."""

    #: Registry key (``serial`` / ``thread`` / ``process``).
    name: str = "abstract"
    #: Whether units are shipped to other processes (pickling required).
    requires_pickling: bool = False

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
    ) -> List[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """The reference backend: an in-order, in-process loop."""

    name = "serial"

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
    ) -> List[Any]:
        return [unit.fn(*unit.args) for unit in units]


class _PoolBackend(ExecutionBackend):
    """Shared chunk-submit/collect logic for executor-based backends."""

    def _make_executor(self, n_workers: int) -> Executor:
        raise NotImplementedError

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
    ) -> List[Any]:
        if not units:
            return []
        chunks = make_chunks(units, chunk_size)
        collected: Dict[int, Any] = {}
        with self._make_executor(n_workers) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            try:
                for future in futures:
                    for index, result in future.result():
                        collected[index] = result
            except BaseException:
                # Fail fast: drop chunks that have not started yet so a
                # doomed batch does not run to completion first.
                for future in futures:
                    future.cancel()
                raise
        return [collected[unit.index] for unit in units]


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor`` fan-out (shared memory, no pickling)."""

    name = "thread"

    def _make_executor(self, n_workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-exec"
        )


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor`` fan-out (true CPU parallelism)."""

    name = "process"
    requires_pickling = True

    def _make_executor(self, n_workers: int) -> Executor:
        return ProcessPoolExecutor(max_workers=n_workers)


_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> List[str]:
    """Registered backend names, serial first."""
    return list(_REGISTRY)


def get_backend(
    backend: Union[str, ExecutionBackend]
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        ValueError: For an unknown backend name.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = _REGISTRY[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(_REGISTRY)} or an ExecutionBackend instance"
        ) from None
    return factory()
