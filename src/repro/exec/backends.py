"""Execution backends for the experiment runner.

A backend takes an ordered list of :class:`WorkUnit` and returns the
results **in submission order**, however the units were actually
scheduled.  Three backends cover the practical space:

* :class:`SerialBackend` — in-process ``for`` loop; zero overhead, the
  reference semantics every other backend must reproduce.
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``;
  best for latency-bound units (network/file waits) or NumPy-heavy code
  that releases the GIL.  No pickling requirements.
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``;
  true CPU parallelism for pure-Python simulation loops.  Work
  functions, their arguments and their results must be picklable
  (module-level functions and dataclass-style objects are; closures and
  lambdas are not).

Because seeding is decided *before* dispatch (see
:mod:`repro.exec.seeding`), every backend produces bit-identical results
for the same work list.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.core import Telemetry

#: Seconds between cancellation checks while waiting on an in-flight
#: chunk (pool backends only; the serial backend checks every unit).
_CANCEL_POLL_S = 0.05

#: ``on_result`` callback signature: ``(unit index, unit result)``.
ResultCallback = Callable[[int, Any], None]


class ExecutionCancelled(RuntimeError):
    """A batch was interrupted by its cancellation event.

    Raised by every backend when the ``cancel`` event passed to
    :meth:`ExecutionBackend.run` is set mid-batch.  Cancellation is
    cooperative: the serial backend stops before the next unit, the pool
    backends stop collecting and drop chunks that have not started
    (chunks already running finish in the background but their results
    are discarded).
    """


@dataclass(frozen=True)
class WorkUnit:
    """One independent unit of work: ``fn(*args)`` tagged with its slot.

    Attributes:
        index: Position of this unit's result in the output list.
        fn: The work function.
        args: Positional arguments for ``fn``.
    """

    index: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()


def run_chunk(chunk: Sequence[WorkUnit]) -> List[Tuple[int, Any]]:
    """Execute a chunk of units sequentially (worker-side entry point).

    Module-level so :class:`ProcessBackend` can pickle it.
    """
    return [(unit.index, unit.fn(*unit.args)) for unit in chunk]


def run_chunk_captured(
    chunk: Sequence[WorkUnit], spec: Dict[str, Any]
) -> Tuple[List[Tuple[int, Any]], Dict[str, Any]]:
    """Execute a chunk under a fresh worker-side telemetry capture.

    Used by the pool backends when the coordinator has telemetry
    active: the chunk runs with its own :class:`Telemetry` installed
    (spans/metrics recorded by the work functions land there) and the
    serialized delta travels back with the results for the coordinator
    to merge in submission order.  Telemetry never touches RNG state,
    so the results are bit-identical to the uncaptured path.

    Module-level so :class:`ProcessBackend` can pickle it.
    """
    telemetry = Telemetry(profile=spec.get("profile"))
    with telemetry.activate(), telemetry.profile_scope():
        with telemetry.tracer.span("exec.chunk"):
            pairs = [(unit.index, unit.fn(*unit.args)) for unit in chunk]
    return pairs, telemetry.delta()


def make_chunks(
    units: Sequence[WorkUnit], chunk_size: int
) -> List[List[WorkUnit]]:
    """Split ``units`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(units[i : i + chunk_size])
        for i in range(0, len(units), chunk_size)
    ]


def default_chunk_size(n_units: int, n_workers: int) -> int:
    """A chunk size giving each worker ~4 chunks (amortises dispatch
    overhead while keeping the pool load-balanced)."""
    if n_units <= 0:
        return 1
    return max(1, math.ceil(n_units / (4 * max(1, n_workers))))


class ExecutionBackend:
    """Interface: run work units, return results in submission order.

    ``on_result`` (optional) is invoked in the coordinating thread as
    ``on_result(index, result)`` once per completed unit — pool backends
    call it as completed chunks are collected, so callers can track
    partial progress of a long batch.  ``cancel`` (optional) is any
    object with an ``is_set()`` method (e.g. :class:`threading.Event`);
    once set, the backend raises :class:`ExecutionCancelled` instead of
    finishing the batch.  Neither hook ever affects the results of units
    that do complete.

    ``collect=False`` turns the batch into a pure stream: results are
    delivered only through ``on_result`` (still in submission order) and
    the return value is an empty list.  This is what bounds the
    coordinator's memory on million-unit streaming campaigns — nothing
    accumulates per unit.

    ``telemetry`` (optional) is the coordinator's active
    :class:`~repro.telemetry.Telemetry`.  Pool backends then dispatch
    chunks through :func:`run_chunk_captured`, record per-chunk wait
    times (``exec.chunk_wait_ms``) and fold each worker delta back in
    submission order; the serial backend applies the opt-in profiler
    in-process.  ``None`` (the default) is the untouched fast path.
    """

    #: Registry key (``serial`` / ``thread`` / ``process``).
    name: str = "abstract"
    #: Whether units are shipped to other processes (pickling required).
    requires_pickling: bool = False

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
        on_result: Optional[ResultCallback] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """The reference backend: an in-order, in-process loop."""

    name = "serial"

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
        on_result: Optional[ResultCallback] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        # Serial units record spans/metrics inline on the already-active
        # telemetry; only the opt-in profiler needs wrapping here.
        if telemetry is not None and telemetry.profile is not None:
            with telemetry.profile_scope():
                return self._run_units(units, on_result, cancel, collect)
        return self._run_units(units, on_result, cancel, collect)

    @staticmethod
    def _run_units(
        units: Sequence[WorkUnit],
        on_result: Optional[ResultCallback],
        cancel: Optional[Any],
        collect: bool,
    ) -> List[Any]:
        if on_result is None and cancel is None and collect:
            return [unit.fn(*unit.args) for unit in units]
        results: List[Any] = []
        done = 0
        for unit in units:
            if cancel is not None and cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {done} of "
                    f"{len(units)} units"
                )
            result = unit.fn(*unit.args)
            done += 1
            if collect:
                results.append(result)
            if on_result is not None:
                on_result(unit.index, result)
        return results


class _PoolBackend(ExecutionBackend):
    """Shared chunk-submit/collect logic for executor-based backends."""

    def _make_executor(self, n_workers: int) -> Executor:
        raise NotImplementedError

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
        on_result: Optional[ResultCallback] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        if not units:
            return []
        chunks = make_chunks(units, chunk_size)
        spec = telemetry.worker_spec() if telemetry is not None else None
        collected: Dict[int, Any] = {}
        done = [0]
        pool = self._make_executor(n_workers)
        try:
            if spec is None:
                futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            else:
                futures = [
                    pool.submit(run_chunk_captured, chunk, spec)
                    for chunk in chunks
                ]
            try:
                for future in futures:
                    if telemetry is None:
                        pairs = self._collect(future, cancel, done, units)
                    else:
                        wait_t0 = time.perf_counter()
                        pairs, delta = self._collect(
                            future, cancel, done, units
                        )
                        telemetry.metrics.observe(
                            "exec.chunk_wait_ms",
                            (time.perf_counter() - wait_t0) * 1000.0,
                        )
                        # Submission-order merge keeps the span tree and
                        # event order deterministic for a fixed chunking.
                        telemetry.merge_delta(delta)
                    for index, result in pairs:
                        done[0] += 1
                        if collect:
                            collected[index] = result
                        if on_result is not None:
                            on_result(index, result)
            except BaseException:
                # Fail fast: drop chunks that have not started yet so a
                # doomed batch does not run to completion first, and do
                # not block on chunks already in flight.
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                raise
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        if not collect:
            return []
        return [collected[unit.index] for unit in units]

    @staticmethod
    def _collect(
        future: Any,
        cancel: Optional[Any],
        done: List[int],
        units: Sequence[WorkUnit],
    ) -> List[Tuple[int, Any]]:
        """One chunk's ``(index, result)`` pairs, polling for cancel.

        Without a cancel event this is a plain blocking wait; with one,
        the wait polls so a cancellation interrupts the batch within
        ``_CANCEL_POLL_S`` even while a long chunk is still running.
        """
        if cancel is None:
            return future.result()
        while True:
            if cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {done[0]} of "
                    f"{len(units)} units"
                )
            try:
                return future.result(timeout=_CANCEL_POLL_S)
            except FutureTimeoutError:
                continue


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor`` fan-out (shared memory, no pickling)."""

    name = "thread"

    def _make_executor(self, n_workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-exec"
        )


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor`` fan-out (true CPU parallelism)."""

    name = "process"
    requires_pickling = True

    def _make_executor(self, n_workers: int) -> Executor:
        return ProcessPoolExecutor(max_workers=n_workers)


_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> List[str]:
    """Registered backend names, serial first."""
    return list(_REGISTRY)


def get_backend(
    backend: Union[str, ExecutionBackend]
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        ValueError: For an unknown backend name.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = _REGISTRY[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(_REGISTRY)} or an ExecutionBackend instance"
        ) from None
    return factory()
