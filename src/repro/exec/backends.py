"""Execution backends for the experiment runner.

A backend takes an ordered list of :class:`WorkUnit` and returns the
results **in submission order**, however the units were actually
scheduled.  Three backends cover the practical space:

* :class:`SerialBackend` — in-process ``for`` loop; zero overhead, the
  reference semantics every other backend must reproduce.
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``;
  best for latency-bound units (network/file waits) or NumPy-heavy code
  that releases the GIL.  No pickling requirements.
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``;
  true CPU parallelism for pure-Python simulation loops.  Work
  functions, their arguments and their results must be picklable
  (module-level functions and dataclass-style objects are; closures and
  lambdas are not).

Because seeding is decided *before* dispatch (see
:mod:`repro.exec.seeding`), every backend produces bit-identical results
for the same work list.
"""

from __future__ import annotations

import logging
import math
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.resilience import (
    LEGACY_POLICY,
    ChunkDispatcher,
    CorruptChunkError,
    CorruptChunkPayload,
    RetryPolicy,
    attach_remote_traceback,
)
from repro.telemetry.core import Telemetry, metric_inc, metric_observe

_LOG = logging.getLogger(__name__)

#: Seconds between cancellation checks while waiting on an in-flight
#: chunk (pool backends only; the serial backend checks every unit).
_CANCEL_POLL_S = 0.05

#: ``on_result`` callback signature: ``(unit index, unit result)``.
ResultCallback = Callable[[int, Any], None]


class ExecutionCancelled(RuntimeError):
    """A batch was interrupted by its cancellation event.

    Raised by every backend when the ``cancel`` event passed to
    :meth:`ExecutionBackend.run` is set mid-batch.  Cancellation is
    cooperative: the serial backend stops before the next unit, the pool
    backends stop collecting and drop chunks that have not started
    (chunks already running finish in the background but their results
    are discarded).
    """


@dataclass(frozen=True)
class WorkUnit:
    """One independent unit of work: ``fn(*args)`` tagged with its slot.

    Attributes:
        index: Position of this unit's result in the output list.
        fn: The work function.
        args: Positional arguments for ``fn``.
    """

    index: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()


def _execute_units(
    chunk: Sequence[WorkUnit], fault_plan: Optional[Any], attempt: int
) -> List[Tuple[int, Any]]:
    """Run a chunk's units in order, firing any injected faults first.

    Worker-side.  ``fault_plan`` is a duck-typed
    :class:`~repro.faults.FaultPlan` (``None`` on every normal run);
    ``attempt`` is the chunk's dispatch attempt, which ages out
    attempt-gated faults so retries converge.
    """
    if fault_plan is None:
        return [(unit.index, unit.fn(*unit.args)) for unit in chunk]
    pairs: List[Tuple[int, Any]] = []
    for unit in chunk:
        fault_plan.apply_unit_faults(unit.index, attempt)
        pairs.append((unit.index, unit.fn(*unit.args)))
    return pairs


def run_chunk(
    chunk: Sequence[WorkUnit],
    fault_plan: Optional[Any] = None,
    attempt: int = 0,
) -> Any:
    """Execute a chunk of units sequentially (worker-side entry point).

    Any exception escaping a work function is stamped with its
    formatted worker-side traceback (see
    :func:`~repro.exec.resilience.attach_remote_traceback`) so the
    coordinator can chain it after the real traceback is lost to
    pickling.  An injected corruption fault replaces the whole payload
    with a :class:`~repro.exec.resilience.CorruptChunkPayload`
    sentinel, which the coordinator's validation rejects.

    Module-level so :class:`ProcessBackend` can pickle it.
    """
    try:
        pairs = _execute_units(chunk, fault_plan, attempt)
    except BaseException as exc:
        raise attach_remote_traceback(exc)
    if fault_plan is not None:
        corrupted = fault_plan.corrupt_chunk(
            (unit.index for unit in chunk), attempt
        )
        if corrupted is not None:
            return corrupted
    return pairs


def run_chunk_captured(
    chunk: Sequence[WorkUnit],
    spec: Dict[str, Any],
    fault_plan: Optional[Any] = None,
    attempt: int = 0,
) -> Tuple[Any, Dict[str, Any]]:
    """Execute a chunk under a fresh worker-side telemetry capture.

    Used by the pool backends when the coordinator has telemetry
    active: the chunk runs with its own :class:`Telemetry` installed
    (spans/metrics recorded by the work functions land there) and the
    serialized delta travels back with the results for the coordinator
    to merge in submission order.  Telemetry never touches RNG state,
    so the results are bit-identical to the uncaptured path.

    Module-level so :class:`ProcessBackend` can pickle it.
    """
    telemetry = Telemetry(profile=spec.get("profile"))
    with telemetry.activate(), telemetry.profile_scope():
        with telemetry.tracer.span("exec.chunk"):
            try:
                pairs = _execute_units(chunk, fault_plan, attempt)
            except BaseException as exc:
                raise attach_remote_traceback(exc)
        if fault_plan is not None:
            corrupted = fault_plan.corrupt_chunk(
                (unit.index for unit in chunk), attempt
            )
            if corrupted is not None:
                pairs = corrupted
    return pairs, telemetry.delta()


def make_chunks(
    units: Sequence[WorkUnit], chunk_size: int
) -> List[List[WorkUnit]]:
    """Split ``units`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        list(units[i : i + chunk_size])
        for i in range(0, len(units), chunk_size)
    ]


def default_chunk_size(n_units: int, n_workers: int) -> int:
    """A chunk size giving each worker ~4 chunks (amortises dispatch
    overhead while keeping the pool load-balanced)."""
    if n_units <= 0:
        return 1
    return max(1, math.ceil(n_units / (4 * max(1, n_workers))))


class ExecutionBackend:
    """Interface: run work units, return results in submission order.

    ``on_result`` (optional) is invoked in the coordinating thread as
    ``on_result(index, result)`` once per completed unit — pool backends
    call it as completed chunks are collected, so callers can track
    partial progress of a long batch.  ``cancel`` (optional) is any
    object with an ``is_set()`` method (e.g. :class:`threading.Event`);
    once set, the backend raises :class:`ExecutionCancelled` instead of
    finishing the batch.  Neither hook ever affects the results of units
    that do complete.

    ``collect=False`` turns the batch into a pure stream: results are
    delivered only through ``on_result`` (still in submission order) and
    the return value is an empty list.  This is what bounds the
    coordinator's memory on million-unit streaming campaigns — nothing
    accumulates per unit.

    ``telemetry`` (optional) is the coordinator's active
    :class:`~repro.telemetry.Telemetry`.  Pool backends then dispatch
    chunks through :func:`run_chunk_captured`, record per-chunk wait
    times (``exec.chunk_wait_ms``) and fold each worker delta back in
    submission order; the serial backend applies the opt-in profiler
    in-process.  ``None`` (the default) is the untouched fast path.

    ``retry`` (optional) is a
    :class:`~repro.exec.resilience.RetryPolicy` governing transient
    failures, the per-chunk watchdog and the pool-death budget.
    ``None`` keeps the legacy fail-fast semantics for worker errors
    (no retries, no watchdog) while still surviving pool deaths —
    see :data:`~repro.exec.resilience.LEGACY_POLICY`.  Because every
    unit carries its centrally-spawned seed material in its arguments,
    a retried/re-dispatched unit is bit-identical to a fault-free run.

    ``fault_plan`` (optional) is a :class:`~repro.faults.FaultPlan`
    injecting crashes/hangs/kills/corruption at seeded points — chaos
    testing only, never on by default, never part of the spec digest.
    """

    #: Registry key (``serial`` / ``thread`` / ``process``).
    name: str = "abstract"
    #: Whether units are shipped to other processes (pickling required).
    requires_pickling: bool = False

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
        on_result: Optional[ResultCallback] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[Any] = None,
    ) -> List[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """The reference backend: an in-order, in-process loop."""

    name = "serial"

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
        on_result: Optional[ResultCallback] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[Any] = None,
    ) -> List[Any]:
        # Serial units record spans/metrics inline on the already-active
        # telemetry; only the opt-in profiler needs wrapping here.
        if retry is None and fault_plan is None:
            runner = lambda: self._run_units(  # noqa: E731
                units, on_result, cancel, collect
            )
        else:
            policy = retry if retry is not None else LEGACY_POLICY
            runner = lambda: self._run_units_resilient(  # noqa: E731
                units, on_result, cancel, collect, policy, fault_plan
            )
        if telemetry is not None and telemetry.profile is not None:
            with telemetry.profile_scope():
                return runner()
        return runner()

    @staticmethod
    def _run_units(
        units: Sequence[WorkUnit],
        on_result: Optional[ResultCallback],
        cancel: Optional[Any],
        collect: bool,
    ) -> List[Any]:
        if on_result is None and cancel is None and collect:
            return [unit.fn(*unit.args) for unit in units]
        results: List[Any] = []
        done = 0
        for unit in units:
            if cancel is not None and cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {done} of "
                    f"{len(units)} units"
                )
            result = unit.fn(*unit.args)
            done += 1
            if collect:
                results.append(result)
            if on_result is not None:
                on_result(unit.index, result)
        return results

    @staticmethod
    def _run_units_resilient(
        units: Sequence[WorkUnit],
        on_result: Optional[ResultCallback],
        cancel: Optional[Any],
        collect: bool,
        policy: RetryPolicy,
        fault_plan: Optional[Any],
    ) -> List[Any]:
        """Per-unit retry loop (the serial analogue of the pool
        backends' :class:`~repro.exec.resilience.ChunkDispatcher`).

        A retried unit re-runs ``unit.fn(*unit.args)`` verbatim — its
        seed material lives in ``args`` — so results stay bit-identical
        to a fault-free pass.  Corruption faults do not apply serially
        (there is no transport to corrupt) and injected kills are
        demoted to transient crashes by the plan itself.
        """
        jitter_rng = (
            policy.jitter_generator() if policy.max_attempts > 1 else None
        )
        results: List[Any] = []
        done = 0
        for unit in units:
            if cancel is not None and cancel.is_set():
                raise ExecutionCancelled(
                    f"batch cancelled after {done} of "
                    f"{len(units)} units"
                )
            attempt = 0
            retries = 0
            while True:
                try:
                    if fault_plan is not None:
                        fault_plan.apply_unit_faults(unit.index, attempt)
                    result = unit.fn(*unit.args)
                    break
                except Exception as exc:
                    if not (
                        policy.is_transient(exc)
                        and attempt + 1 < policy.max_attempts
                    ):
                        raise
                    delay = policy.delay_s(retries, jitter_rng)
                    retries += 1
                    attempt += 1
                    metric_inc("retry.attempts")
                    metric_observe("retry.backoff_ms", delay * 1000.0)
                    _LOG.warning(
                        "transient failure in unit %d (%s); retrying "
                        "in %.3gs (attempt %d of %d)",
                        unit.index, exc, delay,
                        attempt + 1, policy.max_attempts,
                    )
                    if delay > 0:
                        time.sleep(delay)
            done += 1
            if collect:
                results.append(result)
            if on_result is not None:
                on_result(unit.index, result)
        return results


class _PoolBackend(ExecutionBackend):
    """Shared chunk-submit/collect logic for executor-based backends.

    All submission and collection is delegated to a
    :class:`~repro.exec.resilience.ChunkDispatcher`, which layers
    retry/watchdog/pool-respawn semantics over the pool while
    preserving the submission-order deterministic merge.

    Args:
        poll_interval: Seconds between cancellation and watchdog checks
            while waiting on an in-flight chunk.  Without a cancel
            event or watchdog the wait is a plain block and this knob
            is idle.
    """

    #: Whether a dead pool can be replaced by a fresh one (process
    #: pools; thread pools do not die this way).
    can_respawn: bool = False

    def __init__(self, poll_interval: float = _CANCEL_POLL_S) -> None:
        if poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self.poll_interval = poll_interval

    def _make_executor(self, n_workers: int) -> Executor:
        raise NotImplementedError

    def run(
        self,
        units: Sequence[WorkUnit],
        n_workers: int,
        chunk_size: int,
        on_result: Optional[ResultCallback] = None,
        cancel: Optional[Any] = None,
        collect: bool = True,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[Any] = None,
    ) -> List[Any]:
        if not units:
            return []
        policy = retry if retry is not None else LEGACY_POLICY
        chunks = make_chunks(units, chunk_size)
        spec = telemetry.worker_spec() if telemetry is not None else None
        collected: Dict[int, Any] = {}
        done = [0]

        if spec is None:
            def submit_chunk(pool, chunk, attempt):
                return pool.submit(run_chunk, chunk, fault_plan, attempt)

            def run_inline(chunk, attempt):
                return run_chunk(chunk, fault_plan, attempt)
        else:
            def submit_chunk(pool, chunk, attempt):
                return pool.submit(
                    run_chunk_captured, chunk, spec, fault_plan, attempt
                )

            def run_inline(chunk, attempt):
                return run_chunk_captured(chunk, spec, fault_plan, attempt)

        def validate(payload):
            if spec is not None:
                payload, delta = payload
                # Submission-order merge keeps the span tree and event
                # order deterministic for a fixed chunking.  Corrupted
                # attempts merge too: their work really ran.
                telemetry.merge_delta(delta)
            if isinstance(payload, CorruptChunkPayload):
                raise CorruptChunkError(
                    f"chunk payload failed transport validation "
                    f"({payload.note}; units "
                    f"{payload.unit_indices[0]}..."
                    f"{payload.unit_indices[-1]})"
                )
            return payload

        dispatcher = ChunkDispatcher(
            make_executor=lambda: self._make_executor(n_workers),
            chunks=chunks,
            submit_chunk=submit_chunk,
            run_inline=run_inline,
            validate=validate,
            policy=policy,
            poll_interval=self.poll_interval,
            cancel=cancel,
            telemetry=telemetry,
            can_respawn=self.can_respawn,
            done=done,
            total_units=len(units),
        )
        try:
            try:
                for position in range(len(chunks)):
                    for index, result in dispatcher.collect(position):
                        done[0] += 1
                        if collect:
                            collected[index] = result
                        if on_result is not None:
                            on_result(index, result)
            except BaseException:
                # Fail fast: drop chunks that have not started yet so a
                # doomed batch does not run to completion first, and do
                # not block on chunks already in flight.
                dispatcher.abort()
                raise
        finally:
            dispatcher.shutdown()
        if not collect:
            return []
        return [collected[unit.index] for unit in units]


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor`` fan-out (shared memory, no pickling)."""

    name = "thread"

    def _make_executor(self, n_workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-exec"
        )


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor`` fan-out (true CPU parallelism)."""

    name = "process"
    requires_pickling = True
    can_respawn = True

    def _make_executor(self, n_workers: int) -> Executor:
        return ProcessPoolExecutor(max_workers=n_workers)


_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> List[str]:
    """Registered backend names, serial first."""
    return list(_REGISTRY)


def get_backend(
    backend: Union[str, ExecutionBackend]
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        ValueError: For an unknown backend name.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = _REGISTRY[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(_REGISTRY)} or an ExecutionBackend instance"
        ) from None
    return factory()
