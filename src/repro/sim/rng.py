"""Reproducible random-number streams.

Every stochastic experiment in the library draws randomness through
:class:`RandomStreams`, which derives independent child generators from a
single root seed using :class:`numpy.random.SeedSequence` spawning.  Two
properties follow:

* **Reproducibility** — the same root seed always yields the same results.
* **Independence** — subsystems (e.g. attack-stage sampling vs. plant noise)
  use separate streams, so adding draws to one subsystem does not perturb
  another.  This is the standard "common random numbers" discipline used in
  simulation-based Design of Experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np


class RandomStreams:
    """A tree of named, independent random generators under one root seed.

    Example:
        >>> streams = RandomStreams(seed=42)
        >>> attack_rng = streams.stream("attack")
        >>> plant_rng = streams.stream("plant")
        >>> x = attack_rng.exponential(2.0)
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root_seed = seed
        self._seq = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._spawned = 0

    @property
    def root_seed(self) -> Optional[int]:
        """The root seed this tree was created with (``None`` = entropy)."""
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        Streams are keyed by name: the generator for a given
        ``(root_seed, name)`` pair is always identical, regardless of the
        order in which streams are requested.
        """
        if name not in self._streams:
            # Derive the stream key from the name so identity depends only
            # on (seed, lineage, name); the tree's own spawn_key prefix
            # keeps spawned children independent of their parent.
            name_key = tuple(ord(c) for c in name)
            child = np.random.SeedSequence(
                entropy=self._seq.entropy,
                spawn_key=tuple(self._seq.spawn_key) + name_key,
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self) -> "RandomStreams":
        """Return a child :class:`RandomStreams` independent of this one.

        Used to give each replication of a Monte-Carlo batch its own
        stream tree.
        """
        self._spawned += 1
        child_seq = np.random.SeedSequence(
            entropy=self._seq.entropy, spawn_key=(0xFFFF, self._spawned)
        )
        child = RandomStreams.__new__(RandomStreams)
        child._root_seed = None
        child._seq = child_seq
        child._streams = {}
        child._spawned = 0
        return child

    def replication_seeds(self, count: int) -> Iterator[int]:
        """Yield ``count`` distinct, reproducible 63-bit integer seeds.

        These are used to seed independent Monte-Carlo replications; the
        sequence is a pure function of the root seed.
        """
        seed_rng = self.stream("__replications__")
        for _ in range(count):
            yield int(seed_rng.integers(0, 2**63 - 1))


def generator_from_seed(seed: Optional[int]) -> np.random.Generator:
    """Convenience wrapper: a standalone generator from an optional seed."""
    return np.random.default_rng(seed)
