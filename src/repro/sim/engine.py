"""The discrete-event simulation engine.

:class:`SimulationEngine` advances a simulation clock by firing events in
``(time, priority, insertion)`` order.  Models (SAN, GSPN, attack campaigns)
schedule events against the engine and inspect the clock through
:attr:`SimulationEngine.now`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.sim.events import Event, EventQueue


@dataclass
class StopCondition:
    """Why a simulation run ended.

    Attributes:
        reason: One of ``"horizon"``, ``"empty"``, ``"predicate"``,
            ``"max_events"``.
        time: Clock value when the run stopped.
        events_fired: Number of events executed.
    """

    reason: str
    time: float
    events_fired: int


class SimulationEngine:
    """A minimal, deterministic discrete-event simulation loop.

    Example:
        >>> engine = SimulationEngine()
        >>> hits = []
        >>> engine.schedule(1.5, lambda ev: hits.append(ev.time))
        <...>
        >>> engine.run(horizon=10.0).reason
        'empty'
        >>> hits
        [1.5]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_fired = 0
        self._stop_requested = False
        self._listeners: List[Callable[[Event], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed since construction or :meth:`reset`."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events in the queue."""
        return len(self._queue)

    def reset(self) -> None:
        """Clear the clock and all pending events."""
        self._queue.clear()
        self._now = 0.0
        self._events_fired = 0
        self._stop_requested = False

    def schedule(
        self,
        time: float,
        action: Optional[Callable[[Event], None]] = None,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Schedule an event at absolute time ``time``.

        Raises:
            ValueError: If ``time`` is in the past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}; clock already at {self._now}"
            )
        return self._queue.schedule(time, action, priority=priority, payload=payload)

    def schedule_after(
        self,
        delay: float,
        action: Optional[Callable[[Event], None]] = None,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, action, priority, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self._queue.cancel(event)

    def request_stop(self) -> None:
        """Ask the engine to stop before firing the next event."""
        self._stop_requested = True

    def add_listener(self, listener: Callable[[Event], None]) -> None:
        """Register a callback invoked after every fired event."""
        self._listeners.append(listener)

    def run(
        self,
        horizon: Optional[float] = None,
        until: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> StopCondition:
        """Run the event loop.

        Args:
            horizon: Stop once the next event would fire after this time;
                the clock is advanced to the horizon.
            until: Predicate checked after each event; loop stops when true.
            max_events: Safety cap on the number of events to fire.

        Returns:
            A :class:`StopCondition` describing why the loop ended.
        """
        fired_this_run = 0
        self._stop_requested = False
        queue = self._queue
        listeners = self._listeners
        while True:
            if self._stop_requested:
                return StopCondition("predicate", self._now, self._events_fired)
            if max_events is not None and fired_this_run >= max_events:
                return StopCondition("max_events", self._now, self._events_fired)
            event = queue.peek()
            if event is None:
                if horizon is not None and horizon > self._now:
                    self._now = horizon
                return StopCondition("empty", self._now, self._events_fired)
            if horizon is not None and event.time > horizon:
                # The event stays queued for a later run() call.
                self._now = horizon
                return StopCondition("horizon", self._now, self._events_fired)
            queue.pop()
            self._now = event.time
            action = event.action
            if action is not None:
                action(event)
            self._events_fired += 1
            fired_this_run += 1
            if listeners:  # fast path: no listener dispatch when unused
                for listener in listeners:
                    listener(event)
            if until is not None and until():
                return StopCondition("predicate", self._now, self._events_fired)
