"""Discrete-event simulation kernel.

This package provides the simulation substrate shared by every stochastic
model in the library: the stochastic-activity-network solver
(:mod:`repro.san`), the GSPN simulator (:mod:`repro.petri.gspn`) and the
attack-campaign simulator (:mod:`repro.attacks.campaign`).

The kernel is deliberately small and fully deterministic given a seed:

* :class:`~repro.sim.engine.SimulationEngine` — the event loop.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue` —
  a stable priority queue of timestamped events.
* :class:`~repro.sim.rng.RandomStreams` — independent, reproducible random
  streams derived from a single root seed.
* :class:`~repro.sim.trace.TraceRecorder` — timestamped trace of simulation
  observations for post-hoc indicator computation.
"""

from repro.sim.engine import SimulationEngine, StopCondition
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "RandomStreams",
    "SimulationEngine",
    "StopCondition",
    "TraceRecord",
    "TraceRecorder",
]
