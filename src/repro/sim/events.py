"""Timestamped events and the pending-event queue.

Events are ordered by ``(time, priority, sequence)``.  ``priority`` breaks
ties between events scheduled at the same instant (lower value fires first);
``sequence`` is a monotonically increasing counter that guarantees FIFO
ordering among events with equal time and priority, which keeps simulations
reproducible regardless of heap internals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True, slots=True)
class Event:
    """A scheduled occurrence in simulated time.

    ``slots=True`` keeps the heap's working set compact and speeds up
    the attribute reads the event loop does per fired event.

    Attributes:
        time: Simulation time at which the event fires.
        priority: Tie-breaker for simultaneous events; lower fires first.
        sequence: Insertion counter; preserves FIFO order for full ties.
        action: Callable invoked when the event fires.  It receives the
            event itself so handlers can inspect ``time`` and ``payload``.
        payload: Arbitrary data attached to the event.
        cancelled: Lazily-cancelled events are skipped by the queue.
    """

    time: float
    priority: int = 0
    sequence: int = field(default=0, compare=True)
    action: Optional[Callable[["Event"], None]] = field(default=None, compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the event action, if any."""
        if self.action is not None:
            self.action(self)


class EventQueue:
    """A stable min-heap of :class:`Event` objects.

    The queue supports lazy cancellation: cancelled events stay in the heap
    but are transparently skipped by :meth:`pop` and :meth:`peek`.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        # Plain integer tie-break counter (cheaper than an
        # itertools.count round-trip on the scheduling hot path).
        self._next_sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        action: Optional[Callable[[Event], None]] = None,
        priority: int = 0,
        payload: Any = None,
    ) -> Event:
        """Create an event and push it onto the queue.

        Args:
            time: Absolute simulation time of the event.
            action: Callback invoked when the event fires.
            priority: Tie-breaker among simultaneous events (lower first).
            payload: Arbitrary data carried by the event.

        Returns:
            The scheduled :class:`Event`, which the caller may later cancel.

        Raises:
            ValueError: If ``time`` is negative or not finite.
        """
        if not (time >= 0.0) or time != time or time == float("inf"):
            raise ValueError(f"event time must be finite and >= 0, got {time!r}")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(
            time=time,
            priority=priority,
            sequence=sequence,
            action=action,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def push(self, event: Event) -> Event:
        """Push an externally-constructed event, assigning its sequence."""
        event.sequence = self._next_sequence
        self._next_sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it, or ``None``."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Discard every pending event."""
        self._heap.clear()
        self._live = 0
