"""Simulation traces: timestamped observations for post-hoc analysis.

Security indicators (Time-To-Attack, Time-To-Security-Failure, compromised
ratio — see :mod:`repro.core.indicators`) are computed from traces recorded
during attack-campaign simulations, mirroring how the paper's "Measurements"
step consumes the output of the attack model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation.

    Attributes:
        time: Simulation time of the observation.
        kind: Category tag, e.g. ``"stage"``, ``"compromise"``, ``"alarm"``.
        subject: Identifier of the entity observed (host name, stage name).
        data: Free-form details.
    """

    time: float
    kind: str
    subject: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """An append-only, time-ordered list of :class:`TraceRecord` objects."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(
        self,
        time: float,
        kind: str,
        subject: str,
        **data: Any,
    ) -> TraceRecord:
        """Append an observation; times must be non-decreasing."""
        if self._records and time < self._records[-1].time - 1e-12:
            raise ValueError(
                f"trace times must be non-decreasing: got {time} after "
                f"{self._records[-1].time}"
            )
        rec = TraceRecord(time=time, kind=kind, subject=subject, data=dict(data))
        self._records.append(rec)
        return rec

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Return all records with the given ``kind``, in time order."""
        return [r for r in self._records if r.kind == kind]

    def first(self, kind: str, subject: Optional[str] = None) -> Optional[TraceRecord]:
        """Return the earliest record matching ``kind`` (and ``subject``)."""
        for rec in self._records:
            if rec.kind == kind and (subject is None or rec.subject == subject):
                return rec
        return None

    def last(self, kind: str, subject: Optional[str] = None) -> Optional[TraceRecord]:
        """Return the latest record matching ``kind`` (and ``subject``)."""
        result: Optional[TraceRecord] = None
        for rec in self._records:
            if rec.kind == kind and (subject is None or rec.subject == subject):
                result = rec
        return result

    def subjects(self, kind: str) -> List[str]:
        """Distinct subjects seen for ``kind``, in first-seen order."""
        seen: Dict[str, None] = {}
        for rec in self._records:
            if rec.kind == kind and rec.subject not in seen:
                seen[rec.subject] = None
        return list(seen)

    def step_function(self, kind: str) -> List[tuple[float, int]]:
        """Cumulative count of ``kind`` records over time.

        Returns:
            A list of ``(time, count)`` pairs — the right-continuous step
            function of the number of matching records observed so far.
        """
        points: List[tuple[float, int]] = []
        count = 0
        for rec in self._records:
            if rec.kind == kind:
                count += 1
                points.append((rec.time, count))
        return points
