"""Paired overhead gates (``python -m repro.bench.overhead``).

``scripts/ci.sh`` must verify that two always-available features cost
at most a few percent of ``perf_suite_run`` wall-clock: enabling
telemetry, and arming a :class:`~repro.exec.RetryPolicy` (watchdog on,
no faults injected).  Separately-timed benchmark medians cannot
resolve a 2% budget on a shared box whose run-to-run noise is +/-10%,
so this gate measures the overhead as a *paired* experiment: each
round times the identical suite run once with the feature disabled and
once enabled (alternating order to cancel drift), and the statistic is
the median of the per-round on/off ratios.  Because the true overheads
are well under the budget, a regression that trips the gate is a real
one; residual scheduling noise is absorbed by retrying the whole
measurement a bounded number of times before failing.

The companion benchmark pairs (``perf_telemetry_overhead`` and
``perf_retry_overhead`` vs ``perf_suite_run`` in ``benchmarks/``)
record the same ratios into the persisted baselines for the long-term
trajectory; this module is the hard CI gate.  Select the feature with
``--workload telemetry`` (default) or ``--workload retry``.
"""

from __future__ import annotations

import argparse
import statistics
import time
from typing import Dict, List, Optional, Tuple

#: The perf_suite_run workload (benchmarks/test_bench_perf_campaign.py).
SUITE_NAMES = ("cooling_stuxnet", "cooling_duqu", "cooling_flame")
SUITE_SEED = 2013

#: Overhead budget: the enabled feature may cost at most this fraction
#: of the disabled run's wall-clock.
DEFAULT_TOLERANCE = 0.02

WORKLOADS = ("telemetry", "retry")


def _timed_runs(workload: str = "telemetry") -> Tuple:
    """``(run_off, run_on)`` timing closures over a shared suite."""
    from repro.scenarios.registry import SCENARIOS
    from repro.scenarios.suite import ScenarioSuite

    specs = [SCENARIOS.get(name) for name in SUITE_NAMES]
    suite = ScenarioSuite(specs)

    def run_off() -> float:
        started = time.perf_counter()
        suite.run(SUITE_SEED)
        return time.perf_counter() - started

    if workload == "retry":
        from repro.exec import ExperimentRunner, RetryPolicy

        armed = ScenarioSuite(
            specs,
            runner=ExperimentRunner(
                "serial",
                retry=RetryPolicy(max_attempts=3, timeout_s=30.0),
            ),
        )

        def run_on() -> float:
            started = time.perf_counter()
            armed.run(SUITE_SEED)
            return time.perf_counter() - started

        return run_off, run_on

    if workload != "telemetry":
        raise ValueError(
            f"unknown workload {workload!r}; choose from {WORKLOADS}"
        )

    from repro.telemetry import Telemetry

    def run_on_telemetry() -> float:
        telemetry = Telemetry()
        started = time.perf_counter()
        with telemetry.activate(), telemetry.span("session.run"):
            suite.run(SUITE_SEED)
        return time.perf_counter() - started

    return run_off, run_on_telemetry


def measure_overhead(
    rounds: int = 8, workload: str = "telemetry"
) -> Dict[str, object]:
    """Median paired on/off ratio over ``rounds`` interleaved rounds.

    Each round runs both variants back to back, alternating which goes
    first, so slow drift (thermal, co-tenant load) hits both sides
    equally.  One warmup pair runs first and is discarded.
    """
    run_off, run_on = _timed_runs(workload)
    run_off()
    run_on()
    ratios: List[float] = []
    for index in range(rounds):
        if index % 2 == 0:
            off, on = run_off(), run_on()
        else:
            on, off = run_on(), run_off()
        ratios.append(on / off)
    return {
        "ratios": ratios,
        "median_ratio": statistics.median(ratios),
        "rounds": rounds,
        "workload": workload,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.overhead",
        description=(
            "Gate the telemetry / retry-policy overhead of the "
            "perf_suite_run workload with a paired (interleaved "
            "on/off) measurement."
        ),
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="telemetry",
        help="which always-on feature to gate (default telemetry)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed fractional overhead (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--rounds", type=int, default=8,
        help="paired rounds per attempt (default 8)",
    )
    parser.add_argument(
        "--attempts", type=int, default=3,
        help="measurement attempts before the gate fails (default 3)",
    )
    args = parser.parse_args(argv)
    budget = 1.0 + args.tolerance
    worst = 0.0
    for attempt in range(1, args.attempts + 1):
        measured = measure_overhead(
            rounds=args.rounds, workload=args.workload
        )
        median = measured["median_ratio"]
        worst = max(worst, median)
        spread = ", ".join(f"{r:.3f}" for r in measured["ratios"])
        print(
            f"attempt {attempt}/{args.attempts}: median on/off ratio "
            f"{median:.4f} over {args.rounds} paired rounds [{spread}]"
        )
        if median <= budget:
            print(
                f"{args.workload} overhead {max(median - 1.0, 0.0):.2%} "
                f"<= {args.tolerance:.0%} budget: OK"
            )
            return 0
    print(
        f"FAIL: {args.workload} overhead gate — median on/off ratio "
        f"reached {worst:.4f} (> {budget:.4f}) on every attempt"
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
