"""``python -m repro.bench`` — run benchmarks, persist a baseline."""

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
