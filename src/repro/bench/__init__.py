"""Benchmark harness driver with persisted machine-readable baselines.

``python -m repro.bench`` runs the pytest-benchmark suite (the ``bench``
marker tier, defaulting to the substrate timings in
``benchmarks/test_bench_perf_substrates.py``) and writes a JSON baseline
file — per-benchmark mean/median/stddev seconds plus derived speedups —
so successive PRs accumulate a perf trajectory that can be diffed
mechanically instead of eyeballed from pytest output.

Fast-path/baseline pairs are derived by naming convention: a benchmark
``X_legacy`` (or ``X_dense_expm``) is treated as the reference
implementation of ``X`` (``X_uniformized``), and the report includes
``speedups[X] = median(reference) / median(fast)``.

The output file is organized in named *sections* (default ``"current"``)
so one file can carry, e.g., ``pre_pr`` and ``post_pr`` runs
side-by-side: re-running with ``--section`` replaces only that section
and recomputes nothing else.

Regression mode: ``python -m repro.bench --compare BENCH_PRn.json``
diffs the fresh run against a previously persisted baseline and exits
non-zero when any shared benchmark's **median** regresses beyond
``--tolerance`` (a fraction; default 0.35) — medians, not means,
because a handful of noisy rounds on a shared box can double a mean
without any code change.  The baseline is read *before* the fresh run
writes its output, so comparing against the file being updated (a
rolling baseline) diffs against the previous contents.  Benchmarks
present on only one side are reported but never fail the run, so new
benchmarks can be introduced alongside an old baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

#: ``(fast suffix, reference suffix)`` naming conventions for speedups.
_PAIR_SUFFIXES = (
    ("", "_legacy"),
    ("_uniformized", "_dense_expm"),
    ("_warm_cache", ""),
    # repro.api facade overhead check: X_session (Session.submit) is
    # paired against X (the direct legacy call); the reported "speedup"
    # should sit at ~1.0 — the facade adds no wall-clock.
    ("_session", ""),
)

#: ``{fast benchmark: reference benchmark}`` pairs the suffix
#: conventions cannot express.  perf_telemetry_overhead reruns exactly
#: the perf_suite_run workload with telemetry recording enabled; its
#: "speedup" is the overhead ratio (expected ~1.0, gated by
#: scripts/ci.sh).
_PAIR_EXPLICIT = {
    "perf_telemetry_overhead": "perf_suite_run",
    # Same workload again with a RetryPolicy armed (watchdog on, no
    # faults injected); the "speedup" is the fault-free resilience
    # overhead ratio (expected ~1.0, gated by scripts/ci.sh).
    "perf_retry_overhead": "perf_suite_run",
    # Mega-batch SoA lowerings vs their scalar counterparts; the
    # reported speedups are the batch wins gated by scripts/ci.sh.
    "perf_san_batch_vectorized": "perf_san_batch_scalar",
    "perf_campaign_batch_vectorized": "perf_campaign_batch_scalar",
}

DEFAULT_TARGETS = [
    "benchmarks/test_bench_perf_substrates.py",
    "benchmarks/test_bench_perf_campaign.py",
    "benchmarks/test_bench_perf_streaming.py",
    "benchmarks/test_bench_perf_telemetry.py",
    "benchmarks/test_bench_perf_batch.py",
    "benchmarks/test_bench_perf_resilience.py",
]

#: Median regression (as a fraction of the baseline median) tolerated
#: by ``--compare`` before the run fails.
DEFAULT_TOLERANCE = 0.35


def _strip_test_prefix(name: str) -> str:
    """``test_perf_san_simulation[x]`` → ``perf_san_simulation[x]``."""
    return name[5:] if name.startswith("test_") else name


def parse_benchmark_json(raw: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """Flatten a pytest-benchmark JSON report to ``{name: stats}``."""
    results: Dict[str, Dict[str, float]] = {}
    for entry in raw.get("benchmarks", []):  # type: ignore[union-attr]
        stats = entry["stats"]
        results[_strip_test_prefix(entry["name"])] = {
            "mean_s": stats["mean"],
            "median_s": stats["median"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return results


def derive_speedups(
    results: Dict[str, Dict[str, float]]
) -> Dict[str, float]:
    """``{fast benchmark: reference_median / fast_median}`` over known
    pairs — medians for the same reason ``--compare`` uses them: a few
    noisy rounds on a shared box can double a mean without any code
    change, and the fast side of a pair (many short rounds) collects
    proportionally more of them."""
    speedups: Dict[str, float] = {}
    for name, stats in results.items():
        reference_name = _PAIR_EXPLICIT.get(name)
        if reference_name is not None:
            reference = results.get(reference_name)
            if reference is not None and stats["median_s"] > 0:
                speedups[name] = reference["median_s"] / stats["median_s"]
            continue
        for fast_suffix, ref_suffix in _PAIR_SUFFIXES:
            if fast_suffix and not name.endswith(fast_suffix):
                continue
            base = name[: len(name) - len(fast_suffix)] if fast_suffix else name
            reference = results.get(base + ref_suffix)
            if reference is None or reference is stats:
                continue
            median = stats["median_s"]
            if median > 0:
                speedups[name] = reference["median_s"] / median
    return speedups


def run_bench(
    targets: Optional[List[str]] = None,
    keyword: Optional[str] = None,
    output: str = "BENCH.json",
    section: str = "current",
    pytest_args: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run the benchmark tier and persist a baseline section.

    Args:
        targets: Test paths to run (default: the substrate timings).
        keyword: Optional ``pytest -k`` filter.
        output: Baseline JSON path; existing sections are preserved.
        section: Section name to (re)write within the file.
        pytest_args: Extra arguments appended to the pytest invocation.

    Returns:
        The section dict that was written.

    Raises:
        RuntimeError: If pytest fails or produces no benchmark report.
    """
    targets = targets or list(DEFAULT_TARGETS)
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "benchmark.json")
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            "-m",
            "bench",
            "-q",
            f"--benchmark-json={report_path}",
            *targets,
        ]
        if keyword:
            cmd += ["-k", keyword]
        if pytest_args:
            cmd += list(pytest_args)
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            raise RuntimeError(
                f"benchmark run failed with exit code {proc.returncode}"
            )
        if not os.path.exists(report_path):
            raise RuntimeError(
                "pytest produced no benchmark report (is pytest-benchmark "
                "installed and did any 'bench' test run?)"
            )
        with open(report_path) as handle:
            raw = json.load(handle)

    results = parse_benchmark_json(raw)
    section_data: Dict[str, object] = {
        "benchmarks": results,
        "speedups": derive_speedups(results),
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw")
        or raw.get("machine_info", {}).get("machine"),
        "python": raw.get("machine_info", {}).get("python_version"),
    }

    document: Dict[str, object] = {}
    if os.path.exists(output):
        with open(output) as handle:
            document = json.load(handle)
    document[section] = section_data
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return section_data


def load_baseline_benchmarks(
    path: str, section: Optional[str] = None
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark stats from a persisted baseline file.

    Args:
        path: Baseline JSON written by :func:`run_bench`.
        section: Section to read; default picks ``"current"``, then
            ``"post_pr"``, then the first section carrying benchmarks.

    Raises:
        ValueError: If the file has no usable section.
    """
    with open(path) as handle:
        document = json.load(handle)
    candidates = (
        [section] if section else ["current", "post_pr", *document.keys()]
    )
    for name in candidates:
        entry = document.get(name)
        if isinstance(entry, dict) and isinstance(
            entry.get("benchmarks"), dict
        ):
            return entry["benchmarks"]
    raise ValueError(
        f"no benchmark section found in {path!r} "
        f"(looked for: {', '.join(str(c) for c in candidates)})"
    )


def compare_benchmarks(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, object]:
    """Diff two benchmark runs.

    Ratios use the per-benchmark **median** (falling back to the mean
    for baselines that lack one): medians are far more robust to the
    scheduling noise of shared boxes, where a handful of slow rounds
    can double a mean without any code change.

    Returns:
        ``{"ratios": {name: current_median / baseline_median},
        "regressions": [names beyond tolerance],
        "only_current": [...], "only_baseline": [...]}``
    """

    def midpoint(stats: Dict[str, float]) -> float:
        return stats.get("median_s", stats.get("mean_s", 0.0))

    ratios: Dict[str, float] = {}
    regressions: List[str] = []
    for name in sorted(set(current) & set(baseline)):
        base = midpoint(baseline[name])
        value = midpoint(current[name])
        if base <= 0:
            continue
        ratio = value / base
        ratios[name] = ratio
        if ratio > 1.0 + tolerance:
            regressions.append(name)
    return {
        "ratios": ratios,
        "regressions": regressions,
        "only_current": sorted(set(current) - set(baseline)),
        "only_baseline": sorted(set(baseline) - set(current)),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Run the benchmark tier and write a machine-readable "
            "baseline (per-benchmark timings + derived speedups)."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=None,
        help=f"test paths to run (default: {DEFAULT_TARGETS[0]})",
    )
    parser.add_argument("-k", "--keyword", help="pytest -k filter")
    parser.add_argument(
        "-o", "--output", default="BENCH.json",
        help="baseline JSON file to update (default: BENCH.json)",
    )
    parser.add_argument(
        "-s", "--section", default="current",
        help="section name inside the baseline file (default: current)",
    )
    parser.add_argument(
        "-c", "--compare", metavar="BASELINE.json",
        help=(
            "regression mode: diff the fresh run against this persisted "
            "baseline (read before the run writes --output) and exit "
            "non-zero on any shared benchmark whose median regressed "
            "beyond --tolerance"
        ),
    )
    parser.add_argument(
        "--compare-section", default=None,
        help=(
            "section of the --compare baseline to diff against "
            "(default: 'current', then 'post_pr', then first usable)"
        ),
    )
    parser.add_argument(
        "-t", "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=(
            "fractional median regression tolerated by --compare "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    args = parser.parse_args(argv)
    # Read the baseline up front: it must reflect the *previous* state
    # even when --compare names the same file --output is about to
    # update (the rolling-baseline pattern), and a missing/unusable
    # baseline should fail before minutes of benchmarking.
    baseline = (
        load_baseline_benchmarks(args.compare, args.compare_section)
        if args.compare
        else None
    )
    section = run_bench(
        targets=args.targets or None,
        keyword=args.keyword,
        output=args.output,
        section=args.section,
    )
    speedups = section["speedups"]
    print(f"\nwrote section {args.section!r} to {args.output}")
    for name, ratio in sorted(speedups.items()):  # type: ignore[union-attr]
        print(f"  speedup {name}: {ratio:.1f}x")
    if baseline is None:
        return 0

    diff = compare_benchmarks(
        section["benchmarks"],  # type: ignore[arg-type]
        baseline,
        tolerance=args.tolerance,
    )
    print(f"\ncompared against {args.compare} (tolerance {args.tolerance:g}):")
    for name, ratio in diff["ratios"].items():  # type: ignore[union-attr]
        flag = "REGRESSED" if name in diff["regressions"] else "ok"
        print(f"  {name}: {ratio:.2f}x baseline median [{flag}]")
    for name in diff["only_current"]:  # type: ignore[union-attr]
        print(f"  {name}: new benchmark (no baseline)")
    for name in diff["only_baseline"]:  # type: ignore[union-attr]
        print(f"  {name}: missing from this run")
    if diff["regressions"]:
        print(
            f"FAIL: {len(diff['regressions'])} benchmark(s) regressed "
            f"beyond {args.tolerance:g}"
        )
        return 1
    print("no regressions beyond tolerance")
    return 0
