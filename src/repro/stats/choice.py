"""Inverse-CDF tables bit-compatible with ``Generator.choice``.

``numpy.random.Generator.choice(n, p=probs)`` selects by building
``cdf = cumsum(p); cdf /= cdf[-1]`` and running a right-sided
``searchsorted`` on one ``rng.random()`` double.  The compiled
simulation fast paths (:mod:`repro.san.compiled`,
:mod:`repro.petri.gspn`) precompute that table once and select with
``bisect.bisect_right`` on one uniform — the same float64 operations on
the same generator state, hence bit-identical selections.  This module
is the single home of that construction so the parity rationale lives
in one place.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np


def choice_cdf(probs: Union[Sequence[float], np.ndarray]) -> List[float]:
    """The normalized-cumsum CDF ``Generator.choice`` builds from ``p``."""
    arr = np.asarray(probs, dtype=np.float64)
    cdf = arr.cumsum()
    cdf /= cdf[-1]
    return cdf.tolist()


def choice_batch(
    cdf: Union[Sequence[float], np.ndarray],
    uniforms: Union[Sequence[float], np.ndarray],
) -> np.ndarray:
    """Vectorized inverse-CDF selection over a block of uniforms.

    ``choice_batch(cdf, u)[i]`` equals ``bisect.bisect_right(cdf, u[i])``
    — the scalar selection the compiled simulators perform — for every
    element: ``numpy.searchsorted(..., side="right")`` and
    ``bisect_right`` implement the same right-sided binary search on the
    same float64 values.  Batch engines pre-draw one uniform block per
    activity and resolve every lane's case in a single call.

    Args:
        cdf: A non-decreasing CDF table (e.g. from :func:`choice_cdf`).
        uniforms: Pre-drawn uniforms, any shape.

    Returns:
        Case indices as an ``int64`` array shaped like ``uniforms``.
    """
    return np.searchsorted(
        np.asarray(cdf, dtype=np.float64),
        np.asarray(uniforms, dtype=np.float64),
        side="right",
    ).astype(np.int64, copy=False)


def weighted_choice_cdf(weights: Sequence[float]) -> List[float]:
    """CDF for the legacy ``choice(n, p=weights / weights.sum())`` idiom.

    Replicates the caller-side normalization exactly (numpy array
    division before the choice-internal cumsum), as the legacy
    instantaneous-activity / immediate-transition selection code did.
    """
    arr = np.array(weights)
    return choice_cdf(arr / arr.sum())


class WeightCdfCache:
    """Per-candidate-set cache of :func:`weighted_choice_cdf` tables.

    Both compiled simulators select among the *enabled* subset of
    weighted elements, so the CDF depends on which indices are enabled;
    this memoizes one table per observed index tuple.  Holds only plain
    floats, so it pickles with its owner.
    """

    __slots__ = ("_weights", "_cache")

    def __init__(self, weights: Sequence[float]) -> None:
        self._weights = list(weights)
        self._cache: dict = {}

    def cdf(self, candidates: Sequence[int]) -> List[float]:
        """The weight-split CDF over ``candidates`` (an index tuple)."""
        key = tuple(candidates)
        table = self._cache.get(key)
        if table is None:
            table = weighted_choice_cdf(
                [self._weights[i] for i in key]
            )
            self._cache[key] = table
        return table
