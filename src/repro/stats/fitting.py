"""Distribution fitting for model calibration.

The paper lists three sources for stage success probabilities and
timings: *"previously documented attack history"*, honeypot emulation,
or sensitivity analysis.  This module supports the first: maximum-
likelihood fits of the library's timing distributions to observed
duration samples, plus simple goodness-of-fit diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import optimize as _opt
from scipy import stats as _sps

from repro.stats.distributions import (
    Distribution,
    Exponential,
    LogNormal,
    Weibull,
)


@dataclass(frozen=True)
class FitResult:
    """A fitted distribution with diagnostics.

    Attributes:
        distribution: The fitted :class:`Distribution`.
        log_likelihood: Maximized log-likelihood.
        ks_statistic: Kolmogorov–Smirnov distance between the empirical
            and fitted CDFs.
        n: Sample size.
    """

    distribution: Distribution
    log_likelihood: float
    ks_statistic: float
    n: int

    @property
    def aic(self) -> float:
        """Akaike information criterion (k = #parameters)."""
        k = {"Exponential": 1, "Weibull": 2, "LogNormal": 2}.get(
            type(self.distribution).__name__, 2
        )
        return 2 * k - 2 * self.log_likelihood


def _validate(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(list(samples), dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples to fit")
    if (arr <= 0).any():
        raise ValueError("duration samples must be strictly positive")
    return arr


def _ks(arr: np.ndarray, cdf) -> float:
    sorted_arr = np.sort(arr)
    n = arr.size
    theoretical = cdf(sorted_arr)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(
        max(np.abs(upper - theoretical).max(),
            np.abs(theoretical - lower).max())
    )


def fit_exponential(samples: Sequence[float]) -> FitResult:
    """MLE exponential fit: rate = 1 / mean."""
    arr = _validate(samples)
    rate = 1.0 / float(arr.mean())
    dist = Exponential(rate)
    ll = float(arr.size * math.log(rate) - rate * arr.sum())
    ks = _ks(arr, lambda x: 1.0 - np.exp(-rate * x))
    return FitResult(dist, ll, ks, int(arr.size))


def fit_lognormal(samples: Sequence[float]) -> FitResult:
    """MLE log-normal fit on the log-transformed sample."""
    arr = _validate(samples)
    logs = np.log(arr)
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=0))
    if sigma <= 0:
        sigma = 1e-9
    dist = LogNormal(mu, sigma)
    ll = float(
        -arr.size / 2 * math.log(2 * math.pi)
        - arr.size * math.log(sigma)
        - logs.sum()
        - ((logs - mu) ** 2).sum() / (2 * sigma**2)
    )
    ks = _ks(
        arr,
        lambda x: _sps.norm.cdf((np.log(x) - mu) / sigma),
    )
    return FitResult(dist, ll, ks, int(arr.size))


def fit_weibull(samples: Sequence[float]) -> FitResult:
    """MLE Weibull fit (profile likelihood on the shape parameter)."""
    arr = _validate(samples)
    logs = np.log(arr)

    def shape_equation(k: float) -> float:
        xk = arr**k
        return (xk * logs).sum() / xk.sum() - 1.0 / k - logs.mean()

    try:
        shape = float(_opt.brentq(shape_equation, 0.02, 50.0))
    except ValueError:
        shape = 1.0  # degenerate sample; fall back to exponential shape
    scale = float((arr**shape).mean() ** (1.0 / shape))
    dist = Weibull(shape, scale)
    z = arr / scale
    ll = float(
        arr.size * (math.log(shape) - shape * math.log(scale))
        + (shape - 1) * logs.sum()
        - (z**shape).sum()
    )
    ks = _ks(arr, lambda x: 1.0 - np.exp(-((x / scale) ** shape)))
    return FitResult(dist, ll, ks, int(arr.size))


def best_fit(samples: Sequence[float]) -> FitResult:
    """Fit all supported families and return the lowest-AIC result."""
    fits = [
        fit_exponential(samples),
        fit_lognormal(samples),
        fit_weibull(samples),
    ]
    return min(fits, key=lambda f: f.aic)


def empirical_cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as sorted ``(value, F(value))`` step points."""
    arr = np.sort(np.asarray(list(samples), dtype=float))
    n = arr.size
    if n == 0:
        return []
    return [(float(v), (i + 1) / n) for i, v in enumerate(arr)]
