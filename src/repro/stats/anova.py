"""N-way fixed-effects ANOVA with variance allocation.

This module implements the paper's **Diversity Assessment** step: given
security-indicator measurements collected across system configurations
(step 2, DoE & Measurements), ANOVA *"allocate[s] the variability of the
security indicators ... to the component(s) responsible for such
variability"*.

The implementation fits a fixed-effects linear model with sum-to-zero
effect coding and computes **sequential (Type I) sums of squares**, which
coincide with the usual Type III decomposition on the balanced designs
produced by :mod:`repro.doe`.  Each source's share of the total sum of
squares is reported as its *variance allocation* — the quantity the paper
uses to decide which components are worth diversifying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _sps


@dataclass(frozen=True)
class AnovaRow:
    """One source line of an ANOVA table.

    Attributes:
        source: Term name — a factor (``"os"``) or an interaction
            (``"os:firewall"``).
        df: Degrees of freedom of the term.
        ss: Sum of squares attributed to the term.
        ms: Mean square (``ss / df``).
        f: F statistic against the residual mean square (nan when the
            residual has no degrees of freedom).
        p: p-value of the F test (nan when ``f`` is nan).
        allocation: Fraction of the *total* sum of squares explained by
            this term — the paper's variance-allocation measure.
    """

    source: str
    df: int
    ss: float
    ms: float
    f: float
    p: float
    allocation: float


@dataclass
class AnovaResult:
    """A complete ANOVA table.

    Attributes:
        rows: One :class:`AnovaRow` per model term, in fitting order.
        residual_ss / residual_df: Error term.
        total_ss / total_df: Corrected totals.
        response: Name of the analyzed response variable.
    """

    rows: List[AnovaRow]
    residual_ss: float
    residual_df: int
    total_ss: float
    total_df: int
    response: str = "response"
    grand_mean: float = 0.0

    @property
    def residual_ms(self) -> float:
        """Residual mean square, nan when there are no error df."""
        if self.residual_df <= 0:
            return float("nan")
        return self.residual_ss / self.residual_df

    @property
    def r_squared(self) -> float:
        """Fraction of total variability explained by the model terms."""
        if self.total_ss == 0:
            return float("nan")
        return 1.0 - self.residual_ss / self.total_ss

    def row(self, source: str) -> AnovaRow:
        """Return the row for ``source``.

        Raises:
            KeyError: If no such term was fitted.
        """
        for r in self.rows:
            if r.source == source:
                return r
        raise KeyError(f"no ANOVA term named {source!r}")

    def allocation(self) -> Dict[str, float]:
        """Variance allocation per source, plus ``"residual"``.

        Values sum to 1 (up to floating-point error).
        """
        result = {r.source: r.allocation for r in self.rows}
        if self.total_ss > 0:
            result["residual"] = self.residual_ss / self.total_ss
        else:
            result["residual"] = float("nan")
        return result

    def significant(self, alpha: float = 0.05) -> List[str]:
        """Sources whose F test rejects at level ``alpha``."""
        return [r.source for r in self.rows if r.p == r.p and r.p < alpha]

    def ranked_sources(self) -> List[str]:
        """Sources sorted by descending variance allocation."""
        return [r.source for r in sorted(self.rows, key=lambda r: -r.allocation)]

    def format_table(self) -> str:
        """Render a classic ANOVA table as plain text."""
        header = (
            f"ANOVA: {self.response}\n"
            f"{'Source':<24}{'DF':>5}{'SS':>14}{'MS':>14}"
            f"{'F':>10}{'p':>10}{'Alloc%':>9}"
        )
        lines = [header, "-" * len(header.splitlines()[-1])]
        for r in self.rows:
            f_str = f"{r.f:10.3f}" if r.f == r.f else f"{'--':>10}"
            p_str = f"{r.p:10.4f}" if r.p == r.p else f"{'--':>10}"
            lines.append(
                f"{r.source:<24}{r.df:>5}{r.ss:>14.5g}{r.ms:>14.5g}"
                f"{f_str}{p_str}{100 * r.allocation:>8.2f}%"
            )
        if self.total_ss > 0:
            resid_alloc = 100.0 * self.residual_ss / self.total_ss
        else:
            resid_alloc = float("nan")
        ms = self.residual_ms
        ms_str = f"{ms:>14.5g}" if ms == ms else f"{'--':>14}"
        lines.append(
            f"{'residual':<24}{self.residual_df:>5}{self.residual_ss:>14.5g}"
            f"{ms_str}{'--':>10}{'--':>10}{resid_alloc:>8.2f}%"
        )
        lines.append(
            f"{'total':<24}{self.total_df:>5}{self.total_ss:>14.5g}"
            f"{'':>14}{'':>10}{'':>10}{100.0:>8.2f}%"
        )
        return "\n".join(lines)


def _effect_columns(
    levels: Sequence[Hashable], observed: Sequence[Hashable]
) -> np.ndarray:
    """Sum-to-zero effect-coded columns for a categorical factor.

    A factor with L levels contributes L-1 columns.  Level ``i < L-1`` maps
    to the indicator of level i; the last level maps to -1 in every column.
    """
    level_index = {lev: i for i, lev in enumerate(levels)}
    n_levels = len(levels)
    n = len(observed)
    cols = np.zeros((n, max(n_levels - 1, 0)))
    for row, value in enumerate(observed):
        idx = level_index[value]
        if idx < n_levels - 1:
            cols[row, idx] = 1.0
        else:
            cols[row, :] = -1.0
    return cols


def _interaction_columns(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise products of the given effect-coded blocks."""
    result = blocks[0]
    for block in blocks[1:]:
        n = result.shape[0]
        cols = [
            result[:, i] * block[:, j]
            for i in range(result.shape[1])
            for j in range(block.shape[1])
        ]
        result = np.column_stack(cols) if cols else np.zeros((n, 0))
    return result


def anova(
    data: "Sequence[Mapping[str, object]] | object",
    response: str,
    factors: Sequence[str],
    interactions: Optional[Sequence[Tuple[str, ...]]] = None,
    response_name: Optional[str] = None,
) -> AnovaResult:
    """Fixed-effects ANOVA on long-format data.

    Args:
        data: Either a sequence of records (dicts) — each holding one
            observation of the response plus the factor levels under
            which it was measured — or a columnar
            :class:`repro.results.RecordTable`, whose response column is
            consumed as an array without materializing dicts.
        response: Key of the response variable in each record.
        factors: Factor names (record keys) to include as main effects.
        interactions: Optional interaction terms, each a tuple of factor
            names, e.g. ``[("os", "firewall")]``.  Every factor referenced
            must also appear in ``factors``.
        response_name: Label for the table (defaults to ``response``).

    Returns:
        An :class:`AnovaResult` with one row per term, sequential sums of
        squares, F tests against the residual, and per-term variance
        allocation.

    Raises:
        ValueError: On empty data, missing keys, or single-level factors.
    """
    from repro.results import RecordTable  # local: avoid import cycles

    if not factors:
        raise ValueError("anova requires at least one factor")
    interactions = list(interactions or [])
    for term in interactions:
        for f in term:
            if f not in factors:
                raise ValueError(
                    f"interaction {term} references unknown factor {f!r}"
                )

    if isinstance(data, RecordTable):
        if not len(data):
            raise ValueError("anova requires at least one observation")
        y = np.asarray(data.column(response), dtype=float)
        observed_by_factor = {f: data.values(f) for f in factors}
    else:
        records = list(data)
        if not records:
            raise ValueError("anova requires at least one observation")
        y = np.array([float(rec[response]) for rec in records])  # type: ignore[arg-type]
        observed_by_factor = {
            f: [rec[f] for rec in records] for f in factors
        }
    n = y.size
    grand_mean = float(y.mean())
    total_ss = float(((y - grand_mean) ** 2).sum())
    total_df = n - 1

    # Effect-coded blocks per factor.
    factor_levels: Dict[str, List[Hashable]] = {}
    factor_blocks: Dict[str, np.ndarray] = {}
    for f in factors:
        observed = observed_by_factor[f]
        levels = sorted(set(observed), key=repr)
        if len(levels) < 2:
            raise ValueError(
                f"factor {f!r} has a single level {levels!r}; cannot test it"
            )
        factor_levels[f] = levels
        factor_blocks[f] = _effect_columns(levels, observed)

    # Term list: main effects first (in given order), then interactions.
    terms: List[Tuple[str, np.ndarray]] = []
    for f in factors:
        terms.append((f, factor_blocks[f]))
    for term in interactions:
        name = ":".join(term)
        terms.append((name, _interaction_columns([factor_blocks[f] for f in term])))

    # Sequential (Type I) sums of squares via incremental least squares.
    intercept = np.ones((n, 1))
    design = intercept
    prev_rss = total_ss
    raw_rows: List[Tuple[str, int, float]] = []
    for name, block in terms:
        design = np.hstack([design, block])
        coef, _, rank, _ = np.linalg.lstsq(design, y, rcond=None)
        resid = y - design @ coef
        rss = float(resid @ resid)
        ss_term = max(prev_rss - rss, 0.0)
        raw_rows.append((name, block.shape[1], ss_term))
        prev_rss = rss

    residual_ss = prev_rss
    model_df = sum(df for _, df, _ in raw_rows)
    residual_df = total_df - model_df

    rows: List[AnovaRow] = []
    mse = residual_ss / residual_df if residual_df > 0 else float("nan")
    for name, df, ss in raw_rows:
        ms = ss / df if df > 0 else float("nan")
        if residual_df > 0 and mse > 0:
            f_stat = ms / mse
            p = float(_sps.f.sf(f_stat, df, residual_df))
        else:
            f_stat = float("nan")
            p = float("nan")
        alloc = ss / total_ss if total_ss > 0 else float("nan")
        rows.append(AnovaRow(name, df, ss, ms, f_stat, p, alloc))

    return AnovaResult(
        rows=rows,
        residual_ss=residual_ss,
        residual_df=residual_df,
        total_ss=total_ss,
        total_df=total_df,
        response=response_name or response,
        grand_mean=grand_mean,
    )
