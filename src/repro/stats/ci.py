"""Confidence intervals for simulation output analysis.

Monte-Carlo estimates of the paper's security indicators are always reported
with a confidence interval: t-based intervals for means, Wilson intervals
for attack-success proportions, and bootstrap percentile intervals for
statistics without a convenient sampling distribution (e.g. medians of
heavily skewed Time-To-Attack samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy import stats as _sps


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval.

    Attributes:
        estimate: The point estimate.
        low / high: Interval bounds.
        level: Confidence level, e.g. ``0.95``.
        n: Sample size behind the estimate.
        entropy: When the producing routine drew fresh OS entropy for an
            omitted ``rng`` (bootstrap), the ``SeedSequence`` entropy it
            drew — recorded so the exact interval can be reproduced with
            ``default_rng(SeedSequence(entropy))``. ``None`` for
            deterministic intervals or caller-provided generators.
    """

    estimate: float
    low: float
    high: float
    level: float
    n: int
    entropy: Optional[int] = None

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = int(round(self.level * 100))
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}] ({pct}% CI, n={self.n})"


def mean_ci(values: Sequence[float], level: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of ``values``.

    For ``n == 1`` the interval degenerates to the point estimate.

    Raises:
        ValueError: If ``values`` is empty or ``level`` not in (0, 1).
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute a CI from an empty sample")
    mean = float(arr.mean())
    n = int(arr.size)
    if n == 1:
        return ConfidenceInterval(mean, mean, mean, level, 1)
    sem = float(arr.std(ddof=1)) / math.sqrt(n)
    t_crit = float(_sps.t.ppf(0.5 + level / 2.0, df=n - 1))
    return ConfidenceInterval(mean, mean - t_crit * sem, mean + t_crit * sem, level, n)


def proportion_ci(
    successes: int, trials: int, level: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because attack-success
    probabilities in well-diversified systems are close to 0, where the
    Wald interval badly undercovers.

    Raises:
        ValueError: On impossible counts or levels.
    """
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    p_hat = successes / trials
    z = float(_sps.norm.ppf(0.5 + level / 2.0))
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    # Guard against floating-point sliver: the interval must contain the
    # point estimate (relevant at p_hat = 0 or 1).
    low = min(low, p_hat)
    high = max(high, p_hat)
    return ConfidenceInterval(p_hat, low, high, level, trials)


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    level: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap interval for an arbitrary statistic.

    Args:
        values: The observed sample.
        statistic: Function of a 1-D array returning a scalar.
        level: Confidence level.
        n_resamples: Number of bootstrap resamples.
        rng: Generator for reproducibility.  When omitted, fresh OS
            entropy is drawn via ``SeedSequence()`` and recorded on the
            returned interval's ``entropy`` field (same policy as
            ``Session`` run seeds), so even ad-hoc bootstraps stay
            replayable.

    Raises:
        ValueError: If the sample is empty.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    entropy: Optional[int] = None
    if rng is None:
        seed_seq = np.random.SeedSequence()
        entropy = int(seed_seq.entropy)
        rng = np.random.default_rng(seed_seq)
    estimate = float(statistic(arr))
    if arr.size == 1:
        return ConfidenceInterval(
            estimate, estimate, estimate, level, 1, entropy
        )
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    resampled = arr[idx]
    boot_stats = np.apply_along_axis(statistic, 1, resampled)
    alpha = (1.0 - level) / 2.0
    low = float(np.quantile(boot_stats, alpha))
    high = float(np.quantile(boot_stats, 1.0 - alpha))
    return ConfidenceInterval(
        estimate, low, high, level, int(arr.size), entropy
    )
