"""Parametric distributions for stochastic model timing.

Stage durations, activity firing times and plant noise are all expressed as
:class:`Distribution` objects.  Each distribution knows how to sample itself
from a :class:`numpy.random.Generator` and how to report its analytical
mean/variance, which the CTMC validation path (:mod:`repro.san.ctmc`) uses.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class Distribution(ABC):
    """A one-dimensional random variable."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one realization."""

    @abstractmethod
    def mean(self) -> float:
        """Analytical expectation."""

    @abstractmethod
    def variance(self) -> float:
        """Analytical variance."""

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` realizations (vectorized where possible)."""
        return np.array([self.sample(rng) for _ in range(size)])

    @property
    def is_exponential(self) -> bool:
        """Whether this is memoryless — enables exact CTMC conversion."""
        return False


@dataclass(frozen=True)
class Deterministic(Distribution):
    """A constant: always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"deterministic delay must be >= 0, got {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with ``rate`` (mean ``1/rate``)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=size)

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    @property
    def is_exponential(self) -> bool:
        return True


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"need low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


@dataclass(frozen=True)
class Weibull(Distribution):
    """Weibull with ``shape`` k and ``scale`` λ.

    ``shape < 1`` models decreasing hazard (early successes dominate, a
    common model for exploit attempts against a vulnerable target);
    ``shape > 1`` models wear-in / increasing hazard.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be > 0")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=size)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal with parameters ``mu`` and ``sigma`` of the underlying normal."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=size)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang (sum of ``k`` exponentials with the given ``rate``)."""

    k: int
    rate: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, 1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self.k, 1.0 / self.rate, size=size)

    def mean(self) -> float:
        return self.k / self.rate

    def variance(self) -> float:
        return self.k / (self.rate * self.rate)


@dataclass(frozen=True)
class Triangular(Distribution):
    """Triangular on ``[low, high]`` with the given ``mode``."""

    low: float
    mode: float
    high: float

    def __post_init__(self) -> None:
        if not (self.low <= self.mode <= self.high):
            raise ValueError(
                f"need low <= mode <= high, got ({self.low}, {self.mode}, {self.high})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.triangular(self.low, self.mode, self.high))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.triangular(self.low, self.mode, self.high, size=size)

    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def variance(self) -> float:
        a, c, b = self.low, self.mode, self.high
        return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0


@dataclass(frozen=True)
class Bernoulli(Distribution):
    """Bernoulli with success probability ``p`` (values 0.0 / 1.0)."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.random() < self.p)

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return (rng.random(size) < self.p).astype(float)

    def mean(self) -> float:
        return self.p

    def variance(self) -> float:
        return self.p * (1.0 - self.p)
