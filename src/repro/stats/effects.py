"""Effect sizes and main-effect estimation for designed experiments."""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence

import numpy as np

from repro.stats.anova import AnovaResult


def eta_squared(result: AnovaResult, source: str) -> float:
    """Classical eta² of ``source``: SS_source / SS_total."""
    row = result.row(source)
    if result.total_ss == 0:
        return float("nan")
    return row.ss / result.total_ss


def omega_squared(result: AnovaResult, source: str) -> float:
    """Less-biased omega² effect size of ``source``.

    omega² = (SS - df·MSE) / (SS_total + MSE).  Clamped at 0 from below.
    """
    row = result.row(source)
    mse = result.residual_ms
    if mse != mse or result.total_ss + mse == 0:
        return float("nan")
    value = (row.ss - row.df * mse) / (result.total_ss + mse)
    return max(value, 0.0)


def main_effects(
    data: Sequence[Mapping[str, object]],
    response: str,
    factors: Sequence[str],
) -> Dict[str, Dict[Hashable, float]]:
    """Per-level main effects: mean response at each level minus grand mean.

    Args:
        data: Long-format records.
        response: Response key.
        factors: Factors to estimate.

    Returns:
        ``{factor: {level: effect}}``.  For a two-level factor, the
        difference of the two effects equals the classical "effect" of
        moving the factor from low to high.

    Raises:
        ValueError: On empty data.
    """
    records = list(data)
    if not records:
        raise ValueError("main_effects requires at least one observation")
    y = np.array([float(rec[response]) for rec in records])  # type: ignore[arg-type]
    grand = float(y.mean())
    effects: Dict[str, Dict[Hashable, float]] = {}
    for f in factors:
        levels: Dict[Hashable, List[float]] = {}
        for rec, value in zip(records, y):
            levels.setdefault(rec[f], []).append(float(value))
        effects[f] = {
            level: float(np.mean(vals)) - grand for level, vals in levels.items()
        }
    return effects


def effect_magnitudes(
    effects: Dict[str, Dict[Hashable, float]]
) -> Dict[str, float]:
    """Collapse per-level effects to one magnitude per factor.

    The magnitude is the range (max - min) of the level effects — for a
    two-level factor this is the classical effect estimate.  Useful for
    tornado-style rankings.
    """
    return {
        factor: (max(levels.values()) - min(levels.values())) if levels else 0.0
        for factor, levels in effects.items()
    }
