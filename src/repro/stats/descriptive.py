"""Descriptive statistics for measurement batches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample.

    Attributes:
        n: Sample size.
        mean: Arithmetic mean.
        std: Sample standard deviation (ddof=1; 0 for n < 2).
        minimum / maximum: Extremes.
        median: 50th percentile.
        q25 / q75: Quartiles.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q25: float
    q75: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n < 1:
            return float("nan")
        return self.std / math.sqrt(self.n) if self.n > 0 else float("nan")

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); nan if mean is 0."""
        if self.mean == 0:
            return float("nan")
        return self.std / abs(self.mean)

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises:
        ValueError: If ``values`` is empty.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        q25=float(np.percentile(arr, 25)),
        q75=float(np.percentile(arr, 75)),
    )
