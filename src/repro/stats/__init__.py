"""Statistics substrate.

Provides the quantitative machinery behind the paper's methodology:

* :mod:`repro.stats.distributions` — parametric distributions used for
  activity/stage durations in the stochastic models.
* :mod:`repro.stats.descriptive` — summary statistics.
* :mod:`repro.stats.ci` — confidence intervals (t-based, bootstrap, Wilson).
* :mod:`repro.stats.anova` — n-way fixed-effects ANOVA with interactions
  and variance-allocation tables (the paper's "Diversity Assessment" step).
* :mod:`repro.stats.effects` — effect sizes (eta², omega²) and main-effect
  estimation from designed experiments.
"""

from repro.stats.anova import AnovaResult, AnovaRow, anova
from repro.stats.ci import (
    ConfidenceInterval,
    bootstrap_ci,
    mean_ci,
    proportion_ci,
)
from repro.stats.descriptive import Summary, summarize
from repro.stats.distributions import (
    Bernoulli,
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
    Triangular,
    Uniform,
    Weibull,
)
from repro.stats.effects import eta_squared, main_effects, omega_squared
from repro.stats.fitting import (
    FitResult,
    best_fit,
    empirical_cdf,
    fit_exponential,
    fit_lognormal,
    fit_weibull,
)

__all__ = [
    "AnovaResult",
    "AnovaRow",
    "Bernoulli",
    "ConfidenceInterval",
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "FitResult",
    "LogNormal",
    "Summary",
    "Triangular",
    "Uniform",
    "Weibull",
    "anova",
    "best_fit",
    "bootstrap_ci",
    "empirical_cdf",
    "eta_squared",
    "fit_exponential",
    "fit_lognormal",
    "fit_weibull",
    "main_effects",
    "mean_ci",
    "omega_squared",
    "proportion_ci",
    "summarize",
]
