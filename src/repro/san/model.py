"""SAN model elements.

A stochastic activity network consists of **places** holding tokens,
**activities** (timed or instantaneous) that move tokens, **input gates**
(an enabling predicate plus a marking-transformation function) and
**output gates** (a marking-transformation function).  Timed activities may
have several **cases**, selected probabilistically at completion — this is
how a SAN expresses, e.g., "the root-access attempt succeeds with
probability p and fails otherwise".

Marking-dependent behaviour is pervasive in SANs, so distributions, case
probabilities and gate behaviour may all be callables of the current
marking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.stats.distributions import Distribution, Exponential

if TYPE_CHECKING:
    from repro.san.compiled import CompiledSAN


class SANMarking:
    """A mutable token assignment used during simulation.

    Supports dict-style access; unknown places read as 0.  ``freeze()``
    produces a hashable snapshot for state-space exploration.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self._counts: Dict[str, int] = dict(counts or {})
        for place, count in self._counts.items():
            if count < 0:
                raise ValueError(f"negative tokens in place {place!r}: {count}")

    def __getitem__(self, place: str) -> int:
        return self._counts.get(place, 0)

    def __setitem__(self, place: str, count: int) -> None:
        if count < 0:
            raise ValueError(f"cannot set place {place!r} to {count}")
        if count == 0:
            self._counts.pop(place, None)
        else:
            self._counts[place] = count

    def add(self, place: str, delta: int) -> None:
        """Add ``delta`` tokens (may be negative).

        Raises:
            ValueError: If the count would go negative.
        """
        self[place] = self[place] + delta

    def copy(self) -> "SANMarking":
        """An independent copy."""
        return SANMarking(dict(self._counts))

    def freeze(self) -> Tuple[Tuple[str, int], ...]:
        """A hashable snapshot (sorted, zero counts omitted)."""
        return tuple(sorted((p, c) for p, c in self._counts.items() if c))

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (zero counts omitted)."""
        return {p: c for p, c in self._counts.items() if c}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SANMarking) and self.freeze() == other.freeze()

    def __hash__(self) -> int:
        raise TypeError("SANMarking is mutable; hash its freeze() instead")

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{c}" for p, c in sorted(self._counts.items()) if c)
        return f"SANMarking({{{inner}}})"


MarkingPredicate = Callable[[SANMarking], bool]
MarkingFunction = Callable[[SANMarking], None]
ProbabilityLike = Union[float, Callable[[SANMarking], float]]
DistributionLike = Union[Distribution, Callable[[SANMarking], Distribution]]


@dataclass(frozen=True)
class InputGate:
    """An enabling predicate and an input function.

    Attributes:
        name: Gate name.
        predicate: Enabling condition on the marking.
        function: Applied to the marking when the activity completes.
        reads: Places the predicate depends on, when statically known
            (``None`` = unknown; the compiled fast path then re-checks
            the activity after every completion).
        writes: Places the input function may modify, when statically
            known (``()`` for a pure guard; ``None`` = unknown, which
            forces the compiled fast path to reconcile every activity
            after this gate fires).
    """

    name: str
    predicate: MarkingPredicate
    function: MarkingFunction
    reads: Optional[Tuple[str, ...]] = None
    writes: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class OutputGate:
    """A marking transformation applied on activity completion.

    Attributes:
        name: Gate name.
        function: Applied to the marking when the case is selected.
        writes: Places the function may modify, when statically known
            (``None`` = unknown; see :class:`InputGate`).
    """

    name: str
    function: MarkingFunction
    writes: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class Case:
    """One probabilistic outcome of an activity.

    Attributes:
        probability: Selection probability (may depend on the marking);
            the probabilities of an activity's cases must sum to 1.
        output_places: ``{place: tokens}`` produced when selected.
        output_gates: Gates applied when selected.
        label: Optional human-readable tag (e.g. ``"success"``).
    """

    probability: ProbabilityLike
    output_places: Tuple[Tuple[str, int], ...] = ()
    output_gates: Tuple[OutputGate, ...] = ()
    label: str = ""

    def probability_in(self, marking: SANMarking) -> float:
        """Evaluate the case probability in ``marking``."""
        p = (
            self.probability(marking)
            if callable(self.probability)
            else self.probability
        )
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"case probability {p} outside [0, 1]")
        return float(p)


def _normalize_places(places: Optional[Dict[str, int]]) -> Tuple[Tuple[str, int], ...]:
    items = tuple(sorted((places or {}).items()))
    for place, count in items:
        if count < 1:
            raise ValueError(f"arc to {place!r} must carry >= 1 tokens")
    return items


@dataclass
class _ActivityBase:
    """Shared structure of timed and instantaneous activities."""

    name: str
    input_places: Tuple[Tuple[str, int], ...] = ()
    input_gates: Tuple[InputGate, ...] = ()
    cases: Tuple[Case, ...] = ()

    def is_enabled(self, marking: SANMarking) -> bool:
        """SAN enabling rule: input arcs marked and all gate predicates hold."""
        for place, needed in self.input_places:
            if marking[place] < needed:
                return False
        for gate in self.input_gates:
            if not gate.predicate(marking):
                return False
        return True

    def case_probabilities(self, marking: SANMarking) -> List[float]:
        """Evaluate all case probabilities; verify they sum to 1.

        Raises:
            ValueError: If the probabilities do not sum to 1 (tolerance
                1e-9).
        """
        probs = [case.probability_in(marking) for case in self.cases]
        if abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(
                f"case probabilities of activity {self.name!r} sum to "
                f"{sum(probs)}, expected 1"
            )
        return probs

    def complete(self, marking: SANMarking, case_index: int) -> None:
        """Apply the completion semantics in place.

        Order (standard SAN semantics): input gate functions, input arc
        token removal, then the selected case's output arcs and gates.
        """
        for gate in self.input_gates:
            gate.function(marking)
        for place, count in self.input_places:
            marking.add(place, -count)
        case = self.cases[case_index]
        for place, count in case.output_places:
            marking.add(place, count)
        for gate in case.output_gates:
            gate.function(marking)


@dataclass
class TimedActivity(_ActivityBase):
    """An activity whose completion takes random time.

    Attributes:
        distribution: Completion-time distribution, possibly
            marking-dependent.
    """

    distribution: DistributionLike = field(default_factory=lambda: Exponential(1.0))

    def distribution_in(self, marking: SANMarking) -> Distribution:
        """Resolve the (possibly marking-dependent) distribution."""
        if callable(self.distribution) and not isinstance(
            self.distribution, Distribution
        ):
            return self.distribution(marking)
        return self.distribution  # type: ignore[return-value]


@dataclass
class InstantaneousActivity(_ActivityBase):
    """An activity that completes in zero time.

    Attributes:
        weight: Relative selection weight among enabled instantaneous
            activities of equal priority.
        priority: Higher fires first.
    """

    weight: float = 1.0
    priority: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


def simple_case(
    output_places: Optional[Dict[str, int]] = None,
    probability: ProbabilityLike = 1.0,
    output_gates: Sequence[OutputGate] = (),
    label: str = "",
) -> Case:
    """Convenience constructor for a :class:`Case`."""
    return Case(
        probability=probability,
        output_places=_normalize_places(output_places),
        output_gates=tuple(output_gates),
        label=label,
    )


class SANModel:
    """A complete stochastic activity network.

    Places are implicit (any string used by an arc or gate); the model
    tracks the initial marking and the activity list.
    """

    def __init__(self, name: str = "san") -> None:
        self.name = name
        self._initial: Dict[str, int] = {}
        self._activities: Dict[str, Union[TimedActivity, InstantaneousActivity]] = {}
        self._compiled: Optional["CompiledSAN"] = None

    def compile(self) -> "CompiledSAN":
        """The compiled fast-path representation of this model.

        Precomputes per-activity read/write place sets, the
        enabling-dependency index and case-selection CDFs (see
        :mod:`repro.san.compiled`).  The result is cached; any model
        mutation (new activity, changed initial marking) invalidates it.
        """
        if self._compiled is None:
            from repro.san.compiled import CompiledSAN

            self._compiled = CompiledSAN(self)
        return self._compiled

    def __getstate__(self) -> Dict[str, object]:
        # The compiled cache is derived data; rebuilding it on the far
        # side of a pickle (process backend) is cheap and keeps payloads
        # small.
        state = self.__dict__.copy()
        state["_compiled"] = None
        return state

    @property
    def activities(self) -> List[Union[TimedActivity, InstantaneousActivity]]:
        """All activities in insertion order."""
        return list(self._activities.values())

    @property
    def timed_activities(self) -> List[TimedActivity]:
        """Timed activities only."""
        return [a for a in self._activities.values() if isinstance(a, TimedActivity)]

    @property
    def instantaneous_activities(self) -> List[InstantaneousActivity]:
        """Instantaneous activities only."""
        return [
            a
            for a in self._activities.values()
            if isinstance(a, InstantaneousActivity)
        ]

    def set_initial(self, place: str, tokens: int) -> None:
        """Set the initial token count of ``place``.

        Raises:
            ValueError: If ``tokens`` is negative.
        """
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        self._initial[place] = tokens
        self._compiled = None

    def initial_marking(self) -> SANMarking:
        """A fresh mutable copy of the initial marking."""
        return SANMarking(dict(self._initial))

    def add_timed_activity(
        self,
        name: str,
        distribution: DistributionLike,
        input_places: Optional[Dict[str, int]] = None,
        input_gates: Sequence[InputGate] = (),
        cases: Sequence[Case] = (),
        output_places: Optional[Dict[str, int]] = None,
    ) -> TimedActivity:
        """Add a timed activity.

        Either pass explicit ``cases`` or a single implicit case via
        ``output_places``.

        Raises:
            ValueError: On duplicate names or conflicting case arguments.
        """
        cases = self._resolve_cases(name, cases, output_places)
        activity = TimedActivity(
            name=name,
            input_places=_normalize_places(input_places),
            input_gates=tuple(input_gates),
            cases=cases,
            distribution=distribution,
        )
        self._register(activity)
        return activity

    def add_instantaneous_activity(
        self,
        name: str,
        input_places: Optional[Dict[str, int]] = None,
        input_gates: Sequence[InputGate] = (),
        cases: Sequence[Case] = (),
        output_places: Optional[Dict[str, int]] = None,
        weight: float = 1.0,
        priority: int = 1,
    ) -> InstantaneousActivity:
        """Add an instantaneous activity (see :meth:`add_timed_activity`)."""
        cases = self._resolve_cases(name, cases, output_places)
        activity = InstantaneousActivity(
            name=name,
            input_places=_normalize_places(input_places),
            input_gates=tuple(input_gates),
            cases=cases,
            weight=weight,
            priority=priority,
        )
        self._register(activity)
        return activity

    def _resolve_cases(
        self,
        name: str,
        cases: Sequence[Case],
        output_places: Optional[Dict[str, int]],
    ) -> Tuple[Case, ...]:
        if cases and output_places:
            raise ValueError(
                f"activity {name!r}: pass either cases or output_places, not both"
            )
        if cases:
            return tuple(cases)
        return (simple_case(output_places or {}),)

    def _register(
        self, activity: Union[TimedActivity, InstantaneousActivity]
    ) -> None:
        if activity.name in self._activities:
            raise ValueError(f"duplicate activity {activity.name!r}")
        self._activities[activity.name] = activity
        self._compiled = None

    def activity(self, name: str) -> Union[TimedActivity, InstantaneousActivity]:
        """Look up an activity by name.

        Raises:
            KeyError: If absent.
        """
        return self._activities[name]

    def places(self) -> List[str]:
        """All place names referenced by the initial marking or arcs."""
        names = set(self._initial)
        for activity in self._activities.values():
            names.update(p for p, _ in activity.input_places)
            for case in activity.cases:
                names.update(p for p, _ in case.output_places)
        return sorted(names)
