"""Compiled fast-path structures for SAN execution.

:meth:`SANModel.compile` lowers a model into a :class:`CompiledSAN`:
per-activity read/write place sets, an enabling-dependency index
(place → activities whose enabling reads it), precomputed case-selection
CDFs and resolved static distributions.
:class:`~repro.san.simulator.SANSimulator` executes it with a
pending-completion heap and incremental enabling reconciliation, so a
completion only re-examines activities whose enabling could actually
have changed.

Stream parity with the legacy interpreter
-----------------------------------------
``numpy.random.Generator.choice(n, p=probs)`` is internally a
single-uniform inverse-CDF draw: it normalizes ``cumsum(p)`` and runs a
right-sided ``searchsorted`` on one ``rng.random()`` double.  The
compiled path precomputes that CDF once per activity (or per candidate
set, for instantaneous weight splits) and selects with
:func:`bisect.bisect_right` on one ``rng.random()`` draw — the same
float operations on the same generator state.  Every firing therefore
consumes exactly the draws the legacy interpreter would, and the two
paths produce **bit-identical** trajectories from the same seed; the
equivalence suite in ``tests/test_san_compiled.py`` enforces this.

Gates hold opaque callables, so their place footprints are unknown
unless declared (:class:`~repro.san.model.InputGate` ``reads`` /
``writes``).  Undeclared footprints degrade gracefully: an activity with
an undeclared-read gate is re-checked after every completion, and a
firing with an undeclared-write gate reconciles every activity — legacy
behaviour, still correct, just less incremental.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.san.model import (
    InstantaneousActivity,
    SANMarking,
    SANModel,
    TimedActivity,
)
from repro.stats.choice import WeightCdfCache, choice_cdf
from repro.stats.distributions import Distribution, Exponential

Activity = Union[TimedActivity, InstantaneousActivity]

#: Re-export: the case-selection CDF is exactly the ``Generator.choice``
#: table (see :mod:`repro.stats.choice` for the parity rationale).
case_cdf = choice_cdf


def _static_case_cdf(activity: Activity) -> Optional[List[float]]:
    """Precompute the case CDF when every probability is a constant.

    Returns ``None`` for marking-dependent probabilities *and* for
    statically invalid ones — the latter fall back to the dynamic path,
    which raises the same errors at the same firing the legacy
    interpreter would.
    """
    probs: List[float] = []
    for case in activity.cases:
        if callable(case.probability):
            return None
        p = float(case.probability)
        if not 0.0 <= p <= 1.0:
            return None
        probs.append(p)
    if not probs or abs(sum(probs) - 1.0) > 1e-9:
        return None
    return case_cdf(probs)


class CompiledActivity:
    """Precomputed execution data for one activity."""

    __slots__ = (
        "activity",
        "name",
        "order",
        "arcs",
        "gates",
        "labels",
        "static_cdf",
        "single_case",
        "static_dist",
        "exp_scale",
        "weight",
        "priority",
        "reads",
        "reads_unknown",
        "case_writes",
        "case_deltas",
    )

    def __init__(self, activity: Activity, order: int) -> None:
        self.activity = activity
        self.name = activity.name
        self.order = order
        self.arcs: Tuple[Tuple[str, int], ...] = activity.input_places
        self.gates = activity.input_gates
        self.labels: Tuple[str, ...] = tuple(
            case.label or str(i) for i, case in enumerate(activity.cases)
        )
        self.static_cdf = _static_case_cdf(activity)
        self.single_case = len(activity.cases) == 1

        if isinstance(activity, TimedActivity):
            dist = activity.distribution
            self.static_dist: Optional[Distribution] = (
                dist if isinstance(dist, Distribution) else None
            )
            # Exponential sampling is the inner-loop common case; the
            # precomputed scale lets the simulator call
            # ``rng.exponential(scale)`` directly — the same draw
            # ``Exponential.sample`` performs, minus two Python frames.
            self.exp_scale: Optional[float] = (
                1.0 / dist.rate if isinstance(dist, Exponential) else None
            )
            self.weight = 0.0
            self.priority = 0
        else:
            self.static_dist = None
            self.exp_scale = None
            self.weight = activity.weight
            self.priority = activity.priority

        reads: Set[str] = {place for place, _ in activity.input_places}
        self.reads_unknown = False
        for gate in activity.input_gates:
            if gate.reads is None:
                self.reads_unknown = True
            else:
                reads.update(gate.reads)
        self.reads: Tuple[str, ...] = tuple(sorted(reads))

        writes_list: List[Optional[Tuple[str, ...]]] = []
        base: Optional[Set[str]] = {place for place, _ in activity.input_places}
        for gate in activity.input_gates:
            if gate.writes is None:
                base = None
                break
            base.update(gate.writes)
        for case in activity.cases:
            if base is None:
                writes_list.append(None)
                continue
            case_places: Optional[Set[str]] = set(base)
            case_places.update(place for place, _ in case.output_places)
            for gate in case.output_gates:
                if gate.writes is None:
                    case_places = None
                    break
                case_places.update(gate.writes)
            writes_list.append(
                None if case_places is None else tuple(sorted(case_places))
            )
        self.case_writes: Tuple[Optional[Tuple[str, ...]], ...] = tuple(
            writes_list
        )

        # Gateless completion collapses to a pure token delta (inputs
        # consumed, case outputs produced); enabling guarantees the
        # inputs are covered, so the simulator can apply it straight to
        # the token-count dict without per-place bounds checks.
        if activity.input_gates:
            deltas: Tuple[Optional[Tuple[Tuple[str, int], ...]], ...] = tuple(
                None for _ in activity.cases
            )
        else:
            per_case: List[Optional[Tuple[Tuple[str, int], ...]]] = []
            for case in activity.cases:
                if case.output_gates:
                    per_case.append(None)
                    continue
                net: Dict[str, int] = {}
                for place, count in activity.input_places:
                    net[place] = net.get(place, 0) - count
                for place, count in case.output_places:
                    net[place] = net.get(place, 0) + count
                per_case.append(
                    tuple((p, d) for p, d in net.items() if d != 0)
                )
            deltas = tuple(per_case)
        self.case_deltas = deltas

    def enabled(self, counts: Dict[str, int], marking: SANMarking) -> bool:
        """SAN enabling rule against the fast token-count view."""
        for place, needed in self.arcs:
            if counts.get(place, 0) < needed:
                return False
        for gate in self.gates:
            if not gate.predicate(marking):
                return False
        return True


class CompiledSAN:
    """A :class:`SANModel` lowered for fast interpretation.

    Attributes:
        timed: Compiled timed activities, registration order.
        instantaneous: Compiled instantaneous activities, registration
            order.
        timed_readers / inst_readers: ``place → activity indices`` whose
            enabling reads that place.
        timed_always / inst_always: Indices with undeclared gate reads —
            re-checked after every completion.
    """

    __slots__ = (
        "timed",
        "timed_by_name",
        "instantaneous",
        "timed_readers",
        "inst_readers",
        "timed_always",
        "inst_always",
        "_weight_cdfs",
    )

    def __init__(self, model: SANModel) -> None:
        self.timed: List[CompiledActivity] = [
            CompiledActivity(a, i)
            for i, a in enumerate(model.timed_activities)
        ]
        self.timed_by_name: Dict[str, CompiledActivity] = {
            ca.name: ca for ca in self.timed
        }
        self.instantaneous: List[CompiledActivity] = [
            CompiledActivity(a, i)
            for i, a in enumerate(model.instantaneous_activities)
        ]
        self.timed_readers = self._reader_index(self.timed)
        self.inst_readers = self._reader_index(self.instantaneous)
        self.timed_always: Tuple[int, ...] = tuple(
            ca.order for ca in self.timed if ca.reads_unknown
        )
        self.inst_always: Tuple[int, ...] = tuple(
            ca.order for ca in self.instantaneous if ca.reads_unknown
        )
        self._weight_cdfs = WeightCdfCache(
            [ca.weight for ca in self.instantaneous]
        )

    @staticmethod
    def _reader_index(
        compiled: Sequence[CompiledActivity],
    ) -> Dict[str, Tuple[int, ...]]:
        readers: Dict[str, List[int]] = {}
        for ca in compiled:
            for place in ca.reads:
                readers.setdefault(place, []).append(ca.order)
        return {place: tuple(idx) for place, idx in readers.items()}

    def weight_cdf(self, candidates: Tuple[int, ...]) -> List[float]:
        """Weight-split CDF over instantaneous ``candidates`` (cached)."""
        return self._weight_cdfs.cdf(candidates)
