"""Discrete-event execution of SAN models.

Implements the standard SAN semantics:

* An activity is **activated** when it becomes enabled; a timed activity
  samples its completion time on activation.
* If a marking change disables an activated activity before completion,
  the activation is **aborted** (its sampled completion is discarded).
* When the activity completes, the input gates fire, input arcs consume
  tokens, a **case** is chosen according to the case distribution, and the
  selected case's output arcs/gates apply.
* Enabled **instantaneous activities** complete before any timed activity,
  highest priority first, ties broken by weight.

Activities that remain enabled across a completion keep their sampled
completion times (no resampling), matching the behaviour of mainstream SAN
tools for non-memoryless distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:
    from repro.exec.runner import ExperimentRunner
    from repro.exec.seeding import SeedLike

from repro.san.model import (
    InstantaneousActivity,
    SANMarking,
    SANModel,
    TimedActivity,
)

CompletionHook = Callable[[float, str, str, SANMarking], None]


@dataclass
class SimulationRun:
    """Outcome of a single SAN replication.

    Attributes:
        final_marking: Marking when the run ended.
        end_time: Clock value at the end of the run.
        stop_time: Time the stop predicate first held (nan if never).
        completions: ``(time, activity, case_label)`` triples.
    """

    final_marking: SANMarking
    end_time: float
    stop_time: float
    completions: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def stopped(self) -> bool:
        """Whether the stop predicate held during the run."""
        return not math.isnan(self.stop_time)


class SANSimulator:
    """Executes a :class:`~repro.san.model.SANModel`."""

    def __init__(self, model: SANModel) -> None:
        self.model = model

    def simulate(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[SANMarking], bool]] = None,
        initial: Optional[SANMarking] = None,
        on_completion: Optional[CompletionHook] = None,
        max_completions: int = 1_000_000,
    ) -> SimulationRun:
        """Run one replication up to ``horizon``.

        Args:
            horizon: Simulation end time.
            rng: Random generator for this replication.
            stop: Optional predicate; the run stops as soon as it holds.
            initial: Override the model's initial marking.
            on_completion: Hook invoked after every activity completion
                with ``(time, activity, case_label, marking)``.
            max_completions: Guard against instantaneous-activity loops.

        Returns:
            A :class:`SimulationRun`.

        Raises:
            RuntimeError: If ``max_completions`` is exceeded.
        """
        marking = (initial.copy() if initial is not None
                   else self.model.initial_marking())
        now = 0.0
        completions: List[Tuple[float, str, str]] = []
        stop_time = float("nan")

        if stop is not None and stop(marking):
            return SimulationRun(marking, 0.0, 0.0, completions)

        # activity name -> sampled absolute completion time
        pending: Dict[str, float] = {}

        def fire(activity: Union[TimedActivity, InstantaneousActivity]) -> None:
            nonlocal marking
            probs = activity.case_probabilities(marking)
            case_index = int(rng.choice(len(probs), p=probs))
            label = activity.cases[case_index].label or str(case_index)
            activity.complete(marking, case_index)
            completions.append((now, activity.name, label))
            if on_completion is not None:
                on_completion(now, activity.name, label, marking)

        count = 0
        while True:
            if count >= max_completions:
                raise RuntimeError(
                    f"exceeded {max_completions} completions; "
                    "likely an instantaneous-activity loop"
                )

            # 1. Fire instantaneous activities to quiescence.
            inst = [
                a
                for a in self.model.instantaneous_activities
                if a.is_enabled(marking)
            ]
            if inst:
                top = max(a.priority for a in inst)
                candidates = [a for a in inst if a.priority == top]
                weights = np.array([c.weight for c in candidates])
                chosen = candidates[
                    int(rng.choice(len(candidates), p=weights / weights.sum()))
                ]
                fire(chosen)
                count += 1
                if stop is not None and stop(marking):
                    stop_time = now
                    break
                continue

            # 2. Reconcile timed activations with the current marking.
            for activity in self.model.timed_activities:
                enabled = activity.is_enabled(marking)
                if enabled and activity.name not in pending:
                    dist = activity.distribution_in(marking)
                    pending[activity.name] = now + dist.sample(rng)
                elif not enabled and activity.name in pending:
                    del pending[activity.name]  # aborted activation

            if not pending:
                break  # dead marking

            # 3. Advance to the earliest completion.
            next_name = min(pending, key=lambda n: (pending[n], n))
            next_time = pending.pop(next_name)
            if next_time > horizon:
                now = horizon
                break
            now = next_time
            fire(self.model.activity(next_name))  # type: ignore[arg-type]
            count += 1
            if stop is not None and stop(marking):
                stop_time = now
                break

        end_time = min(now, horizon)
        return SimulationRun(marking, end_time, stop_time, completions)

    def _replicate(
        self,
        horizon: float,
        stop: Optional[Callable[[SANMarking], bool]],
        rng: np.random.Generator,
    ) -> SimulationRun:
        """Runner work unit: one replication on its own generator."""
        return self.simulate(horizon, rng, stop=stop)

    def batch(
        self,
        horizon: float,
        replications: int,
        rng: "SeedLike" = None,
        stop: Optional[Callable[[SANMarking], bool]] = None,
        runner: Optional["ExperimentRunner"] = None,
    ) -> List[SimulationRun]:
        """Run ``replications`` independent replications.

        Execution modes mirror
        :meth:`repro.attacks.campaign.AttackCampaign.run_batch`: passing
        a :class:`numpy.random.Generator` without a ``runner`` keeps the
        historical sequential shared-generator streams; passing a
        ``runner`` (or a plain seed) spawns one independent stream per
        replication so every backend returns identical runs.  The
        ``process`` backend additionally requires the model and ``stop``
        predicate to be picklable (no lambdas).

        Raises:
            ValueError: If ``replications < 1``.
        """
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        if runner is None and isinstance(rng, np.random.Generator):
            return [
                self.simulate(horizon, rng, stop=stop)
                for _ in range(replications)
            ]
        from repro.exec import ExperimentRunner

        active = runner or ExperimentRunner()
        return active.run_replications(
            self._replicate, replications, seed=rng, common_args=(horizon, stop)
        )
