"""Discrete-event execution of SAN models.

Implements the standard SAN semantics:

* An activity is **activated** when it becomes enabled; a timed activity
  samples its completion time on activation.
* If a marking change disables an activated activity before completion,
  the activation is **aborted** (its sampled completion is discarded).
* When the activity completes, the input gates fire, input arcs consume
  tokens, a **case** is chosen according to the case distribution, and the
  selected case's output arcs/gates apply.
* Enabled **instantaneous activities** complete before any timed activity,
  highest priority first, ties broken by weight.

Activities that remain enabled across a completion keep their sampled
completion times (no resampling), matching the behaviour of mainstream SAN
tools for non-memoryless distributions.

Two interpreters implement these semantics:

* the **compiled fast path** (default) runs the
  :class:`~repro.san.compiled.CompiledSAN` lowering — incremental
  enabling reconciliation over a dependency index, a pending-completion
  heap, and precomputed single-uniform case selection;
* the **legacy interpreter** (``SANSimulator(model, compiled=False)``)
  re-scans every activity per completion and draws cases via
  ``rng.choice(p=...)``.

Both consume the random stream identically, so they produce bit-equal
trajectories from the same seed (see ``tests/test_san_compiled.py``).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:
    from repro.exec.runner import ExperimentRunner
    from repro.exec.seeding import SeedLike

from repro.san.model import (
    InstantaneousActivity,
    SANMarking,
    SANModel,
    TimedActivity,
)

CompletionHook = Callable[[float, str, str, SANMarking], None]


@dataclass
class SimulationRun:
    """Outcome of a single SAN replication.

    Attributes:
        final_marking: Marking when the run ended.
        end_time: Clock value at the end of the run.
        stop_time: Time the stop predicate first held (nan if never).
        completions: ``(time, activity, case_label)`` triples.
    """

    final_marking: SANMarking
    end_time: float
    stop_time: float
    completions: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def stopped(self) -> bool:
        """Whether the stop predicate held during the run."""
        return not math.isnan(self.stop_time)


class SANSimulator:
    """Executes a :class:`~repro.san.model.SANModel`.

    Args:
        model: The model to execute.
        compiled: Use the compiled fast path (default).  ``False``
            selects the legacy re-scanning interpreter; both produce
            bit-identical runs from the same generator state.
    """

    def __init__(self, model: SANModel, compiled: bool = True) -> None:
        self.model = model
        self.compiled = compiled

    def simulate(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[SANMarking], bool]] = None,
        initial: Optional[SANMarking] = None,
        on_completion: Optional[CompletionHook] = None,
        max_completions: int = 1_000_000,
    ) -> SimulationRun:
        """Run one replication up to ``horizon``.

        Args:
            horizon: Simulation end time.
            rng: Random generator for this replication.
            stop: Optional predicate; the run stops as soon as it holds.
            initial: Override the model's initial marking.
            on_completion: Hook invoked after every activity completion
                with ``(time, activity, case_label, marking)``.
            max_completions: Guard against instantaneous-activity loops.

        Returns:
            A :class:`SimulationRun`.

        Raises:
            RuntimeError: If ``max_completions`` is exceeded.
        """
        if self.compiled:
            return self._simulate_compiled(
                horizon, rng, stop, initial, on_completion, max_completions
            )
        return self._simulate_legacy(
            horizon, rng, stop, initial, on_completion, max_completions
        )

    # ------------------------------------------------------------------
    # compiled fast path
    # ------------------------------------------------------------------

    def _simulate_compiled(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[SANMarking], bool]],
        initial: Optional[SANMarking],
        on_completion: Optional[CompletionHook],
        max_completions: int,
    ) -> SimulationRun:
        marking = (initial.copy() if initial is not None
                   else self.model.initial_marking())
        now = 0.0
        completions: List[Tuple[float, str, str]] = []
        stop_time = float("nan")

        if stop is not None and stop(marking):
            return SimulationRun(marking, 0.0, 0.0, completions)

        compiled = self.model.compile()
        timed = compiled.timed
        timed_by_name = compiled.timed_by_name
        inst = compiled.instantaneous
        counts = marking._counts  # shared mutable dict; fast reads
        rng_random = rng.random

        # Timed activations: name -> (absolute time, epoch); the heap
        # holds (time, name, epoch) with lazy invalidation, so the pop
        # order matches the legacy min() over (time, name).
        pending: Dict[str, Tuple[float, int]] = {}
        heap: List[Tuple[float, str, int]] = []
        epoch = 0

        inst_enabled = {
            ca.order for ca in inst if ca.enabled(counts, marking)
        }
        dirty_timed = set(range(len(timed)))

        def fire(ca) -> int:
            """Complete ``ca``: select a case (one uniform) and apply it."""
            cdf = ca.static_cdf
            if cdf is None:
                # Marking-dependent (or statically invalid) probabilities:
                # evaluate and validate exactly like the legacy path.
                cdf = ca.activity.case_probabilities(marking)
                cdf = np.asarray(cdf, dtype=np.float64).cumsum()
                cdf /= cdf[-1]
                cdf = cdf.tolist()
            u = rng_random()
            case_index = 0 if ca.single_case else bisect_right(cdf, u)
            deltas = ca.case_deltas[case_index]
            if deltas is None:
                ca.activity.complete(marking, case_index)
            else:
                for place, delta in deltas:
                    value = counts.get(place, 0) + delta
                    if value:
                        counts[place] = value
                    else:
                        counts.pop(place, None)
            label = ca.labels[case_index]
            completions.append((now, ca.name, label))
            if on_completion is not None:
                on_completion(now, ca.name, label, marking)
            return case_index

        timed_readers = compiled.timed_readers
        inst_readers = compiled.inst_readers
        timed_always = compiled.timed_always
        inst_always = compiled.inst_always
        all_timed = range(len(timed))
        has_inst = bool(inst)

        def mark_dirty(ca, case_index: int) -> None:
            """Queue re-checks for activities the completion may affect."""
            writes = ca.case_writes[case_index]
            if writes is None:
                dirty_timed.update(all_timed)
                recheck = range(len(inst))
            else:
                for place in writes:
                    hit = timed_readers.get(place)
                    if hit:
                        dirty_timed.update(hit)
                if timed_always:
                    dirty_timed.update(timed_always)
                if not has_inst:
                    return
                touched_inst: set = set(inst_always)
                for place in writes:
                    hit = inst_readers.get(place)
                    if hit:
                        touched_inst.update(hit)
                recheck = touched_inst
            for i in recheck:
                if inst[i].enabled(counts, marking):
                    inst_enabled.add(i)
                else:
                    inst_enabled.discard(i)

        count = 0
        while True:
            if count >= max_completions:
                raise RuntimeError(
                    f"exceeded {max_completions} completions; "
                    "likely an instantaneous-activity loop"
                )

            # 1. Fire instantaneous activities to quiescence.
            if inst_enabled:
                candidates = sorted(inst_enabled)
                if len(candidates) > 1:
                    top = max(inst[i].priority for i in candidates)
                    candidates = [
                        i for i in candidates if inst[i].priority == top
                    ]
                if len(candidates) == 1:
                    rng_random()  # the legacy rng.choice(1, ...) draw
                    chosen = inst[candidates[0]]
                else:
                    cdf = compiled.weight_cdf(tuple(candidates))
                    chosen = inst[candidates[bisect_right(cdf, rng_random())]]
                case_index = fire(chosen)
                mark_dirty(chosen, case_index)
                count += 1
                if stop is not None and stop(marking):
                    stop_time = now
                    break
                continue

            # 2. Reconcile touched timed activations with the marking.
            if dirty_timed:
                for i in sorted(dirty_timed):
                    ca = timed[i]
                    if ca.enabled(counts, marking):
                        if ca.name not in pending:
                            scale = ca.exp_scale
                            if scale is not None:
                                t = now + float(rng.exponential(scale))
                            else:
                                dist = ca.static_dist
                                if dist is None:
                                    dist = ca.activity.distribution_in(marking)
                                t = now + dist.sample(rng)
                            epoch += 1
                            pending[ca.name] = (t, epoch)
                            heappush(heap, (t, ca.name, epoch))
                    elif ca.name in pending:
                        del pending[ca.name]  # aborted activation
                dirty_timed.clear()

            if not pending:
                break  # dead marking

            # 3. Advance to the earliest valid completion.
            while True:
                next_time, next_name, ep = heap[0]
                rec = pending.get(next_name)
                if rec is not None and rec[1] == ep:
                    break
                heappop(heap)  # stale (aborted / superseded) entry
            if next_time > horizon:
                now = horizon
                break
            heappop(heap)
            del pending[next_name]
            now = next_time
            ca = timed_by_name[next_name]
            case_index = fire(ca)
            dirty_timed.add(ca.order)  # fired: eligible for re-activation
            mark_dirty(ca, case_index)
            count += 1
            if stop is not None and stop(marking):
                stop_time = now
                break

        end_time = min(now, horizon)
        return SimulationRun(marking, end_time, stop_time, completions)

    # ------------------------------------------------------------------
    # legacy interpreter
    # ------------------------------------------------------------------

    def _simulate_legacy(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[SANMarking], bool]],
        initial: Optional[SANMarking],
        on_completion: Optional[CompletionHook],
        max_completions: int,
    ) -> SimulationRun:
        marking = (initial.copy() if initial is not None
                   else self.model.initial_marking())
        now = 0.0
        completions: List[Tuple[float, str, str]] = []
        stop_time = float("nan")

        if stop is not None and stop(marking):
            return SimulationRun(marking, 0.0, 0.0, completions)

        # activity name -> sampled absolute completion time
        pending: Dict[str, float] = {}

        def fire(activity: Union[TimedActivity, InstantaneousActivity]) -> None:
            nonlocal marking
            probs = activity.case_probabilities(marking)
            case_index = int(rng.choice(len(probs), p=probs))
            label = activity.cases[case_index].label or str(case_index)
            activity.complete(marking, case_index)
            completions.append((now, activity.name, label))
            if on_completion is not None:
                on_completion(now, activity.name, label, marking)

        count = 0
        while True:
            if count >= max_completions:
                raise RuntimeError(
                    f"exceeded {max_completions} completions; "
                    "likely an instantaneous-activity loop"
                )

            # 1. Fire instantaneous activities to quiescence.
            inst = [
                a
                for a in self.model.instantaneous_activities
                if a.is_enabled(marking)
            ]
            if inst:
                top = max(a.priority for a in inst)
                candidates = [a for a in inst if a.priority == top]
                weights = np.array([c.weight for c in candidates])
                chosen = candidates[
                    int(rng.choice(len(candidates), p=weights / weights.sum()))
                ]
                fire(chosen)
                count += 1
                if stop is not None and stop(marking):
                    stop_time = now
                    break
                continue

            # 2. Reconcile timed activations with the current marking.
            for activity in self.model.timed_activities:
                enabled = activity.is_enabled(marking)
                if enabled and activity.name not in pending:
                    dist = activity.distribution_in(marking)
                    pending[activity.name] = now + dist.sample(rng)
                elif not enabled and activity.name in pending:
                    del pending[activity.name]  # aborted activation

            if not pending:
                break  # dead marking

            # 3. Advance to the earliest completion.
            next_name = min(pending, key=lambda n: (pending[n], n))
            next_time = pending.pop(next_name)
            if next_time > horizon:
                now = horizon
                break
            now = next_time
            fire(self.model.activity(next_name))  # type: ignore[arg-type]
            count += 1
            if stop is not None and stop(marking):
                stop_time = now
                break

        end_time = min(now, horizon)
        return SimulationRun(marking, end_time, stop_time, completions)

    def _replicate(
        self,
        horizon: float,
        stop: Optional[Callable[[SANMarking], bool]],
        rng: np.random.Generator,
    ) -> SimulationRun:
        """Runner work unit: one replication on its own generator."""
        return self.simulate(horizon, rng, stop=stop)

    def batch(
        self,
        horizon: float,
        replications: int,
        rng: "SeedLike" = None,
        stop: Optional[Callable[[SANMarking], bool]] = None,
        runner: Optional["ExperimentRunner"] = None,
        batch_size: Optional[int] = None,
    ) -> List[SimulationRun]:
        """Run ``replications`` independent replications.

        Execution modes mirror
        :meth:`repro.attacks.campaign.AttackCampaign.run_batch`: passing
        a :class:`numpy.random.Generator` without a ``runner`` keeps the
        historical sequential shared-generator streams; passing a
        ``runner`` (or a plain seed) spawns one independent stream per
        replication so every backend returns identical runs.  The
        ``process`` backend additionally requires the model and ``stop``
        predicate to be picklable (no lambdas).

        With ``batch_size=k`` the replications run on the vectorized
        structure-of-arrays engine (:mod:`repro.san.batched`) as
        ``ceil(replications / k)`` batch work units of up to ``k`` lanes
        each, one spawned seed per unit.  ``batch_size=1`` is
        bit-identical to the scalar runner path from the same root seed;
        larger batches are distribution-identical (the draws are
        consumed in batched order).  Models the SoA lowering cannot
        express fall back lane-by-lane to the scalar engine inside each
        unit.

        Raises:
            TypeError: If ``replications`` or ``batch_size`` is not an
                integer.
            ValueError: If ``replications < 1`` or ``batch_size < 1``.
        """
        from repro.exec import ExperimentRunner, validate_batch_args

        validate_batch_args(replications, batch_size)
        if batch_size is None:
            if runner is None and isinstance(rng, np.random.Generator):
                return [
                    self.simulate(horizon, rng, stop=stop)
                    for _ in range(replications)
                ]
            active = runner or ExperimentRunner()
            return active.run_replications(
                self._replicate,
                replications,
                seed=rng,
                common_args=(horizon, stop),
            )
        active = runner or ExperimentRunner()
        batches = active.run_batched_replications(
            self._batch_unit,
            replications,
            batch_size,
            seed=rng,
            common_args=(horizon, stop),
        )
        return [run for unit in batches for run in unit]

    def _batch_unit(
        self,
        horizon: float,
        stop: Optional[Callable[[SANMarking], bool]],
        size: int,
        rng: np.random.Generator,
    ) -> List[SimulationRun]:
        """Runner work unit: one SoA batch of ``size`` lanes."""
        from repro.san.batched import SANBatchEngine

        return SANBatchEngine(self.model).run(horizon, size, rng, stop=stop)
