"""A fluent builder for SAN models.

Wraps :class:`~repro.san.model.SANModel` with terse helpers for the
patterns that dominate attack models: probabilistic stage transitions,
guard predicates and counters.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.san.model import (
    Case,
    InputGate,
    OutputGate,
    SANMarking,
    SANModel,
    simple_case,
)
from repro.stats.distributions import Distribution, Exponential


class SANBuilder:
    """Builds a :class:`SANModel` incrementally.

    Example:
        >>> builder = SANBuilder("attack")
        >>> builder.place("initial", 1).place("root", 0)
        <...>
        >>> builder.stage("escalate", "initial", "root",
        ...               rate=0.5, success_probability=0.7,
        ...               failure_place="initial")
        <...>
        >>> model = builder.build()
    """

    def __init__(self, name: str = "san") -> None:
        self._model = SANModel(name)
        self._gate_counter = 0

    def place(self, name: str, tokens: int = 0) -> "SANBuilder":
        """Declare a place with an initial token count."""
        self._model.set_initial(name, tokens)
        return self

    def predicate_gate(
        self,
        predicate: Callable[[SANMarking], bool],
        name: Optional[str] = None,
        reads: Optional[Sequence[str]] = None,
    ) -> InputGate:
        """An input gate that only guards (identity input function).

        Args:
            predicate: Enabling condition on the marking.
            name: Gate name (auto-generated when omitted).
            reads: Places the predicate depends on, when known — lets
                the compiled fast path skip re-checking the guarded
                activity after unrelated completions.
        """
        self._gate_counter += 1
        return InputGate(
            name or f"gate_{self._gate_counter}",
            predicate=predicate,
            function=lambda marking: None,
            reads=tuple(reads) if reads is not None else None,
            writes=(),  # the identity function touches nothing
        )

    def output_gate(
        self,
        function: Callable[[SANMarking], None],
        name: Optional[str] = None,
        writes: Optional[Sequence[str]] = None,
    ) -> OutputGate:
        """An output gate applying ``function`` to the marking.

        Args:
            function: Marking transformation.
            name: Gate name (auto-generated when omitted).
            writes: Places the function may modify, when known (see
                :class:`~repro.san.model.OutputGate`).
        """
        self._gate_counter += 1
        return OutputGate(
            name or f"ogate_{self._gate_counter}",
            function,
            writes=tuple(writes) if writes is not None else None,
        )

    def stage(
        self,
        name: str,
        source: str,
        target: str,
        rate: float,
        success_probability: float = 1.0,
        failure_place: Optional[str] = None,
        guard: Optional[Callable[[SANMarking], bool]] = None,
        distribution: Optional[Distribution] = None,
    ) -> "SANBuilder":
        """Add a probabilistic attack-stage activity.

        The activity consumes one token from ``source``; with
        ``success_probability`` it produces a token in ``target``,
        otherwise in ``failure_place`` (or back in ``source`` when
        omitted, modeling a retry).

        Args:
            name: Activity name.
            source: Stage the attack is currently in.
            target: Stage reached on success.
            rate: Exponential completion rate (ignored when
                ``distribution`` is given).
            success_probability: Probability of the success case.
            failure_place: Where the token goes on failure.
            guard: Extra enabling predicate.
            distribution: Override the completion-time distribution.
        """
        if not 0.0 <= success_probability <= 1.0:
            raise ValueError(
                f"success_probability must be in [0, 1], got {success_probability}"
            )
        fail_target = failure_place if failure_place is not None else source
        cases = []
        if success_probability > 0.0:
            cases.append(
                simple_case({target: 1}, probability=success_probability,
                            label="success")
            )
        if success_probability < 1.0:
            cases.append(
                simple_case({fail_target: 1},
                            probability=1.0 - success_probability,
                            label="failure")
            )
        gates = [self.predicate_gate(guard)] if guard is not None else []
        self._model.add_timed_activity(
            name,
            distribution or Exponential(rate),
            input_places={source: 1},
            input_gates=gates,
            cases=cases,
        )
        return self

    def timed(
        self,
        name: str,
        distribution: Distribution,
        inputs: Optional[Dict[str, int]] = None,
        outputs: Optional[Dict[str, int]] = None,
        cases: Sequence[Case] = (),
        guard: Optional[Callable[[SANMarking], bool]] = None,
    ) -> "SANBuilder":
        """Add a general timed activity."""
        gates = [self.predicate_gate(guard)] if guard is not None else []
        self._model.add_timed_activity(
            name,
            distribution,
            input_places=inputs,
            input_gates=gates,
            cases=cases,
            output_places=None if cases else (outputs or {}),
        )
        return self

    def instantaneous(
        self,
        name: str,
        inputs: Optional[Dict[str, int]] = None,
        outputs: Optional[Dict[str, int]] = None,
        cases: Sequence[Case] = (),
        weight: float = 1.0,
        priority: int = 1,
        guard: Optional[Callable[[SANMarking], bool]] = None,
    ) -> "SANBuilder":
        """Add an instantaneous activity."""
        gates = [self.predicate_gate(guard)] if guard is not None else []
        self._model.add_instantaneous_activity(
            name,
            input_places=inputs,
            input_gates=gates,
            cases=cases,
            output_places=None if cases else (outputs or {}),
            weight=weight,
            priority=priority,
        )
        return self

    def build(self) -> SANModel:
        """Return the assembled model."""
        return self._model
