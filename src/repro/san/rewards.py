"""Reward variables and Monte-Carlo estimation for SAN models.

SAN-based evaluation expresses measures of interest as *reward variables*:

* A :class:`RateReward` accrues at a marking-dependent rate — e.g.
  "fraction of time the chiller is impaired" uses rate 1 while the
  impairment place is marked.
* An :class:`ImpulseReward` adds a lump sum whenever a given activity
  completes — e.g. "number of propagation events".

:class:`RewardEstimator` runs independent replications and reports
time-averaged / accumulated / instant-of-time estimates with confidence
intervals, which is exactly how the paper's security indicators are
measured against each DoE configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.san.model import SANMarking, SANModel
from repro.san.simulator import SANSimulator, SimulationRun
from repro.stats.ci import ConfidenceInterval, mean_ci, proportion_ci


@dataclass(frozen=True)
class RateReward:
    """A reward accrued continuously at a marking-dependent rate.

    Attributes:
        name: Reward name.
        rate: Function of the marking giving the accrual rate.
    """

    name: str
    rate: Callable[[SANMarking], float]


@dataclass(frozen=True)
class ImpulseReward:
    """A reward earned on activity completions.

    Attributes:
        name: Reward name.
        activity: Activity whose completions earn the reward.
        value: Impulse per completion.
    """

    name: str
    activity: str
    value: float = 1.0


@dataclass
class MonteCarloEstimate:
    """Batch estimate of one reward variable.

    Attributes:
        name: Reward name.
        samples: One accumulated value per replication.
    """

    name: str
    samples: List[float]

    def mean(self, level: float = 0.95) -> ConfidenceInterval:
        """t CI for the mean accumulated reward."""
        return mean_ci(self.samples, level=level)

    def probability_positive(self, level: float = 0.95) -> ConfidenceInterval:
        """Wilson CI for P(reward > 0) — e.g. attack-success probability."""
        positives = sum(1 for s in self.samples if s > 0)
        return proportion_ci(positives, len(self.samples), level=level)


class RewardEstimator:
    """Estimates reward variables over independent SAN replications."""

    def __init__(
        self,
        model: SANModel,
        rate_rewards: Sequence[RateReward] = (),
        impulse_rewards: Sequence[ImpulseReward] = (),
    ) -> None:
        self.model = model
        self.rate_rewards = list(rate_rewards)
        self.impulse_rewards = list(impulse_rewards)
        self._simulator = SANSimulator(model)

    def estimate(
        self,
        horizon: float,
        replications: int,
        rng: np.random.Generator,
        stop: Optional[Callable[[SANMarking], bool]] = None,
        time_averaged: bool = False,
    ) -> Dict[str, MonteCarloEstimate]:
        """Run the batch and accumulate all rewards.

        Rate rewards are integrated over time by observing the marking
        between completions (the marking is piecewise constant, so the
        integral is exact).  With ``time_averaged=True`` each rate-reward
        sample is divided by the run length.

        Returns:
            ``{reward_name: MonteCarloEstimate}``.

        Raises:
            ValueError: If ``replications < 1``.
        """
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")

        samples: Dict[str, List[float]] = {
            r.name: [] for r in self.rate_rewards
        }
        for r in self.impulse_rewards:
            samples.setdefault(r.name, [])

        for _ in range(replications):
            accumulated = {r.name: 0.0 for r in self.rate_rewards}
            impulses = {r.name: 0.0 for r in self.impulse_rewards}
            last_time = 0.0
            marking_box: List[SANMarking] = [self.model.initial_marking()]
            current_rates = {
                r.name: r.rate(marking_box[0]) for r in self.rate_rewards
            }

            def hook(
                time: float, activity: str, label: str, marking: SANMarking
            ) -> None:
                nonlocal last_time
                dt = time - last_time
                for r in self.rate_rewards:
                    accumulated[r.name] += current_rates[r.name] * dt
                    current_rates[r.name] = r.rate(marking)
                for r in self.impulse_rewards:
                    if r.activity == activity:
                        impulses[r.name] += r.value
                last_time = time
                marking_box[0] = marking

            run = self._simulator.simulate(
                horizon, rng, stop=stop, on_completion=hook
            )
            # Close the final interval up to the run end.
            dt = run.end_time - last_time
            for r in self.rate_rewards:
                accumulated[r.name] += current_rates[r.name] * dt

            duration = run.end_time if run.end_time > 0 else 1.0
            for r in self.rate_rewards:
                value = accumulated[r.name]
                samples[r.name].append(
                    value / duration if time_averaged else value
                )
            for r in self.impulse_rewards:
                samples[r.name].append(impulses[r.name])

        return {
            name: MonteCarloEstimate(name, values)
            for name, values in samples.items()
        }
