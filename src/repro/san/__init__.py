"""Stochastic Activity Networks (SAN).

The paper's SCoPE case study is modeled *"by means of the stochastic
activity networks (SAN) formalism"*.  This package implements that
formalism from scratch:

* :mod:`repro.san.model` — places, timed/instantaneous activities, case
  probabilities, input gates (predicate + function) and output gates.
* :mod:`repro.san.simulator` — discrete-event execution with the usual
  SAN activation/abort/completion semantics.
* :mod:`repro.san.rewards` — rate and impulse reward variables plus
  Monte-Carlo estimation with confidence intervals.
* :mod:`repro.san.ctmc` — exact CTMC conversion for all-exponential SANs
  (state-space exploration, transient solution, absorption analysis);
  used to validate the simulator.
* :mod:`repro.san.builder` — a fluent builder for terse model definitions.
* :mod:`repro.san.compiled` — the compiled fast-path lowering
  (``SANModel.compile()``) the simulator executes by default.
"""

from repro.san.batched import PlaceThreshold, SANBatchEngine
from repro.san.compiled import CompiledSAN
from repro.san.ctmc import CTMC, poisson_weights, san_to_ctmc
from repro.san.model import (
    Case,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    SANMarking,
    SANModel,
    TimedActivity,
)
from repro.san.builder import SANBuilder
from repro.san.rewards import (
    ImpulseReward,
    MonteCarloEstimate,
    RateReward,
    RewardEstimator,
)
from repro.san.simulator import SANSimulator, SimulationRun

__all__ = [
    "CTMC",
    "Case",
    "CompiledSAN",
    "ImpulseReward",
    "InputGate",
    "InstantaneousActivity",
    "MonteCarloEstimate",
    "OutputGate",
    "PlaceThreshold",
    "RateReward",
    "SANBatchEngine",
    "RewardEstimator",
    "SANBuilder",
    "SANMarking",
    "SANModel",
    "SANSimulator",
    "SimulationRun",
    "TimedActivity",
    "poisson_weights",
    "san_to_ctmc",
]
