"""Vectorized structure-of-arrays batch execution of SAN models.

:class:`SANBatchEngine` advances *B* independent replications ("lanes")
per step instead of one: markings live in an ``(B, n_places)`` int64
matrix, per-activity enabling is evaluated as boolean column ops,
completion times sit in an ``(B, n_activities)`` float64 matrix, and
case selection resolves whole uniform blocks at once through
:func:`repro.stats.choice.choice_batch`.  Lanes that stop, die or reach
the horizon are retired from the live mask and stop contributing work.

Determinism contract
--------------------

The batch engine is *lockstep-equivalent* to the compiled scalar
interpreter (:meth:`~repro.san.simulator.SANSimulator.simulate`): each
step performs one reconciliation phase (per activity, ascending
registration order, block-drawing ``rng.exponential(scale, size=k)`` in
lane order — a block draw consumes the generator exactly like ``k``
successive scalar draws) followed by one completion per live lane (one
case uniform per firing, per activity ascending).  With ``B == 1`` this
collapses to precisely the scalar draw sequence, so single-lane batches
are **bit-identical** to the scalar engine from the same generator
state (``tests/test_san_batched.py`` pins this).  For ``B > 1`` the
draws are consumed in a batched order, so runs are
**distribution-identical** to — not bit-equal with — the scalar path.

Models the SoA lowering cannot express (instantaneous activities,
gates, marking-dependent distributions or case probabilities,
non-exponential timings) fall back lane-by-lane to the scalar engine on
the unit's generator; results remain deterministic per seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.san.model import SANMarking, SANModel
from repro.san.simulator import SANSimulator, SimulationRun
from repro.stats.choice import choice_batch
from repro.telemetry.core import current as _current_telemetry

__all__ = ["PlaceThreshold", "SANBatchEngine", "simulate_batch"]


class PlaceThreshold:
    """Stop condition: a place holds at least ``min_tokens`` tokens.

    Callable on a single marking — so the same object drives the scalar
    engines — and vectorizable over the whole batch marking matrix via
    :meth:`batch_mask`, which keeps batched stop checks out of Python.
    """

    __slots__ = ("place", "min_tokens")

    def __init__(self, place: str, min_tokens: int = 1) -> None:
        if min_tokens < 1:
            raise ValueError(f"min_tokens must be >= 1, got {min_tokens}")
        self.place = place
        self.min_tokens = min_tokens

    def __call__(self, marking: SANMarking) -> bool:
        return marking[self.place] >= self.min_tokens

    def batch_mask(
        self, markings: np.ndarray, place_index: Dict[str, int]
    ) -> np.ndarray:
        """Boolean stop mask over a ``(lanes, n_places)`` matrix."""
        column = place_index.get(self.place)
        if column is None:
            return np.zeros(markings.shape[0], dtype=bool)
        return markings[:, column] >= self.min_tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlaceThreshold({self.place!r}, min_tokens={self.min_tokens})"


class SANBatchEngine:
    """SoA batch lowering of one :class:`~repro.san.model.SANModel`.

    Args:
        model: The model to execute; lowered through the compiled
            artifact (:meth:`SANModel.compile`).

    Attributes:
        vectorizable: Whether the model fits the SoA lowering; when
            False, :meth:`run` executes lanes on the scalar engine and
            :attr:`fallback_reason` says why.
    """

    def __init__(self, model: SANModel) -> None:
        self.model = model
        self.places: List[str] = model.places()
        self.place_index: Dict[str, int] = {
            p: i for i, p in enumerate(self.places)
        }
        self.vectorizable, self.fallback_reason = self._lower()

    def _lower(self) -> Tuple[bool, Optional[str]]:
        """Build the SoA program, or name why the model resists it."""
        compiled = self.model.compile()
        if compiled.instantaneous:
            return False, "model has instantaneous activities"
        timed = compiled.timed
        if not timed:
            return False, "model has no timed activities"
        for ca in timed:
            if ca.gates:
                return False, f"activity {ca.name!r} has input gates"
            if ca.exp_scale is None:
                return False, (
                    f"activity {ca.name!r} has a non-exponential or "
                    "marking-dependent distribution"
                )
            if not ca.single_case and ca.static_cdf is None:
                return False, (
                    f"activity {ca.name!r} has marking-dependent case "
                    "probabilities"
                )
            if any(d is None for d in ca.case_deltas):
                return False, f"activity {ca.name!r} has gated case effects"

        n_places = len(self.places)
        n_activities = len(timed)
        need = np.zeros((n_activities, n_places), dtype=np.int64)
        deltas: List[np.ndarray] = []
        cdfs: List[Optional[np.ndarray]] = []
        for i, ca in enumerate(timed):
            for place, needed in ca.arcs:
                need[i, self.place_index[place]] = needed
            case_matrix = np.zeros(
                (len(ca.case_deltas), n_places), dtype=np.int64
            )
            for c, case in enumerate(ca.case_deltas):
                for place, delta in case:
                    case_matrix[c, self.place_index[place]] = delta
            deltas.append(case_matrix)
            cdfs.append(
                None
                if ca.single_case
                else np.asarray(ca.static_cdf, dtype=np.float64)
            )
        self._need = need
        self._deltas = deltas
        self._cdfs = cdfs
        # Sparse enabling program: per activity, the input columns it
        # actually reads, and the set of activities whose enabling can
        # change when it fires (any case).  The step loop uses these to
        # keep a persistent ``enabled`` matrix up to date by touching
        # only (fired lane, affected activity) pairs instead of
        # re-evaluating the dense (lanes, activities, places) broadcast.
        self._in_cols = [np.flatnonzero(need[i]) for i in range(n_activities)]
        self._in_need = [
            need[i, cols] for i, cols in enumerate(self._in_cols)
        ]
        place_users = [
            np.flatnonzero(need[:, p]).tolist() for p in range(n_places)
        ]
        self._affected: List[List[int]] = []
        for i in range(n_activities):
            touched = np.flatnonzero(np.any(deltas[i] != 0, axis=0))
            acts: set = set()
            for p in touched.tolist():
                acts.update(place_users[p])
            self._affected.append(sorted(acts))
        self._scales = np.array([ca.exp_scale for ca in timed])
        self._names = [ca.name for ca in timed]
        self._labels = [ca.labels for ca in timed]
        # The scalar heap pops the earliest (time, name) pair; a
        # name-sorted column permutation makes argmin reproduce that
        # tie-break (argmin returns the first minimum, i.e. the lowest
        # name).
        self._perm = np.array(
            sorted(range(n_activities), key=lambda i: timed[i].name),
            dtype=np.int64,
        )
        return True, None

    # ------------------------------------------------------------------

    def _marking_of(self, row: np.ndarray) -> SANMarking:
        """A lane's marking row as a :class:`SANMarking`."""
        return SANMarking(
            {
                place: int(row[i])
                for i, place in enumerate(self.places)
                if row[i]
            }
        )

    def _stop_mask(
        self,
        stop: Callable[[SANMarking], bool],
        markings: np.ndarray,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stop mask over ``rows`` of the live marking matrix.

        The vectorized path evaluates the whole matrix (one column op)
        and subsets; the Python fallback only materializes the requested
        rows.
        """
        batch_mask = getattr(stop, "batch_mask", None)
        if batch_mask is not None:
            full = np.asarray(
                batch_mask(markings, self.place_index), dtype=bool
            )
            if rows is None or rows.size == markings.shape[0]:
                return full
            return full[rows]
        if rows is not None:
            markings = markings[rows]
        return np.fromiter(
            (bool(stop(self._marking_of(row))) for row in markings),
            dtype=bool,
            count=markings.shape[0],
        )

    def run(
        self,
        horizon: float,
        size: int,
        rng: np.random.Generator,
        stop: Optional[Callable[[SANMarking], bool]] = None,
        max_steps: int = 1_000_000,
    ) -> List[SimulationRun]:
        """Run ``size`` lanes to completion on one generator.

        Args:
            horizon: Simulation end time.
            size: Number of lanes (replications) in the batch.
            rng: The batch unit's generator.
            stop: Optional stop predicate; a :class:`PlaceThreshold`
                evaluates vectorized, any other callable is applied
                per-lane on a marking view.
            max_steps: Guard against runaway models.

        Returns:
            One :class:`~repro.san.simulator.SimulationRun` per lane.

        Raises:
            ValueError: If ``size < 1``.
            RuntimeError: If ``max_steps`` is exceeded.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not self.vectorizable:
            simulator = SANSimulator(self.model)
            runs = [
                simulator.simulate(horizon, rng, stop=stop)
                for _ in range(size)
            ]
            self._record_telemetry(size, 0, 0)
            return runs

        initial = self.model.initial_marking()
        if stop is not None and stop(initial):
            # Scalar semantics: the stop predicate already holds at t=0,
            # before any draw — every lane returns immediately.
            self._record_telemetry(size, 0, 0)
            return [
                SimulationRun(self.model.initial_marking(), 0.0, 0.0, [])
                for _ in range(size)
            ]

        n_places = len(self.places)
        marking0 = np.zeros(n_places, dtype=np.int64)
        for place, count in initial.as_dict().items():
            marking0[self.place_index[place]] = count

        # Dense SoA state over the *live* lanes only; retired lanes are
        # compacted out so fancy indexing never touches dead rows.
        lane_ids = np.arange(size, dtype=np.int64)
        markings = np.repeat(marking0[None, :], size, axis=0)
        pending = np.full((size, len(self._names)), np.inf)
        now = np.zeros(size)
        # Persistent enabling matrix — a pure function of ``markings``,
        # maintained incrementally: when a lane fires, only the
        # activities whose input places that firing touched are
        # re-evaluated, and only for the rows that fired.
        enabled0 = (marking0[None, :] >= self._need).all(axis=1)
        enabled = np.repeat(enabled0[None, :], size, axis=0)
        # Per-original-lane outputs, written once at retirement.
        final_markings = np.repeat(marking0[None, :], size, axis=0)
        end_times = np.zeros(size)
        stop_times = np.full(size, np.nan)
        # Event log buffers, materialized to per-lane completion lists
        # once at the end.
        ev_lane: List[np.ndarray] = []
        ev_time: List[np.ndarray] = []
        ev_act: List[np.ndarray] = []
        ev_case: List[np.ndarray] = []

        perm = self._perm
        scales = self._scales
        cdfs = self._cdfs
        deltas = self._deltas
        in_cols = self._in_cols
        in_need = self._in_need
        affected = self._affected
        arange = np.arange(size, dtype=np.int64)

        steps = 0
        lane_steps = 0
        while markings.shape[0]:
            if steps >= max_steps:
                raise RuntimeError(
                    f"exceeded {max_steps} batch steps; "
                    "likely a runaway model"
                )
            steps += 1
            n_live = markings.shape[0]
            lane_steps += n_live
            retired: Optional[np.ndarray] = None

            # Phase 1 — reconcile activations with the markings.  The
            # fresh-activation block is drawn in (activity ascending,
            # lane ascending) order — the order the scalar loop
            # reconciles its dirty set in — and
            # ``standard_exponential(n) * scale`` is bit-equal to ``n``
            # successive ``exponential(scale)`` draws.
            active = np.isfinite(pending)
            stale = active & ~enabled
            if stale.any():
                pending[stale] = np.inf  # aborted activations
            fresh = enabled & ~active
            if fresh.any():
                jj, rows = np.nonzero(fresh.T)
                pending[rows, jj] = now[rows] + (
                    rng.standard_exponential(jj.size) * scales[jj]
                )

            # Phase 2 — retire dead lanes, advance the rest to their
            # earliest completion.  After reconciliation ``pending`` is
            # finite exactly where ``enabled``, so the enabling matrix
            # doubles as the armed mask.
            has_pending = enabled.any(axis=1)
            if has_pending.all():
                armed_rows = arange[:n_live]
                permuted = pending[:, perm]
            else:
                dead = ~has_pending
                lanes = lane_ids[dead]
                end_times[lanes] = np.minimum(now[dead], horizon)
                final_markings[lanes] = markings[dead]
                retired = dead
                armed_rows = np.flatnonzero(has_pending)
                if armed_rows.size == 0:
                    keep = has_pending  # == ~retired
                    markings = markings[keep]
                    pending = pending[keep]
                    now = now[keep]
                    lane_ids = lane_ids[keep]
                    enabled = enabled[keep]
                    continue
                permuted = pending[armed_rows][:, perm]
            winner = np.argmin(permuted, axis=1)
            next_times = permuted[arange[: winner.size], winner]
            fired = perm[winner]
            over = next_times > horizon
            if over.any():
                keep_f = ~over
                rows = armed_rows[over]
                lanes = lane_ids[rows]
                end_times[lanes] = horizon
                final_markings[lanes] = markings[rows]
                if retired is None:
                    retired = np.zeros(n_live, dtype=bool)
                retired[rows] = True
                firing_rows = armed_rows[keep_f]
                fired = fired[keep_f]
                fire_times = next_times[keep_f]
            else:
                firing_rows = armed_rows
                fire_times = next_times
            n_f = fired.size
            if n_f:
                now[firing_rows] = fire_times
                pending[firing_rows, fired] = np.inf

                # Phase 3 — complete: one case uniform per firing lane,
                # in one block ordered (activity ascending, lane
                # ascending) — the scalar consumption order at B=1.
                first = fired[0]
                if bool((fired == first).all()):
                    # Lockstep fast path: every lane fired the same
                    # activity, so the (activity, lane) order is just
                    # the lane order — no sort, a single segment.
                    seg_bounds = [0, n_f]
                    seg_acts = [int(first)]
                    rows_o = firing_rows
                    times_o = fire_times
                    ev_act.append(fired)
                else:
                    order = np.argsort(fired, kind="stable")
                    fired_o = fired[order]
                    rows_o = firing_rows[order]
                    times_o = fire_times[order]
                    cuts = np.flatnonzero(fired_o[1:] != fired_o[:-1]) + 1
                    seg_bounds = [0] + cuts.tolist() + [n_f]
                    seg_acts = fired_o[seg_bounds[:-1]].tolist()
                    ev_act.append(fired_o)
                uniforms = rng.random(n_f)
                ev_lane.append(lane_ids[rows_o])
                ev_time.append(times_o)
                for s, j in enumerate(seg_acts):
                    lo, hi = seg_bounds[s], seg_bounds[s + 1]
                    rows = rows_o if hi - lo == n_f else rows_o[lo:hi]
                    cdf = cdfs[j]
                    if cdf is None:
                        cases = np.zeros(hi - lo, dtype=np.int64)
                    else:
                        cases = choice_batch(cdf, uniforms[lo:hi])
                    case_matrix = deltas[j]
                    n_cases = case_matrix.shape[0]
                    if n_cases == 1:
                        markings[rows] += case_matrix[0]
                    else:
                        for c in range(n_cases):
                            chosen = cases == c
                            if chosen.any():
                                markings[rows[chosen]] += case_matrix[c]
                    ev_case.append(cases)
                    # Incremental enabling refresh for the rows whose
                    # markings just changed.
                    for j2 in affected[j]:
                        cols = in_cols[j2]
                        needs = in_need[j2]
                        if cols.size == 1:
                            enabled[rows, j2] = (
                                markings[rows, cols[0]] >= needs[0]
                            )
                        else:
                            enabled[rows, j2] = (
                                markings[rows[:, None], cols[None, :]]
                                >= needs[None, :]
                            ).all(axis=1)

                # Phase 4 — stop checks for the lanes that just fired.
                if stop is not None:
                    mask = self._stop_mask(stop, markings, firing_rows)
                    if mask.any():
                        rows = firing_rows[mask]
                        lanes = lane_ids[rows]
                        stopped_at = now[rows]
                        stop_times[lanes] = stopped_at
                        end_times[lanes] = stopped_at
                        final_markings[lanes] = markings[rows]
                        if retired is None:
                            retired = np.zeros(n_live, dtype=bool)
                        retired[rows] = True

            if retired is not None:
                keep = ~retired
                markings = markings[keep]
                pending = pending[keep]
                now = now[keep]
                lane_ids = lane_ids[keep]
                enabled = enabled[keep]

        self._record_telemetry(size, steps, lane_steps)

        if ev_lane:
            all_lane = np.concatenate(ev_lane)
            # Steps append in time order and a lane fires at most once
            # per step, so a stable sort by lane keeps each lane's
            # events chronological.
            order = np.argsort(all_lane, kind="stable")
            all_j = np.concatenate(ev_act)[order]
            all_case = np.concatenate(ev_case)[order]
            # Object-array fancy indexing resolves every event's name
            # and label at C speed — no per-event Python loop.
            name_arr = np.array(self._names, dtype=object)
            max_cases = max(len(labels) for labels in self._labels)
            label_matrix = np.empty(
                (len(self._labels), max_cases), dtype=object
            )
            for j, labels in enumerate(self._labels):
                label_matrix[j, : len(labels)] = labels
            triples = list(
                zip(
                    np.concatenate(ev_time)[order].tolist(),
                    name_arr[all_j].tolist(),
                    label_matrix[all_j, all_case].tolist(),
                )
            )
            bounds = np.searchsorted(
                all_lane[order], np.arange(size + 1)
            ).tolist()
            completions: List[List[Tuple[float, str, str]]] = [
                triples[bounds[lane] : bounds[lane + 1]]
                for lane in range(size)
            ]
        else:
            completions = [[] for _ in range(size)]

        # Final markings dedupe heavily (most lanes end in one of a few
        # states); key rows by their raw bytes — far cheaper than
        # ``np.unique(axis=0)`` — and build one template dict per
        # distinct row, copied per lane.
        places = self.places
        row_bytes = final_markings.shape[1] * final_markings.itemsize
        buffer = np.ascontiguousarray(final_markings).tobytes()
        templates: Dict[bytes, Dict[str, int]] = {}
        new_marking = SANMarking.__new__
        runs: List[SimulationRun] = []
        for lane, (end, stop_at) in enumerate(
            zip(end_times.tolist(), stop_times.tolist())
        ):
            key = buffer[lane * row_bytes : (lane + 1) * row_bytes]
            template = templates.get(key)
            if template is None:
                template = {
                    place: count
                    for place, count in zip(
                        places, final_markings[lane].tolist()
                    )
                    if count
                }
                templates[key] = template
            # Counts are non-negative by construction, so skip the
            # validating constructor on this per-lane hot path.
            marking = new_marking(SANMarking)
            marking._counts = dict(template)
            runs.append(
                SimulationRun(marking, end, stop_at, completions[lane])
            )
        return runs

    @staticmethod
    def _record_telemetry(size: int, steps: int, lane_steps: int) -> None:
        telemetry = _current_telemetry()
        if telemetry is None:
            return
        metrics = telemetry.metrics
        metrics.inc("batch.batches")
        metrics.inc("batch.lanes", size)
        metrics.inc("batch.lane_retirements", size)
        if steps:
            metrics.inc("batch.steps", steps)
            metrics.inc("batch.lane_steps", lane_steps)


def simulate_batch(
    model: SANModel,
    horizon: float,
    size: int,
    rng: np.random.Generator,
    stop: Optional[Callable[[SANMarking], bool]] = None,
) -> List[SimulationRun]:
    """One-shot convenience wrapper around :class:`SANBatchEngine`."""
    return SANBatchEngine(model).run(horizon, size, rng, stop=stop)
