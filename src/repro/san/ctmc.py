"""Exact CTMC analysis of all-exponential SAN models.

When every timed activity of a SAN is exponentially distributed, the
marking process is a continuous-time Markov chain.  This module explores
the (tangible) state space, eliminates vanishing markings introduced by
instantaneous activities, and provides transient and absorption analysis.
It serves two purposes:

* exact answers for small models (e.g. Madan-style security quantification
  — the paper's reference for Time-To-Security-Failure), and
* validation of the Monte-Carlo simulator (:mod:`repro.san.simulator`) —
  experiment E8 in DESIGN.md.

Scaling
-------
The generator is assembled and stored as a ``scipy.sparse`` matrix, and
transient analysis uses **uniformization** (a Fox–Glynn-style truncated
Poisson sum over powers of the uniformized DTMC) instead of the dense
O(n³) matrix exponential, so ~10³–10⁴-state models answer transient
queries in milliseconds.  The dense ``expm`` path is kept for tiny chains
(and as ``method="expm"`` for cross-validation); absorption analysis
switches from dense ``numpy.linalg.solve`` to sparse direct solves above
a few hundred states.  ``transient_at`` answers many time points from a
single uniformization pass.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.linalg import expm
from scipy.sparse.linalg import spsolve

from repro.san.model import (
    InstantaneousActivity,
    SANMarking,
    SANModel,
    TimedActivity,
)
from repro.stats.distributions import Exponential

FrozenMarking = Tuple[Tuple[str, int], ...]

#: Below this state count the dense expm path is used by default — the
#: O(n³) cost is negligible and it avoids the truncation bookkeeping.
DENSE_STATE_CUTOFF = 64

#: Below this state count absorption analysis uses dense linear solves.
DENSE_SOLVE_CUTOFF = 400

#: Uniformization needs ~Λ·t matrix-vector products; past this many
#: terms the truncated sum is slower than the dense matrix exponential,
#: so ``method="auto"``-style dispatch falls back to ``expm``.
UNIFORMIZATION_MAX_TERMS = 2_000_000


def poisson_weights(q: float, tol: float = 1e-12) -> Tuple[int, List[float]]:
    """Truncated Poisson(q) pmf covering at least ``1 - tol`` mass.

    Fox–Glynn-style: start at the mode (evaluated stably in log space
    via ``lgamma``) and extend left/right, always absorbing the larger
    neighbouring weight, until the retained mass reaches ``1 - tol``.

    Returns:
        ``(left, weights)`` — ``weights[k]`` is the pmf at ``left + k``.

    Raises:
        ValueError: If ``q`` is negative.
    """
    if q < 0:
        raise ValueError(f"Poisson rate must be >= 0, got {q}")
    if q == 0.0:
        return 0, [1.0]
    mode = int(q)
    log_q = math.log(q)

    def pmf(k: int) -> float:
        return math.exp(-q + k * log_q - math.lgamma(k + 1))

    left = right = mode
    lower: List[float] = []   # weights below the mode, outward order
    upper: List[float] = [pmf(mode)]
    total = upper[0]
    w_down = pmf(mode - 1) if mode > 0 else 0.0
    w_up = pmf(mode + 1)
    target = 1.0 - tol
    while total < target:
        if w_down < total * 1e-17 and w_up < total * 1e-17:
            # Both frontier weights are below one ulp of the retained
            # mass: adding them cannot change ``total`` any more.  For
            # very large q the lgamma-based pmf carries cancellation
            # error above ``tol``, so the mass saturates short of the
            # target — stop rather than grind through subnormal tails;
            # the deficit is bounded by the pmf roundoff.
            break
        if w_down > w_up and left > 0:
            lower.append(w_down)
            total += w_down
            left -= 1
            w_down = w_down * left / q if left > 0 else 0.0
        else:
            upper.append(w_up)
            total += w_up
            right += 1
            w_up = w_up * q / (right + 1)
    return left, list(reversed(lower)) + upper


class CTMC:
    """An explicit-state CTMC over a sparse generator.

    Args:
        states: Tangible markings (frozen), in exploration order.
        generator: Generator matrix Q (rows sum to zero) — dense
            ``numpy`` array or any ``scipy.sparse`` matrix.
        initial: Initial probability vector over ``states``.

    Attributes:
        states: The tangible markings.
        initial: The initial distribution.
    """

    def __init__(
        self,
        states: Sequence[FrozenMarking],
        generator: Union[np.ndarray, sparse.spmatrix, sparse.sparray],
        initial: np.ndarray,
    ) -> None:
        self.states: List[FrozenMarking] = list(states)
        self.initial = np.asarray(initial, dtype=np.float64)
        if sparse.issparse(generator):
            self._sparse = sparse.csr_array(generator)
            self._dense: Optional[np.ndarray] = None
        else:
            self._dense = np.asarray(generator, dtype=np.float64)
            self._sparse = sparse.csr_array(self._dense)
        self._index: Dict[FrozenMarking, int] = {
            state: i for i, state in enumerate(self.states)
        }
        self._uniformized: Optional[Tuple[float, sparse.csr_array]] = None

    @property
    def n_states(self) -> int:
        """Number of tangible states."""
        return len(self.states)

    @property
    def generator(self) -> np.ndarray:
        """Dense view of the generator (materialized on demand)."""
        if self._dense is None:
            self._dense = self._sparse.toarray()
        return self._dense

    @property
    def sparse_generator(self) -> sparse.csr_array:
        """The generator in CSR form (the authoritative storage)."""
        return self._sparse

    def state_index(self, marking: FrozenMarking) -> int:
        """Index of ``marking`` (O(1) interned lookup).

        Raises:
            KeyError: If the marking is not a tangible state.
        """
        try:
            return self._index[marking]
        except KeyError:
            raise KeyError(f"unknown state {marking!r}") from None

    # ------------------------------------------------------------------
    # transient analysis
    # ------------------------------------------------------------------

    def _uniformize(self) -> Optional[Tuple[float, sparse.csr_array]]:
        """``(Λ, P)`` with ``P = I + Q/Λ`` — cached; None if Q == 0."""
        if self._uniformized is None:
            diag = self._sparse.diagonal()
            lam = float(-diag.min()) if diag.size else 0.0
            if lam <= 0.0:
                return None
            p_matrix = sparse.csr_array(
                sparse.eye_array(self.n_states, format="csr")
                + self._sparse * (1.0 / lam)
            )
            self._uniformized = (lam, p_matrix)
        return self._uniformized

    def transient_distribution(
        self, t: float, method: str = "auto", tol: float = 1e-12
    ) -> np.ndarray:
        """State distribution at time ``t``: p(t) = p(0)·e^{Qt}.

        Args:
            t: Query time.
            method: ``"auto"`` (uniformization above
                :data:`DENSE_STATE_CUTOFF` states, dense ``expm``
                below), ``"uniformization"`` or ``"expm"``.
            tol: Truncation tolerance of the uniformized Poisson sum.

        Raises:
            ValueError: If ``t < 0`` or ``method`` is unknown.
        """
        return self.transient_at([t], method=method, tol=tol)[0]

    def transient_at(
        self,
        times: Sequence[float],
        method: str = "auto",
        tol: float = 1e-12,
    ) -> np.ndarray:
        """State distributions at several times from one analysis pass.

        With uniformization, all queries share a single sweep over the
        powers ``p(0)·Pᵏ`` up to the largest truncation point, so asking
        for a whole time grid costs barely more than the farthest point.

        Returns:
            Array of shape ``(len(times), n_states)``.

        Raises:
            ValueError: If any time is negative or ``method`` is
                unknown.
        """
        times = [float(t) for t in times]
        for t in times:
            if t < 0:
                raise ValueError(f"t must be >= 0, got {t}")
        if method not in ("auto", "uniformization", "expm"):
            raise ValueError(f"unknown transient method {method!r}")
        if not times:
            return np.empty((0, self.n_states))
        if method == "auto":
            method = (
                "expm" if self.n_states <= DENSE_STATE_CUTOFF
                else "uniformization"
            )
        if method == "expm":
            q_dense = self.generator
            return np.array(
                [self.initial @ expm(q_dense * t) for t in times]
            )
        return self._transient_uniformized(times, tol)

    def _transient_uniformized(
        self, times: List[float], tol: float
    ) -> np.ndarray:
        out = np.empty((len(times), self.n_states))
        uniformized = self._uniformize()
        if uniformized is None:  # all states absorbing: p(t) = p(0)
            out[:] = self.initial
            return out
        lam, p_matrix = uniformized
        windows = [poisson_weights(lam * t, tol) for t in times]
        max_k = max(left + len(w) - 1 for left, w in windows)
        if max_k > UNIFORMIZATION_MAX_TERMS:
            # Λ·t so stiff that the truncated sum would need more
            # matvecs than the dense exponential costs — fall back.
            q_dense = self.generator
            return np.array(
                [self.initial @ expm(q_dense * t) for t in times]
            )
        vector = self.initial.copy()
        out[:] = 0.0
        for k in range(max_k + 1):
            for j, (left, weights) in enumerate(windows):
                if left <= k < left + len(weights):
                    out[j] += weights[k - left] * vector
            if k < max_k:
                vector = vector @ p_matrix
        return out

    def state_probability(
        self, t: float, predicate: Callable[[Dict[str, int]], bool]
    ) -> float:
        """P(marking satisfies ``predicate``) at time ``t``."""
        dist = self.transient_distribution(t)
        total = 0.0
        for i, state in enumerate(self.states):
            if predicate(dict(state)):
                total += float(dist[i])
        return total

    # ------------------------------------------------------------------
    # absorption analysis
    # ------------------------------------------------------------------

    def absorbing_states(self) -> List[int]:
        """Indices of states with no outgoing rate.

        The cutoff is scale-aware: a state counts as absorbing when its
        total exit rate is below ``1e-12`` × the largest exit rate in
        the chain, so models with very fast clocks (rates ≫ 1) are not
        misread by an absolute epsilon.
        """
        out = np.asarray(abs(self._sparse).sum(axis=1)).ravel()
        scale = float(out.max()) if out.size else 0.0
        tol = 1e-12 * scale if scale > 0.0 else 1e-14
        return [i for i in range(self.n_states) if out[i] < tol]

    def _submatrix(
        self, rows: Sequence[int], cols: Sequence[int]
    ) -> sparse.csr_array:
        return sparse.csr_array(
            self._sparse[np.asarray(rows, dtype=np.intp), :]
            [:, np.asarray(cols, dtype=np.intp)]
        )

    def hitting_probability(self, targets: Sequence[int]) -> np.ndarray:
        """P(eventually hit ``targets``) from every state.

        Absorbing non-target states contribute probability 0.

        Raises:
            ValueError: If ``targets`` is empty.
        """
        targets = set(targets)
        if not targets:
            raise ValueError("need at least one target state")
        absorbing = set(self.absorbing_states())
        transient = [
            i
            for i in range(self.n_states)
            if i not in targets and i not in absorbing
        ]
        x = np.zeros(self.n_states)
        for i in targets:
            x[i] = 1.0
        if transient:
            target_cols = sorted(targets)
            if self.n_states <= DENSE_SOLVE_CUTOFF:
                q_tt = self.generator[np.ix_(transient, transient)]
                rhs = -self.generator[
                    np.ix_(transient, target_cols)
                ].sum(axis=1)
                x_t = np.linalg.solve(q_tt, rhs)
            else:
                q_tt = self._submatrix(transient, transient)
                rhs = -np.asarray(
                    self._submatrix(transient, target_cols).sum(axis=1)
                ).ravel()
                x_t = spsolve(sparse.csc_matrix(q_tt), rhs)
            for idx, i in enumerate(transient):
                x[i] = float(x_t[idx])
        return x

    def mean_hitting_time(self, targets: Sequence[int]) -> np.ndarray:
        """Expected time to hit ``targets`` from every state.

        Entries are ``inf`` for states from which the targets are not hit
        almost surely (including absorbing non-target states).

        Raises:
            ValueError: If ``targets`` is empty.
        """
        targets = set(targets)
        if not targets:
            raise ValueError("need at least one target state")
        probs = self.hitting_probability(sorted(targets))
        absorbing = set(self.absorbing_states())
        transient = [
            i
            for i in range(self.n_states)
            if i not in targets and i not in absorbing
        ]
        h = np.full(self.n_states, np.inf)
        for i in targets:
            h[i] = 0.0
        certain = [i for i in transient if probs[i] > 1.0 - 1e-9]
        if certain:
            rhs = -np.ones(len(certain))
            if self.n_states <= DENSE_SOLVE_CUTOFF:
                q_tt = self.generator[np.ix_(certain, certain)]
                h_t = np.linalg.solve(q_tt, rhs)
            else:
                q_tt = sparse.csc_matrix(self._submatrix(certain, certain))
                h_t = spsolve(q_tt, rhs)
            for idx, i in enumerate(certain):
                h[i] = float(h_t[idx])
        return h


def _tangible_expansion(
    model: SANModel,
    marking: SANMarking,
    max_depth: int = 1000,
) -> List[Tuple[float, FrozenMarking]]:
    """Expand a (possibly vanishing) marking into tangible outcomes.

    Follows instantaneous activities (priority, then weight split) and
    case branches, multiplying probabilities, until no instantaneous
    activity is enabled.

    Returns:
        ``[(probability, tangible_frozen_marking), ...]`` summing to 1.

    Raises:
        RuntimeError: If expansion exceeds ``max_depth`` (vanishing loop).
    """
    results: Dict[FrozenMarking, float] = {}
    stack: List[Tuple[float, SANMarking, int]] = [(1.0, marking, 0)]
    while stack:
        prob, current, depth = stack.pop()
        if depth > max_depth:
            raise RuntimeError("vanishing-marking loop detected")
        inst = [
            a
            for a in model.instantaneous_activities
            if a.is_enabled(current)
        ]
        if not inst:
            frozen = current.freeze()
            results[frozen] = results.get(frozen, 0.0) + prob
            continue
        top = max(a.priority for a in inst)
        candidates = [a for a in inst if a.priority == top]
        total_weight = sum(c.weight for c in candidates)
        for activity in candidates:
            w = activity.weight / total_weight
            case_probs = activity.case_probabilities(current)
            for case_index, p_case in enumerate(case_probs):
                if p_case == 0.0:
                    continue
                nxt = current.copy()
                activity.complete(nxt, case_index)
                stack.append((prob * w * p_case, nxt, depth + 1))
    return [(p, m) for m, p in results.items()]


def san_to_ctmc(model: SANModel, max_states: int = 20000) -> CTMC:
    """Convert an all-exponential SAN to an explicit (sparse) CTMC.

    Args:
        model: The SAN; every timed activity must have a (possibly
            marking-dependent) :class:`Exponential` distribution.
        max_states: Safety cap on the tangible state space.

    Returns:
        The :class:`CTMC`.

    Raises:
        ValueError: If a timed activity is not exponential, or the state
            space exceeds ``max_states``.
    """
    initial_expansion = _tangible_expansion(model, model.initial_marking())
    index: Dict[FrozenMarking, int] = {}
    states: List[FrozenMarking] = []

    def intern(frozen: FrozenMarking) -> int:
        if frozen not in index:
            if len(states) >= max_states:
                raise ValueError(
                    f"state space exceeds max_states={max_states}"
                )
            index[frozen] = len(states)
            states.append(frozen)
        return index[frozen]

    rows: List[int] = []
    cols: List[int] = []
    rates: List[float] = []
    for prob, frozen in initial_expansion:
        intern(frozen)

    explored = 0
    while explored < len(states):
        src = explored
        explored += 1
        marking = SANMarking(dict(states[src]))
        for activity in model.timed_activities:
            if not activity.is_enabled(marking):
                continue
            dist = activity.distribution_in(marking)
            if not isinstance(dist, Exponential):
                raise ValueError(
                    f"activity {activity.name!r} is not exponential "
                    f"({type(dist).__name__}); CTMC conversion impossible"
                )
            rate = dist.rate
            case_probs = activity.case_probabilities(marking)
            for case_index, p_case in enumerate(case_probs):
                if p_case == 0.0:
                    continue
                nxt = marking.copy()
                activity.complete(nxt, case_index)
                for p_tang, tangible in _tangible_expansion(model, nxt):
                    dst = intern(tangible)
                    if src != dst:
                        rows.append(src)
                        cols.append(dst)
                        rates.append(rate * p_case * p_tang)

    n = len(states)
    off_diag = sparse.csr_array(
        sparse.coo_array((rates, (rows, cols)), shape=(n, n))
    )
    generator = off_diag + sparse.diags_array(
        -np.asarray(off_diag.sum(axis=1)).ravel(), format="csr"
    )

    initial = np.zeros(n)
    for prob, frozen in initial_expansion:
        initial[index[frozen]] += prob

    return CTMC(states=states, generator=generator, initial=initial)
