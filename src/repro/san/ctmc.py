"""Exact CTMC analysis of all-exponential SAN models.

When every timed activity of a SAN is exponentially distributed, the
marking process is a continuous-time Markov chain.  This module explores
the (tangible) state space, eliminates vanishing markings introduced by
instantaneous activities, and provides transient and absorption analysis.
It serves two purposes:

* exact answers for small models (e.g. Madan-style security quantification
  — the paper's reference for Time-To-Security-Failure), and
* validation of the Monte-Carlo simulator (:mod:`repro.san.simulator`) —
  experiment E8 in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from repro.san.model import (
    InstantaneousActivity,
    SANMarking,
    SANModel,
    TimedActivity,
)
from repro.stats.distributions import Exponential

FrozenMarking = Tuple[Tuple[str, int], ...]


@dataclass
class CTMC:
    """An explicit-state CTMC.

    Attributes:
        states: Tangible markings (frozen); index 0 is the initial state
            distribution's support start.
        generator: Dense generator matrix Q (rows sum to zero).
        initial: Initial probability vector over ``states``.
    """

    states: List[FrozenMarking]
    generator: np.ndarray
    initial: np.ndarray

    @property
    def n_states(self) -> int:
        """Number of tangible states."""
        return len(self.states)

    def state_index(self, marking: FrozenMarking) -> int:
        """Index of ``marking``.

        Raises:
            KeyError: If the marking is not a tangible state.
        """
        try:
            return self.states.index(marking)
        except ValueError as exc:
            raise KeyError(f"unknown state {marking!r}") from exc

    def transient_distribution(self, t: float) -> np.ndarray:
        """State distribution at time ``t``: p(t) = p(0)·e^{Qt}.

        Raises:
            ValueError: If ``t < 0``.
        """
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return self.initial @ expm(self.generator * t)

    def state_probability(
        self, t: float, predicate: Callable[[Dict[str, int]], bool]
    ) -> float:
        """P(marking satisfies ``predicate``) at time ``t``."""
        dist = self.transient_distribution(t)
        total = 0.0
        for i, state in enumerate(self.states):
            if predicate(dict(state)):
                total += float(dist[i])
        return total

    def absorbing_states(self) -> List[int]:
        """Indices of states with no outgoing rate."""
        out = np.abs(self.generator).sum(axis=1)
        return [i for i in range(self.n_states) if out[i] < 1e-14]

    def hitting_probability(self, targets: Sequence[int]) -> np.ndarray:
        """P(eventually hit ``targets``) from every state.

        Absorbing non-target states contribute probability 0.

        Raises:
            ValueError: If ``targets`` is empty.
        """
        targets = set(targets)
        if not targets:
            raise ValueError("need at least one target state")
        absorbing = set(self.absorbing_states())
        transient = [
            i
            for i in range(self.n_states)
            if i not in targets and i not in absorbing
        ]
        x = np.zeros(self.n_states)
        for i in targets:
            x[i] = 1.0
        if transient:
            q_tt = self.generator[np.ix_(transient, transient)]
            rhs = -self.generator[np.ix_(transient, sorted(targets))].sum(axis=1)
            x_t = np.linalg.solve(q_tt, rhs)
            for idx, i in enumerate(transient):
                x[i] = float(x_t[idx])
        return x

    def mean_hitting_time(self, targets: Sequence[int]) -> np.ndarray:
        """Expected time to hit ``targets`` from every state.

        Entries are ``inf`` for states from which the targets are not hit
        almost surely (including absorbing non-target states).

        Raises:
            ValueError: If ``targets`` is empty.
        """
        targets = set(targets)
        if not targets:
            raise ValueError("need at least one target state")
        probs = self.hitting_probability(sorted(targets))
        absorbing = set(self.absorbing_states())
        transient = [
            i
            for i in range(self.n_states)
            if i not in targets and i not in absorbing
        ]
        h = np.full(self.n_states, np.inf)
        for i in targets:
            h[i] = 0.0
        certain = [i for i in transient if probs[i] > 1.0 - 1e-9]
        if certain:
            q_tt = self.generator[np.ix_(certain, certain)]
            rhs = -np.ones(len(certain))
            h_t = np.linalg.solve(q_tt, rhs)
            for idx, i in enumerate(certain):
                h[i] = float(h_t[idx])
        return h


def _tangible_expansion(
    model: SANModel,
    marking: SANMarking,
    rng_placeholder: None = None,
    max_depth: int = 1000,
) -> List[Tuple[float, FrozenMarking]]:
    """Expand a (possibly vanishing) marking into tangible outcomes.

    Follows instantaneous activities (priority, then weight split) and
    case branches, multiplying probabilities, until no instantaneous
    activity is enabled.

    Returns:
        ``[(probability, tangible_frozen_marking), ...]`` summing to 1.

    Raises:
        RuntimeError: If expansion exceeds ``max_depth`` (vanishing loop).
    """
    results: Dict[FrozenMarking, float] = {}
    stack: List[Tuple[float, SANMarking, int]] = [(1.0, marking, 0)]
    while stack:
        prob, current, depth = stack.pop()
        if depth > max_depth:
            raise RuntimeError("vanishing-marking loop detected")
        inst = [
            a
            for a in model.instantaneous_activities
            if a.is_enabled(current)
        ]
        if not inst:
            frozen = current.freeze()
            results[frozen] = results.get(frozen, 0.0) + prob
            continue
        top = max(a.priority for a in inst)
        candidates = [a for a in inst if a.priority == top]
        total_weight = sum(c.weight for c in candidates)
        for activity in candidates:
            w = activity.weight / total_weight
            case_probs = activity.case_probabilities(current)
            for case_index, p_case in enumerate(case_probs):
                if p_case == 0.0:
                    continue
                nxt = current.copy()
                activity.complete(nxt, case_index)
                stack.append((prob * w * p_case, nxt, depth + 1))
    return [(p, m) for m, p in results.items()]


def san_to_ctmc(model: SANModel, max_states: int = 20000) -> CTMC:
    """Convert an all-exponential SAN to an explicit CTMC.

    Args:
        model: The SAN; every timed activity must have a (possibly
            marking-dependent) :class:`Exponential` distribution.
        max_states: Safety cap on the tangible state space.

    Returns:
        The :class:`CTMC`.

    Raises:
        ValueError: If a timed activity is not exponential, or the state
            space exceeds ``max_states``.
    """
    initial_expansion = _tangible_expansion(model, model.initial_marking())
    index: Dict[FrozenMarking, int] = {}
    states: List[FrozenMarking] = []

    def intern(frozen: FrozenMarking) -> int:
        if frozen not in index:
            if len(states) >= max_states:
                raise ValueError(
                    f"state space exceeds max_states={max_states}"
                )
            index[frozen] = len(states)
            states.append(frozen)
        return index[frozen]

    transitions: List[Tuple[int, int, float]] = []
    frontier: List[int] = []
    for prob, frozen in initial_expansion:
        idx = intern(frozen)
        if idx == len(states) - 1:
            frontier.append(idx)

    explored = 0
    while explored < len(states):
        src = explored
        explored += 1
        marking = SANMarking(dict(states[src]))
        for activity in model.timed_activities:
            if not activity.is_enabled(marking):
                continue
            dist = activity.distribution_in(marking)
            if not isinstance(dist, Exponential):
                raise ValueError(
                    f"activity {activity.name!r} is not exponential "
                    f"({type(dist).__name__}); CTMC conversion impossible"
                )
            rate = dist.rate
            case_probs = activity.case_probabilities(marking)
            for case_index, p_case in enumerate(case_probs):
                if p_case == 0.0:
                    continue
                nxt = marking.copy()
                activity.complete(nxt, case_index)
                for p_tang, tangible in _tangible_expansion(model, nxt):
                    dst = intern(tangible)
                    transitions.append((src, dst, rate * p_case * p_tang))

    n = len(states)
    generator = np.zeros((n, n))
    for src, dst, rate in transitions:
        if src != dst:
            generator[src, dst] += rate
    for i in range(n):
        generator[i, i] = -generator[i].sum()

    initial = np.zeros(n)
    for prob, frozen in initial_expansion:
        initial[index[frozen]] += prob

    return CTMC(states=states, generator=generator, initial=initial)
