"""Span tracer, metrics registry and the active-telemetry context.

Design constraints (see ``repro.telemetry`` package docstring):

* **Disabled is free.** Every instrumentation helper (:func:`trace`,
  :func:`metric_inc`, ...) resolves the active :class:`Telemetry`
  through a single :class:`contextvars.ContextVar` read and returns
  immediately when none is active.  Hot loops never pay more than that
  one lookup, and the shared :data:`_NULL_SPAN` makes ``with trace(...)``
  allocation-free when telemetry is off.

* **Aggregated spans, not event logs.** A Monte-Carlo campaign enters
  the same spans millions of times; recording one object per entry
  would perturb the memory profile it is meant to observe.  The tracer
  therefore keeps an *aggregated* tree: one node per distinct span
  path, carrying ``count/total_s/min_s/max_s``.  Child order is
  first-seen, which makes merging deterministic when worker deltas are
  folded in submission order.

* **Process-safe by value.** Worker-side capture serializes a plain
  ``dict`` delta (:meth:`Telemetry.delta`) back with the chunk results;
  the coordinator folds it under its current cursor with
  :meth:`Telemetry.merge_delta`.  Nothing here touches RNG state, so
  telemetry can never perturb bit-identity.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.telemetry.profiling import HotspotTable, profile_scope

__all__ = [
    "MetricsRegistry",
    "SpanNode",
    "Telemetry",
    "TelemetrySnapshot",
    "Tracer",
    "current",
    "emit_event",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
    "trace",
]

_ACTIVE: "contextvars.ContextVar[Optional[Telemetry]]" = contextvars.ContextVar(
    "repro_telemetry_active", default=None
)


def current() -> Optional["Telemetry"]:
    """The :class:`Telemetry` active in this thread/context, if any."""
    return _ACTIVE.get()


class SpanNode:
    """One node of the aggregated span tree.

    Attributes:
        name: Span name (one path segment, e.g. ``"suite.run"``).
        count: Number of times the span was entered.
        total_s: Summed wall-clock seconds across entries.
        min_s / max_s: Fastest / slowest single entry.
        children: Child nodes keyed by name, in first-seen order.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.children: Dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """The child node for ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def record(self, elapsed_s: float) -> None:
        """Fold one completed entry into the aggregate."""
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def merge(self, other: Mapping[str, Any]) -> None:
        """Fold a serialized node (:meth:`to_dict` shape) into this one.

        Children unknown on this side are appended, preserving the
        incoming order after the existing one — deterministic as long
        as deltas are merged in a deterministic order.
        """
        self.count += int(other.get("count", 0))
        self.total_s += float(other.get("total_s", 0.0))
        other_min = float(other.get("min_s", float("inf")))
        other_max = float(other.get("max_s", 0.0))
        if other_min < self.min_s:
            self.min_s = other_min
        if other_max > self.max_s:
            self.max_s = other_max
        for name, child in other.get("children", {}).items():
            self.child(name).merge(child)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON- and pickle-safe)."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "children": {
                name: child.to_dict() for name, child in self.children.items()
            },
        }

    def walk(self, path: str = "") -> Iterator[tuple]:
        """Yield ``(path, node)`` depth-first in first-seen order."""
        here = f"{path}/{self.name}" if path else self.name
        yield here, self
        for child in self.children.values():
            yield from child.walk(here)


class _Span:
    """Live ``with`` handle for one span entry (enabled path)."""

    __slots__ = ("_tracer", "_node", "_parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._parent = tracer._cursor
        self._node = self._parent.child(name)

    def __enter__(self) -> "_Span":
        self._tracer._cursor = self._node
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._node.record(time.perf_counter() - self._t0)
        self._tracer._cursor = self._parent
        return False


class _NullSpan:
    """Shared no-op span used when no telemetry is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Aggregated span-tree recorder.

    The tracer keeps a cursor into the tree; ``with tracer.span(name)``
    descends for the duration of the block.  One tracer belongs to one
    :class:`Telemetry` and is only ever touched from the context it is
    active in (worker captures get their own instance), so no locking
    is needed on the hot path.
    """

    __slots__ = ("root", "_cursor")

    def __init__(self) -> None:
        self.root = SpanNode("run")
        self._cursor = self.root

    def span(self, name: str) -> _Span:
        """Context manager timing one entry of span ``name``."""
        return _Span(self, name)


class MetricsRegistry:
    """Counters, gauges and scalar-summary histograms.

    * ``inc``: monotonically accumulated counters (merge = sum).
    * ``gauge``: last-written value, with the maximum ever written
      tracked alongside (for peaks such as resident row counts).
    * ``observe``: histogram-style scalar summaries storing
      ``count/total/min/max`` per series (e.g. per-chunk wait times) —
      deliberately not full reservoirs, so size is O(#series).
    """

    __slots__ = ("counters", "gauges", "gauge_maxima", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.gauge_maxima: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; its running maximum is kept as well."""
        self.gauges[name] = value
        if value > self.gauge_maxima.get(name, float("-inf")):
            self.gauge_maxima[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the scalar summary for series ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {
                "count": 1.0, "total": value, "min": value, "max": value,
            }
            return
        hist["count"] += 1.0
        hist["total"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    def counter(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name``."""
        return self.counters.get(name, default)

    def merge(self, other: Mapping[str, Any]) -> None:
        """Fold a serialized registry (:meth:`to_dict` shape) in."""
        for name, value in other.get("counters", {}).items():
            self.inc(name, value)
        for name, value in other.get("gauges", {}).items():
            self.gauge(name, value)
        for name, value in other.get("gauge_maxima", {}).items():
            if value > self.gauge_maxima.get(name, float("-inf")):
                self.gauge_maxima[name] = value
        for name, hist in other.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = dict(hist)
                continue
            mine["count"] += hist["count"]
            mine["total"] += hist["total"]
            if hist["min"] < mine["min"]:
                mine["min"] = hist["min"]
            if hist["max"] > mine["max"]:
                mine["max"] = hist["max"]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON- and pickle-safe)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "gauge_maxima": dict(self.gauge_maxima),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class Telemetry:
    """One recording session: tracer + metrics + events + hot spots.

    Create one per run (or per worker chunk), activate it with
    :meth:`activate`, and read the result out as a
    :class:`TelemetrySnapshot` (coordinator side) or a plain delta dict
    (worker side, via :meth:`delta`).

    Args:
        profile: Opt-in profiling mode — ``None`` (off), ``"cprofile"``
            (deterministic profiler feeding the hot-spot table) or
            ``"tracemalloc"`` (allocation peaks as metrics).
        meta: Free-form annotations carried on snapshots (source,
            backend, ...).
    """

    def __init__(
        self,
        profile: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.hotspots = HotspotTable()
        self.events: List[Dict[str, Any]] = []
        self.profile = profile
        self.meta: Dict[str, Any] = dict(meta or {})
        self._event_lock = threading.Lock()

    # -- context management -------------------------------------------

    def activate(self) -> "_Activation":
        """Context manager installing this telemetry as :func:`current`."""
        return _Activation(self)

    def span(self, name: str) -> _Span:
        """Shorthand for ``self.tracer.span(name)``."""
        return self.tracer.span(name)

    def profile_scope(self):
        """Context manager applying the opt-in profiler, if configured."""
        return profile_scope(self.profile, self.hotspots, self.metrics.observe)

    # -- events --------------------------------------------------------

    def emit_event(self, kind: str, **payload: Any) -> None:
        """Append a discrete event record (job transitions, heartbeats).

        Thread-safe: job bodies and their submitters may share one
        telemetry instance.
        """
        event = {"kind": kind, **payload}
        with self._event_lock:
            event["seq"] = len(self.events)
            self.events.append(event)

    # -- worker-delta plumbing ----------------------------------------

    def worker_spec(self) -> Dict[str, Any]:
        """Picklable config a worker needs to open its own capture."""
        return {"profile": self.profile}

    def delta(self) -> Dict[str, Any]:
        """Serialize everything recorded here as a plain-dict delta."""
        return {
            "spans": self.tracer.root.to_dict(),
            "metrics": self.metrics.to_dict(),
            "hotspots": self.hotspots.to_dict(),
            "events": list(self.events),
        }

    def merge_delta(self, delta: Mapping[str, Any]) -> None:
        """Fold a worker delta in under the tracer's current cursor.

        Call in submission order: first-seen child ordering makes the
        resulting tree identical run-to-run for a fixed chunking.
        """
        spans = delta.get("spans")
        if spans:
            for name, child in spans.get("children", {}).items():
                self.tracer._cursor.child(name).merge(child)
        metrics = delta.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        hotspots = delta.get("hotspots")
        if hotspots:
            self.hotspots.merge(hotspots)
        for event in delta.get("events", ()):
            payload = {k: v for k, v in event.items() if k not in ("kind", "seq")}
            self.emit_event(event.get("kind", "event"), **payload)

    # -- output --------------------------------------------------------

    def snapshot(self) -> "TelemetrySnapshot":
        """Freeze the current state into a plain-data snapshot."""
        return TelemetrySnapshot(
            spans=self.tracer.root.to_dict(),
            metrics=self.metrics.to_dict(),
            hotspots=self.hotspots.to_dict(),
            events=list(self.events),
            meta=dict(self.meta),
        )


class _Activation:
    """``with telemetry.activate():`` — sets/restores :data:`_ACTIVE`."""

    __slots__ = ("_telemetry", "_token")

    def __init__(self, telemetry: Telemetry) -> None:
        self._telemetry = telemetry

    def __enter__(self) -> Telemetry:
        self._token = _ACTIVE.set(self._telemetry)
        return self._telemetry

    def __exit__(self, *exc_info: object) -> bool:
        _ACTIVE.reset(self._token)
        return False


class TelemetrySnapshot:
    """Immutable plain-data view of one telemetry session.

    This is what rides on ``RunResult.telemetry`` — recorded alongside
    ``Provenance.execution`` and, like it, deliberately **outside** the
    spec digest: observability must never change what a run *is*.
    """

    __slots__ = ("spans", "metrics", "hotspots", "events", "meta")

    def __init__(
        self,
        spans: Dict[str, Any],
        metrics: Dict[str, Any],
        hotspots: Optional[Dict[str, Any]] = None,
        events: Optional[List[Dict[str, Any]]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.spans = spans
        self.metrics = metrics
        self.hotspots = hotspots or {}
        self.events = events or []
        self.meta = meta or {}

    # -- convenience accessors ----------------------------------------

    def counter(self, name: str, default: float = 0.0) -> float:
        """Counter value by name (0.0 when never incremented)."""
        return self.metrics.get("counters", {}).get(name, default)

    def span_paths(self) -> Dict[str, Dict[str, Any]]:
        """Flat ``{"suite.run/exec.map": node_dict}`` view of the tree."""

        def visit(prefix: str, node: Mapping[str, Any], out: Dict) -> None:
            for name, child in node.get("children", {}).items():
                path = f"{prefix}/{name}" if prefix else name
                out[path] = {k: v for k, v in child.items() if k != "children"}
                visit(path, child, out)

        out: Dict[str, Dict[str, Any]] = {}
        visit("", self.spans, out)
        return out

    def total_seconds(self, span: str) -> float:
        """``total_s`` of the first span path ending in ``span``."""
        for path, node in self.span_paths().items():
            if path == span or path.endswith("/" + span):
                return float(node["total_s"])
        return 0.0

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro.telemetry/1",
            "spans": self.spans,
            "metrics": self.metrics,
            "hotspots": self.hotspots,
            "events": self.events,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetrySnapshot":
        return cls(
            spans=dict(data.get("spans", {})),
            metrics=dict(data.get("metrics", {})),
            hotspots=dict(data.get("hotspots", {})),
            events=list(data.get("events", [])),
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str) -> None:
        """Write the snapshot as one JSON document."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def export_jsonl(self, path: str) -> None:
        """Write the snapshot as JSON lines (one record per line).

        Line kinds: ``meta``, ``span`` (flattened path), ``counter``,
        ``gauge``, ``histogram``, ``hotspot``, ``event`` — friendly to
        ``grep``/``jq`` and to append-merge across runs.
        """
        with open(path, "w") as handle:
            def emit(record: Dict[str, Any]) -> None:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

            emit({"kind": "meta", **self.meta, "format": "repro.telemetry/1"})
            for span_path, node in self.span_paths().items():
                emit({"kind": "span", "path": span_path, **node})
            for name, value in self.metrics.get("counters", {}).items():
                emit({"kind": "counter", "name": name, "value": value})
            for name, value in self.metrics.get("gauges", {}).items():
                emit({
                    "kind": "gauge", "name": name, "value": value,
                    "max": self.metrics.get("gauge_maxima", {}).get(name, value),
                })
            for name, hist in self.metrics.get("histograms", {}).items():
                emit({"kind": "histogram", "name": name, **hist})
            for key, row in self.hotspots.get("rows", {}).items():
                emit({"kind": "hotspot", "site": key, **row})
            for event in self.events:
                # Nested: the event's own "kind" (job.state, ...) must
                # not clobber the JSONL line kind.
                emit({"kind": "event", "event": event})

    def render(self, top: int = 10) -> str:
        """Human-readable report (span tree, metrics, throughput)."""
        from repro.telemetry.report import render_snapshot

        return render_snapshot(self, top=top)


# -- module-level fast-path helpers -----------------------------------


def trace(name: str):
    """``with trace("suite.run"):`` — span on the active telemetry.

    No-op (shared null span, no allocation) when telemetry is off.
    """
    telemetry = _ACTIVE.get()
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.tracer.span(name)


def metric_inc(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active telemetry, if any."""
    telemetry = _ACTIVE.get()
    if telemetry is not None:
        telemetry.metrics.inc(name, value)


def metric_gauge(name: str, value: float) -> None:
    """Set a gauge on the active telemetry, if any."""
    telemetry = _ACTIVE.get()
    if telemetry is not None:
        telemetry.metrics.gauge(name, value)


def metric_observe(name: str, value: float) -> None:
    """Record a histogram observation on the active telemetry, if any."""
    telemetry = _ACTIVE.get()
    if telemetry is not None:
        telemetry.metrics.observe(name, value)


def emit_event(kind: str, **payload: Any) -> None:
    """Emit a discrete event on the active telemetry, if any."""
    telemetry = _ACTIVE.get()
    if telemetry is not None:
        telemetry.emit_event(kind, **payload)
