"""``repro.telemetry`` — tracing, metrics and profiling for experiments.

The observability substrate for the whole stack (api → scenarios →
exec → attacks/core → results):

* **Spans** — ``with trace("suite.run"): ...`` context managers feed an
  *aggregated* timing tree (one node per span path with
  count/total/min/max), cheap enough for million-replication campaigns.
* **Metrics** — a registry of counters (``cache.hit``,
  ``streaming.spills``, ``campaign.ticks_elided``, ...), gauges with
  peak tracking, and scalar-summary histograms
  (``exec.chunk_wait_ms``).
* **Profiling** — opt-in cProfile hot-spot tables or tracemalloc peaks
  wrapped around work units.
* **Events** — discrete job-lifecycle records (state transitions,
  progress heartbeats).

Activation is contextual: create a :class:`Telemetry`, enter
``telemetry.activate()``, and every instrumented seam below records
into it; with nothing active all hooks are single-lookup no-ops.
Worker processes capture their own deltas per chunk and the
coordinator merges them in submission order, so results stay
bit-identical with telemetry on or off.

Snapshots ride on results (``RunResult.telemetry``), serialize to JSON
or JSON-lines, and render via ``python -m repro.telemetry report``.
"""

from repro.telemetry.core import (
    MetricsRegistry,
    SpanNode,
    Telemetry,
    TelemetrySnapshot,
    Tracer,
    current,
    emit_event,
    metric_gauge,
    metric_inc,
    metric_observe,
    trace,
)
from repro.telemetry.log import configure_logging
from repro.telemetry.profiling import HotspotTable
from repro.telemetry.report import load_telemetry, render_snapshot

__all__ = [
    "HotspotTable",
    "MetricsRegistry",
    "SpanNode",
    "Telemetry",
    "TelemetrySnapshot",
    "Tracer",
    "configure_logging",
    "current",
    "emit_event",
    "load_telemetry",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
    "render_snapshot",
    "trace",
]
