"""Library-standard logging setup for the ``repro`` hierarchy.

``repro`` follows stdlib library convention: every module logs to
``logging.getLogger(__name__)`` under the ``repro.*`` hierarchy, the
package root carries a :class:`logging.NullHandler` (installed in
``repro/__init__``), and nothing is printed unless an application —
or :func:`configure_logging`, wired to ``Session(verbose=True)`` and
the CLIs' ``-v`` — attaches a handler.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["configure_logging"]

_HANDLER_FLAG = "_repro_verbose_handler"


def configure_logging(
    level: int = logging.DEBUG, stream: Optional[object] = None
) -> logging.Handler:
    """Attach a sane stderr handler to the ``repro`` logger.

    Idempotent: calling twice replaces the previously attached verbose
    handler instead of stacking duplicates.

    Args:
        level: Threshold for the ``repro`` logger and handler.
        stream: Output stream (default ``sys.stderr``).

    Returns:
        The attached handler (callers may detach it later).
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)  # type: ignore[arg-type]
    handler.setFormatter(
        logging.Formatter(
            "%(asctime)s %(levelname)-5s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )
    )
    handler.setLevel(level)
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
