"""``python -m repro.telemetry`` — inspect saved telemetry snapshots.

Subcommands:

* ``report FILE`` — render the phase-timing tree, cache stats and
  throughput of a snapshot saved by ``TelemetrySnapshot.save`` (JSON)
  or ``export_jsonl`` (JSON lines).
* ``export FILE -o OUT.jsonl`` — re-export a snapshot as JSON lines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.telemetry.report import load_telemetry


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect saved repro telemetry snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a snapshot as a human-readable report"
    )
    report.add_argument("file", help="snapshot path (.json or .jsonl)")
    report.add_argument(
        "--top", type=int, default=10,
        help="hot-spot rows to show (default: 10)",
    )

    export = sub.add_parser(
        "export", help="re-export a snapshot as JSON lines"
    )
    export.add_argument("file", help="snapshot path (.json or .jsonl)")
    export.add_argument(
        "-o", "--output", required=True, help="JSONL output path"
    )

    args = parser.parse_args(argv)
    try:
        snapshot = load_telemetry(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "report":
        print(snapshot.render(top=args.top))
        return 0
    snapshot.export_jsonl(args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
