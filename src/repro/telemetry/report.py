"""Rendering saved telemetry: span tree, metrics, throughput, hot spots.

The module is deliberately dumb about semantics — it renders whatever
the snapshot carries — but it knows the well-known series emitted by
the instrumented seams (``cache.hit``, ``streaming.spills``,
``campaign.ticks_elided``, ``exec.units``) well enough to compute the
headline cache/throughput lines.
"""

from __future__ import annotations

import json
from typing import Any, List, Mapping, Optional

from repro.telemetry.core import TelemetrySnapshot

__all__ = ["load_telemetry", "render_snapshot"]


def load_telemetry(path: str) -> TelemetrySnapshot:
    """Load a snapshot saved as JSON (``save``) or JSONL (``export_jsonl``).

    Raises:
        ValueError: If the file is neither format.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, Mapping) and "spans" in data:
        return TelemetrySnapshot.from_dict(data)
    if data is None:
        return _load_jsonl(text, path)
    raise ValueError(f"{path!r} is not a repro.telemetry snapshot")


def _load_jsonl(text: str, path: str) -> TelemetrySnapshot:
    """Rebuild a snapshot from its JSON-lines export."""
    spans: dict = {"count": 0, "total_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                   "children": {}}
    metrics: dict = {
        "counters": {}, "gauges": {}, "gauge_maxima": {}, "histograms": {},
    }
    hotspots: dict = {"rows": {}}
    events: List[dict] = []
    meta: dict = {}
    saw_any = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path!r} is not a repro.telemetry snapshot "
                f"(bad JSONL line: {exc})"
            ) from exc
        saw_any = True
        kind = record.pop("kind", None)
        if kind == "meta":
            record.pop("format", None)
            meta.update(record)
        elif kind == "span":
            node = spans
            for segment in record.pop("path", "").split("/"):
                node = node["children"].setdefault(
                    segment,
                    {"count": 0, "total_s": 0.0, "min_s": 0.0,
                     "max_s": 0.0, "children": {}},
                )
            node.update(record)
        elif kind == "counter":
            metrics["counters"][record["name"]] = record["value"]
        elif kind == "gauge":
            metrics["gauges"][record["name"]] = record["value"]
            metrics["gauge_maxima"][record["name"]] = record.get(
                "max", record["value"]
            )
        elif kind == "histogram":
            name = record.pop("name")
            metrics["histograms"][name] = record
        elif kind == "hotspot":
            site = record.pop("site")
            hotspots["rows"][site] = record
        elif kind == "event":
            events.append(record.get("event", record))
    if not saw_any:
        raise ValueError(f"{path!r} is empty — not a telemetry snapshot")
    return TelemetrySnapshot(
        spans=spans, metrics=metrics, hotspots=hotspots, events=events,
        meta=meta,
    )


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1000.0:8.2f}ms"


def _render_span_tree(snapshot: TelemetrySnapshot, lines: List[str]) -> None:
    root_total = sum(
        child.get("total_s", 0.0)
        for child in snapshot.spans.get("children", {}).values()
    )

    def visit(node: Mapping[str, Any], name: str, depth: int,
              parent_total: float) -> None:
        total = float(node.get("total_s", 0.0))
        count = int(node.get("count", 0))
        share = (100.0 * total / parent_total) if parent_total > 0 else 100.0
        label = f"{'  ' * depth}{name}"
        lines.append(
            f"  {label:<44s}{count:>9d}x {_format_seconds(total)} "
            f"{share:5.1f}%"
        )
        for child_name, child in node.get("children", {}).items():
            visit(child, child_name, depth + 1, total)

    children = snapshot.spans.get("children", {})
    if not children:
        lines.append("  (no spans recorded)")
        return
    lines.append(
        f"  {'span':<44s}{'count':>10s} {'total':>10s} {'% parent':>7s}"
    )
    for name, child in children.items():
        visit(child, name, 0, root_total)


def _render_metrics(snapshot: TelemetrySnapshot, lines: List[str]) -> None:
    counters = snapshot.metrics.get("counters", {})
    gauges = snapshot.metrics.get("gauges", {})
    maxima = snapshot.metrics.get("gauge_maxima", {})
    histograms = snapshot.metrics.get("histograms", {})
    if not (counters or gauges or histograms):
        lines.append("  (no metrics recorded)")
        return
    for name in sorted(counters):
        value = counters[name]
        shown = int(value) if float(value).is_integer() else value
        lines.append(f"  {name:<40s} {shown:>14}")
    for name in sorted(gauges):
        lines.append(
            f"  {name:<40s} {gauges[name]:>14g}  (max {maxima.get(name, gauges[name]):g})"
        )
    for name in sorted(histograms):
        hist = histograms[name]
        count = int(hist.get("count", 0))
        mean = hist.get("total", 0.0) / count if count else 0.0
        lines.append(
            f"  {name:<40s} {count:>8d}x  mean {mean:.3f}  "
            f"min {hist.get('min', 0.0):.3f}  max {hist.get('max', 0.0):.3f}"
        )


def _render_headlines(snapshot: TelemetrySnapshot, lines: List[str]) -> None:
    hits = snapshot.counter("cache.hit")
    misses = snapshot.counter("cache.miss")
    if hits or misses:
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        lines.append(
            f"  cache: {int(hits)} hits / {int(misses)} misses "
            f"({rate:.0f}% hit rate)"
        )
    spills = snapshot.counter("streaming.spills")
    if spills:
        mib = snapshot.counter("streaming.bytes_spilled") / (1024.0 * 1024.0)
        lines.append(f"  streaming: {int(spills)} spills, {mib:.1f} MiB spilled")
    elided = snapshot.counter("campaign.ticks_elided")
    executed = snapshot.counter("campaign.ticks_executed")
    if elided or executed:
        lines.append(
            f"  campaign: {int(elided)} ticks elided / "
            f"{int(executed)} executed "
            f"({int(snapshot.counter('campaign.sabotage_resumes'))} sabotage "
            "resumes)"
        )
    lanes = snapshot.counter("batch.lanes")
    if lanes:
        batches = snapshot.counter("batch.batches")
        mean_lanes = lanes / batches if batches else 0.0
        steps = snapshot.counter("batch.steps")
        lane_steps = snapshot.counter("batch.lane_steps")
        line = (
            f"  batch: {int(lanes)} lanes in {int(batches)} batches "
            f"(mean {mean_lanes:.1f} lanes/batch"
        )
        if steps and mean_lanes:
            # Mean live lanes per vectorized step, relative to the
            # batch width: 100% = every step advanced a full batch.
            utilization = 100.0 * (lane_steps / steps) / mean_lanes
            line += f", {min(utilization, 100.0):.0f}% lane utilization"
        lines.append(line + ")")
    retries = snapshot.counter("retry.attempts")
    timeouts = snapshot.counter("retry.chunk_timeouts")
    respawns = snapshot.counter("retry.pool_respawns")
    degraded = snapshot.counter("retry.degraded")
    if retries or timeouts or respawns or degraded:
        line = (
            f"  resilience: {int(retries)} retries, "
            f"{int(timeouts)} watchdog timeouts, "
            f"{int(respawns)} pool respawns"
        )
        if degraded:
            line += " — DEGRADED to inline execution"
        lines.append(line)
    injected = sum(
        snapshot.counter(f"fault.injected.{kind}")
        for kind in ("crash", "hang", "kill", "corrupt")
    )
    if injected:
        detail = ", ".join(
            f"{int(snapshot.counter(f'fault.injected.{kind}'))} {kind}"
            for kind in ("crash", "hang", "kill", "corrupt")
            if snapshot.counter(f"fault.injected.{kind}")
        )
        lines.append(f"  faults injected: {int(injected)} ({detail})")
    failures = snapshot.counter("suite.scenario_failures")
    if failures:
        lines.append(
            f"  scenario failures: {int(failures)} isolated "
            "(on_error=skip)"
        )
    units = snapshot.counter("exec.units")
    wall = snapshot.total_seconds("exec.map")
    if units and wall > 0:
        lines.append(
            f"  throughput: {int(units)} work units in {wall:.2f}s "
            f"({units / wall:.1f} units/s)"
        )
    busy = snapshot.total_seconds("exec.chunk")
    workers = snapshot.metrics.get("gauges", {}).get("exec.n_workers")
    if busy and wall > 0 and workers:
        utilization = 100.0 * busy / (wall * workers)
        lines.append(
            f"  workers: {busy:.2f}s busy across {int(workers)} workers "
            f"({min(utilization, 100.0):.0f}% utilization)"
        )


def render_snapshot(snapshot: TelemetrySnapshot, top: int = 10) -> str:
    """Render a snapshot as a human-readable multi-section report."""
    lines: List[str] = []
    title = "TELEMETRY REPORT"
    source = snapshot.meta.get("source")
    if source:
        title += f" — {source}"
    lines.append(title)
    lines.append("=" * max(40, len(title)))
    annotations = {
        key: value for key, value in sorted(snapshot.meta.items())
        if key != "source"
    }
    if annotations:
        lines.append(
            "  " + "  ".join(f"{k}={v}" for k, v in annotations.items())
        )
    lines.append("")
    lines.append("Phase timings")
    _render_span_tree(snapshot, lines)
    lines.append("")
    lines.append("Headlines")
    before = len(lines)
    _render_headlines(snapshot, lines)
    if len(lines) == before:
        lines.append("  (none)")
    lines.append("")
    lines.append("Metrics")
    _render_metrics(snapshot, lines)
    rows = snapshot.hotspots.get("rows", {})
    if rows:
        lines.append("")
        lines.append(f"Hot spots (top {top} by total time)")
        table = sorted(rows.items(), key=lambda item: -item[1]["tottime"])
        for site, row in table[:top]:
            lines.append(
                f"  {row['tottime']:8.3f}s  {int(row['ncalls']):>9d} calls  "
                f"{site}"
            )
    if snapshot.events:
        lines.append("")
        lines.append(f"Events ({len(snapshot.events)})")
        kinds: dict = {}
        for event in snapshot.events:
            kinds[event.get("kind", "event")] = kinds.get(
                event.get("kind", "event"), 0
            ) + 1
        for kind in sorted(kinds):
            lines.append(f"  {kind:<40s} {kinds[kind]:>8d}")
    return "\n".join(lines)
