"""Opt-in profiling hooks: cProfile hot-spot tables and tracemalloc.

Profiling wraps whole work units (a worker chunk, or a serial batch) —
never individual simulator ticks — so the overhead stays bounded and
the resulting hot-spot table aggregates naturally across workers.
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = ["HotspotTable", "profile_scope"]

#: Recognized values for the ``profile`` knob.
PROFILE_MODES = (None, "cprofile", "tracemalloc")


class HotspotTable:
    """Aggregated per-call-site profile rows.

    Rows are keyed by ``"file:line(function)"`` and carry
    ``ncalls/tottime/cumtime`` sums, so tables from many worker chunks
    merge into one coherent view.
    """

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: Dict[str, Dict[str, float]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def add(
        self, site: str, ncalls: float, tottime: float, cumtime: float
    ) -> None:
        """Fold one call-site measurement into the table."""
        row = self.rows.get(site)
        if row is None:
            self.rows[site] = {
                "ncalls": ncalls, "tottime": tottime, "cumtime": cumtime,
            }
            return
        row["ncalls"] += ncalls
        row["tottime"] += tottime
        row["cumtime"] += cumtime

    def add_profile(self, profile: cProfile.Profile) -> None:
        """Fold a finished :class:`cProfile.Profile` into the table."""
        stats = pstats.Stats(profile)
        for (filename, lineno, func), row in stats.stats.items():  # type: ignore[attr-defined]
            cc, ncalls, tottime, cumtime, _callers = row
            self.add(f"{filename}:{lineno}({func})", ncalls, tottime, cumtime)

    def merge(self, other: Mapping[str, Any]) -> None:
        """Fold a serialized table (:meth:`to_dict` shape) into this."""
        for site, row in other.get("rows", {}).items():
            self.add(site, row["ncalls"], row["tottime"], row["cumtime"])

    def top(self, n: int = 10) -> List[Dict[str, Any]]:
        """The ``n`` hottest rows by ``tottime``, descending."""
        ranked = sorted(
            self.rows.items(), key=lambda item: -item[1]["tottime"]
        )
        return [{"site": site, **row} for site, row in ranked[:n]]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON- and pickle-safe)."""
        return {"rows": {site: dict(row) for site, row in self.rows.items()}}


@contextmanager
def profile_scope(
    mode: Optional[str],
    hotspots: HotspotTable,
    observe: Callable[[str, float], None],
):
    """Apply the configured profiler around one work unit.

    Args:
        mode: ``None`` (no-op), ``"cprofile"`` (call-site hot spots
            folded into ``hotspots``) or ``"tracemalloc"`` (current and
            peak allocation observed as ``profile.peak_kib``).
        hotspots: Table receiving cProfile rows.
        observe: Histogram sink (``MetricsRegistry.observe``).

    Raises:
        ValueError: On an unrecognized mode.
    """
    if mode is None:
        yield
        return
    if mode == "cprofile":
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            hotspots.add_profile(profile)
        return
    if mode == "tracemalloc":
        # Nested tracemalloc sessions are not supported by the stdlib;
        # if a caller already traces allocations, just pass through.
        if tracemalloc.is_tracing():
            yield
            return
        tracemalloc.start()
        try:
            yield
        finally:
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            observe("profile.peak_kib", peak / 1024.0)
        return
    raise ValueError(
        f"unknown profile mode {mode!r} (expected one of {PROFILE_MODES})"
    )
