"""Untimed place/transition Petri nets.

A :class:`PetriNet` is a bipartite structure of :class:`Place` and
:class:`Transition` objects connected by weighted input/output arcs, with
optional inhibitor arcs.  Markings are immutable tuples, so they can key
reachability sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Place:
    """A token container.

    Attributes:
        name: Unique place name.
    """

    name: str


@dataclass
class Transition:
    """A transition with weighted arcs.

    Attributes:
        name: Unique transition name.
        inputs: ``{place_name: weight}`` consumed on firing.
        outputs: ``{place_name: weight}`` produced on firing.
        inhibitors: ``{place_name: threshold}`` — the transition is
            disabled while the place holds >= threshold tokens.
    """

    name: str
    inputs: Dict[str, int] = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)
    inhibitors: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, arcs in (("input", self.inputs), ("output", self.outputs)):
            for place, weight in arcs.items():
                if weight < 1:
                    raise ValueError(
                        f"{label} arc {self.name}->{place} must have weight >= 1"
                    )
        for place, threshold in self.inhibitors.items():
            if threshold < 1:
                raise ValueError(
                    f"inhibitor arc {self.name}->{place} threshold must be >= 1"
                )


class Marking:
    """An immutable assignment of token counts to places."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Dict[str, int]) -> None:
        for place, count in counts.items():
            if count < 0:
                raise ValueError(f"negative marking for place {place!r}: {count}")
        self._counts: Tuple[Tuple[str, int], ...] = tuple(
            sorted((p, c) for p, c in counts.items() if c != 0)
        )

    @classmethod
    def _from_nonzero_sorted(
        cls, counts: Tuple[Tuple[str, int], ...]
    ) -> "Marking":
        """Internal fast constructor for pre-validated count tuples.

        ``counts`` must already be sorted by place with zero counts
        dropped — the invariant :meth:`__init__` establishes.  Used by
        the compiled GSPN loop, which maintains counts incrementally.
        """
        marking = object.__new__(cls)
        marking._counts = counts
        return marking

    def __getitem__(self, place: str) -> int:
        for p, c in self._counts:
            if p == place:
                return c
        return 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Marking) and self._counts == other._counts

    def __hash__(self) -> int:
        return hash(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{c}" for p, c in self._counts)
        return f"Marking({{{inner}}})"

    def as_dict(self) -> Dict[str, int]:
        """The marking as a plain dict (zero-count places omitted)."""
        return dict(self._counts)

    def total(self) -> int:
        """Total token count."""
        return sum(c for _, c in self._counts)

    def with_delta(self, delta: Dict[str, int]) -> "Marking":
        """A new marking with ``delta`` added per place.

        Raises:
            ValueError: If any count would go negative.
        """
        counts = self.as_dict()
        for place, d in delta.items():
            counts[place] = counts.get(place, 0) + d
        return Marking(counts)


class PetriNet:
    """A P/T net: structure plus an initial marking."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        self._initial: Dict[str, int] = {}

    @property
    def places(self) -> List[Place]:
        """All places, in insertion order."""
        return list(self._places.values())

    @property
    def transitions(self) -> List[Transition]:
        """All transitions, in insertion order."""
        return list(self._transitions.values())

    def add_place(self, name: str, tokens: int = 0) -> Place:
        """Add a place with an initial token count.

        Raises:
            ValueError: On duplicate names or negative tokens.
        """
        if name in self._places:
            raise ValueError(f"duplicate place {name!r}")
        if tokens < 0:
            raise ValueError(f"initial tokens must be >= 0, got {tokens}")
        place = Place(name)
        self._places[name] = place
        self._initial[name] = tokens
        return place

    def add_transition(
        self,
        name: str,
        inputs: Optional[Dict[str, int]] = None,
        outputs: Optional[Dict[str, int]] = None,
        inhibitors: Optional[Dict[str, int]] = None,
    ) -> Transition:
        """Add a transition; all referenced places must exist.

        Raises:
            ValueError: On duplicates or unknown places.
        """
        if name in self._transitions:
            raise ValueError(f"duplicate transition {name!r}")
        transition = Transition(
            name, dict(inputs or {}), dict(outputs or {}), dict(inhibitors or {})
        )
        for place in (
            list(transition.inputs)
            + list(transition.outputs)
            + list(transition.inhibitors)
        ):
            if place not in self._places:
                raise ValueError(
                    f"transition {name!r} references unknown place {place!r}"
                )
        self._transitions[name] = transition
        return transition

    def initial_marking(self) -> Marking:
        """The initial marking."""
        return Marking(dict(self._initial))

    def transition(self, name: str) -> Transition:
        """Look up a transition.

        Raises:
            KeyError: If absent.
        """
        return self._transitions[name]

    def is_enabled(self, transition: Transition, marking: Marking) -> bool:
        """Whether ``transition`` may fire in ``marking``."""
        for place, weight in transition.inputs.items():
            if marking[place] < weight:
                return False
        for place, threshold in transition.inhibitors.items():
            if marking[place] >= threshold:
                return False
        return True

    def enabled_transitions(self, marking: Marking) -> List[Transition]:
        """All transitions enabled in ``marking``, in insertion order."""
        return [
            t for t in self._transitions.values() if self.is_enabled(t, marking)
        ]

    def fire(self, transition: Transition, marking: Marking) -> Marking:
        """Fire ``transition``, returning the successor marking.

        Raises:
            ValueError: If the transition is not enabled.
        """
        if not self.is_enabled(transition, marking):
            raise ValueError(
                f"transition {transition.name!r} is not enabled in {marking!r}"
            )
        delta: Dict[str, int] = {}
        for place, weight in transition.inputs.items():
            delta[place] = delta.get(place, 0) - weight
        for place, weight in transition.outputs.items():
            delta[place] = delta.get(place, 0) + weight
        return marking.with_delta(delta)

    def incidence_matrix(self) -> Tuple[List[str], List[str], List[List[int]]]:
        """The incidence matrix C (places × transitions).

        Returns:
            ``(place_names, transition_names, C)`` with
            ``C[i][j] = outputs - inputs`` of transition j on place i.
        """
        place_names = list(self._places)
        transition_names = list(self._transitions)
        matrix = [[0] * len(transition_names) for _ in place_names]
        for j, t_name in enumerate(transition_names):
            t = self._transitions[t_name]
            for i, p_name in enumerate(place_names):
                matrix[i][j] = t.outputs.get(p_name, 0) - t.inputs.get(p_name, 0)
        return place_names, transition_names, matrix
