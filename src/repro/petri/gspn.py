"""Generalized stochastic Petri nets (GSPN).

Adds timing semantics to :class:`~repro.petri.net.PetriNet`:

* **Timed transitions** fire after an exponential delay (race policy,
  resampling on marking change) with optionally marking-dependent rates.
* **Immediate transitions** fire in zero time; among enabled immediate
  transitions the one with highest priority fires, ties broken by
  relative weight.

The simulator is a thin state machine over :class:`repro.sim.engine`
semantics; transient measures are estimated via independent replications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.petri.net import Marking, PetriNet
from repro.stats.ci import ConfidenceInterval, mean_ci, proportion_ci

RateFunction = Callable[[Marking], float]


@dataclass
class TimedTransition:
    """An exponentially-timed transition.

    Attributes:
        name: Name of the underlying structural transition.
        rate: Constant firing rate, or a callable of the marking.
    """

    name: str
    rate: float | RateFunction

    def rate_in(self, marking: Marking) -> float:
        """Evaluate the firing rate in ``marking``."""
        value = self.rate(marking) if callable(self.rate) else self.rate
        if value <= 0:
            raise ValueError(
                f"timed transition {self.name!r} has non-positive rate {value}"
            )
        return float(value)


@dataclass
class ImmediateTransition:
    """A zero-delay transition with priority and weight.

    Attributes:
        name: Name of the underlying structural transition.
        weight: Relative probability among equal-priority candidates.
        priority: Higher fires first.
    """

    name: str
    weight: float = 1.0
    priority: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


@dataclass
class GSPNResult:
    """Result of a batch of GSPN replications.

    Attributes:
        final_markings: Final marking per replication.
        completion_times: Time at which the stop predicate fired, per
            replication (nan when it never fired within the horizon).
        horizon: Simulation horizon used.
    """

    final_markings: List[Marking]
    completion_times: List[float]
    horizon: float

    def completion_probability(self, level: float = 0.95) -> ConfidenceInterval:
        """Wilson CI for P(stop predicate fires before the horizon)."""
        n = len(self.completion_times)
        successes = sum(1 for t in self.completion_times if t == t)
        return proportion_ci(successes, n, level=level)

    def mean_completion_time(self, level: float = 0.95) -> Optional[ConfidenceInterval]:
        """t CI for completion time among completed replications."""
        finished = [t for t in self.completion_times if t == t]
        if not finished:
            return None
        return mean_ci(finished, level=level)


class GSPN:
    """A stochastic interpretation layered over a :class:`PetriNet`."""

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self._timed: Dict[str, TimedTransition] = {}
        self._immediate: Dict[str, ImmediateTransition] = {}

    def add_timed(self, name: str, rate: float | RateFunction) -> TimedTransition:
        """Declare structural transition ``name`` as exponentially timed.

        Raises:
            ValueError: If unknown or already declared.
        """
        self._check_declarable(name)
        timed = TimedTransition(name, rate)
        self._timed[name] = timed
        return timed

    def add_immediate(
        self, name: str, weight: float = 1.0, priority: int = 1
    ) -> ImmediateTransition:
        """Declare structural transition ``name`` as immediate.

        Raises:
            ValueError: If unknown or already declared.
        """
        self._check_declarable(name)
        imm = ImmediateTransition(name, weight, priority)
        self._immediate[name] = imm
        return imm

    def _check_declarable(self, name: str) -> None:
        self.net.transition(name)  # raises KeyError if absent
        if name in self._timed or name in self._immediate:
            raise ValueError(f"transition {name!r} already declared")

    def _undeclared(self) -> List[str]:
        return [
            t.name
            for t in self.net.transitions
            if t.name not in self._timed and t.name not in self._immediate
        ]

    def simulate(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]] = None,
        initial: Optional[Marking] = None,
        max_firings: int = 1_000_000,
    ) -> Tuple[Marking, float, List[Tuple[float, str, Marking]]]:
        """One replication.

        Args:
            horizon: Time horizon.
            rng: Random generator.
            stop: Optional predicate on the marking; simulation stops as
                soon as it holds.
            initial: Override initial marking.
            max_firings: Safety cap against immediate-transition loops.

        Returns:
            ``(final_marking, stop_time, firing_log)`` where ``stop_time``
            is nan if the predicate never held, and the log holds
            ``(time, transition, marking_after)`` triples.

        Raises:
            ValueError: If some structural transition lacks a stochastic
                declaration, or the immediate cap is exceeded.
        """
        missing = self._undeclared()
        if missing:
            raise ValueError(
                f"transitions without timing declaration: {missing!r}"
            )
        marking = initial if initial is not None else self.net.initial_marking()
        now = 0.0
        log: List[Tuple[float, str, Marking]] = []
        stop_time = float("nan")
        if stop is not None and stop(marking):
            return marking, 0.0, log
        firings = 0
        while now <= horizon:
            if firings >= max_firings:
                raise ValueError(
                    f"exceeded {max_firings} firings; immediate loop likely"
                )
            enabled = self.net.enabled_transitions(marking)
            if not enabled:
                break
            immediate = [
                self._immediate[t.name] for t in enabled if t.name in self._immediate
            ]
            if immediate:
                top = max(i.priority for i in immediate)
                candidates = [i for i in immediate if i.priority == top]
                weights = np.array([c.weight for c in candidates])
                chosen = candidates[
                    int(rng.choice(len(candidates), p=weights / weights.sum()))
                ]
                marking = self.net.fire(self.net.transition(chosen.name), marking)
                log.append((now, chosen.name, marking))
            else:
                timed = [self._timed[t.name] for t in enabled]
                rates = np.array([t.rate_in(marking) for t in timed])
                total = rates.sum()
                delay = float(rng.exponential(1.0 / total))
                if now + delay > horizon:
                    now = horizon
                    break
                now += delay
                chosen_t = timed[
                    int(rng.choice(len(timed), p=rates / total))
                ]
                marking = self.net.fire(self.net.transition(chosen_t.name), marking)
                log.append((now, chosen_t.name, marking))
            firings += 1
            if stop is not None and stop(marking):
                stop_time = now
                break
        return marking, stop_time, log

    def transient_analysis(
        self,
        horizon: float,
        replications: int,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]] = None,
    ) -> GSPNResult:
        """Monte-Carlo transient analysis over independent replications.

        Raises:
            ValueError: If ``replications < 1``.
        """
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        finals: List[Marking] = []
        times: List[float] = []
        for _ in range(replications):
            final, stop_time, _ = self.simulate(horizon, rng, stop=stop)
            finals.append(final)
            times.append(stop_time)
        return GSPNResult(finals, times, horizon)
