"""Generalized stochastic Petri nets (GSPN).

Adds timing semantics to :class:`~repro.petri.net.PetriNet`:

* **Timed transitions** fire after an exponential delay (race policy,
  resampling on marking change) with optionally marking-dependent rates.
* **Immediate transitions** fire in zero time; among enabled immediate
  transitions the one with highest priority fires, ties broken by
  relative weight.

The simulator is a thin state machine over :class:`repro.sim.engine`
semantics; transient measures are estimated via independent replications.

Two interpreters implement the semantics: the **compiled fast path**
(default) precomputes per-transition arc tuples, net token deltas and an
enabling-dependency index (place → transitions reading it), then tracks
the enabled sets incrementally and selects winners with cached
single-uniform inverse-CDF draws; the **legacy interpreter**
(``GSPN(net, compiled=False)``) re-scans every transition per firing and
draws via ``rng.choice(p=...)``.  Both consume the random stream
identically, so they produce bit-equal firing logs from the same seed
(``tests/test_petri_gspn_compiled.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.petri.net import Marking, PetriNet, Transition
from repro.stats.choice import WeightCdfCache, choice_cdf
from repro.stats.ci import ConfidenceInterval, mean_ci, proportion_ci

RateFunction = Callable[[Marking], float]


@dataclass
class TimedTransition:
    """An exponentially-timed transition.

    Attributes:
        name: Name of the underlying structural transition.
        rate: Constant firing rate, or a callable of the marking.
    """

    name: str
    rate: float | RateFunction

    def rate_in(self, marking: Marking) -> float:
        """Evaluate the firing rate in ``marking``."""
        value = self.rate(marking) if callable(self.rate) else self.rate
        if value <= 0:
            raise ValueError(
                f"timed transition {self.name!r} has non-positive rate {value}"
            )
        return float(value)


@dataclass
class ImmediateTransition:
    """A zero-delay transition with priority and weight.

    Attributes:
        name: Name of the underlying structural transition.
        weight: Relative probability among equal-priority candidates.
        priority: Higher fires first.
    """

    name: str
    weight: float = 1.0
    priority: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")


@dataclass
class GSPNResult:
    """Result of a batch of GSPN replications.

    Attributes:
        final_markings: Final marking per replication.
        completion_times: Time at which the stop predicate fired, per
            replication (nan when it never fired within the horizon).
        horizon: Simulation horizon used.
    """

    final_markings: List[Marking]
    completion_times: List[float]
    horizon: float

    def completion_probability(self, level: float = 0.95) -> ConfidenceInterval:
        """Wilson CI for P(stop predicate fires before the horizon)."""
        n = len(self.completion_times)
        successes = sum(1 for t in self.completion_times if t == t)
        return proportion_ci(successes, n, level=level)

    def mean_completion_time(self, level: float = 0.95) -> Optional[ConfidenceInterval]:
        """t CI for completion time among completed replications."""
        finished = [t for t in self.completion_times if t == t]
        if not finished:
            return None
        return mean_ci(finished, level=level)


class _CompiledTransition:
    """Precomputed firing data for one declared transition."""

    __slots__ = (
        "name",
        "index",
        "inputs",
        "inhibitors",
        "delta",
        "timed",
        "stochastic",
        "rate_static",
        "weight",
        "priority",
    )

    def __init__(
        self,
        index: int,
        transition: Transition,
        stochastic: "TimedTransition | ImmediateTransition",
    ) -> None:
        self.name = transition.name
        self.index = index
        self.inputs = tuple(transition.inputs.items())
        self.inhibitors = tuple(transition.inhibitors.items())
        net_delta: Dict[str, int] = {}
        for place, weight in transition.inputs.items():
            net_delta[place] = net_delta.get(place, 0) - weight
        for place, weight in transition.outputs.items():
            net_delta[place] = net_delta.get(place, 0) + weight
        self.delta = tuple((p, d) for p, d in net_delta.items() if d != 0)
        self.stochastic = stochastic
        self.timed = isinstance(stochastic, TimedTransition)
        if self.timed:
            rate = stochastic.rate
            # Cache only valid static rates; non-positive or callable
            # rates go through rate_in at use time, raising exactly when
            # (and only when) the legacy path would.
            self.rate_static = (
                float(rate)
                if not callable(rate) and rate > 0
                else None
            )
            self.weight = 0.0
            self.priority = 0
        else:
            self.rate_static = None
            self.weight = stochastic.weight
            self.priority = stochastic.priority

    def enabled(self, counts: Dict[str, int]) -> bool:
        for place, weight in self.inputs:
            if counts.get(place, 0) < weight:
                return False
        for place, threshold in self.inhibitors:
            if counts.get(place, 0) >= threshold:
                return False
        return True


class _CompiledGSPN:
    """A GSPN lowered for the fast interpreter."""

    __slots__ = ("transitions", "readers", "n_structural", "_weight_cdfs",
                 "_rate_cdfs")

    def __init__(self, gspn: "GSPN") -> None:
        self.transitions: List[_CompiledTransition] = []
        for index, transition in enumerate(gspn.net.transitions):
            stochastic = gspn._timed.get(transition.name)
            if stochastic is None:
                stochastic = gspn._immediate[transition.name]
            self.transitions.append(
                _CompiledTransition(index, transition, stochastic)
            )
        readers: Dict[str, List[int]] = {}
        for ct in self.transitions:
            for place, _ in ct.inputs:
                readers.setdefault(place, []).append(ct.index)
            for place, _ in ct.inhibitors:
                readers.setdefault(place, []).append(ct.index)
        self.readers: Dict[str, Tuple[int, ...]] = {
            place: tuple(sorted(set(idx))) for place, idx in readers.items()
        }
        self.n_structural = len(gspn.net.transitions)
        self._weight_cdfs = WeightCdfCache(
            [ct.weight for ct in self.transitions]
        )
        self._rate_cdfs: Dict[Tuple[int, ...], Tuple[float, List[float]]] = {}

    def weight_cdf(self, candidates: Tuple[int, ...]) -> List[float]:
        """Immediate weight-split CDF (cached per candidate set)."""
        return self._weight_cdfs.cdf(candidates)

    def rate_cdf(
        self, candidates: Tuple[int, ...], rates: List[float]
    ) -> Tuple[float, List[float]]:
        """``(total, cdf)`` over ``rates`` (cached for static sets).

        Below 8 candidates numpy's ``sum`` is a plain left-to-right
        accumulation, so the pure-Python path below reproduces the
        legacy ``rates.sum()`` / normalized-cumsum floats exactly
        without array round-trips; larger sets use the numpy ops
        verbatim (pairwise summation differs from sequential).
        """
        if len(rates) < 8:
            total = 0.0
            for rate in rates:
                total += rate
            cdf: List[float] = []
            acc = 0.0
            for rate in rates:
                acc += rate / total
                cdf.append(acc)
            last = cdf[-1]
            return total, [c / last for c in cdf]
        arr = np.array(rates)
        total = float(arr.sum())
        return total, choice_cdf(arr / arr.sum())


class GSPN:
    """A stochastic interpretation layered over a :class:`PetriNet`.

    Args:
        net: The structural net.
        compiled: Use the compiled fast path (default).  ``False``
            selects the legacy re-scanning interpreter; both produce
            bit-identical runs from the same generator state.
    """

    def __init__(self, net: PetriNet, compiled: bool = True) -> None:
        self.net = net
        self.compiled = compiled
        self._timed: Dict[str, TimedTransition] = {}
        self._immediate: Dict[str, ImmediateTransition] = {}
        self._compiled: Optional[_CompiledGSPN] = None

    def add_timed(self, name: str, rate: float | RateFunction) -> TimedTransition:
        """Declare structural transition ``name`` as exponentially timed.

        Raises:
            ValueError: If unknown or already declared.
        """
        self._check_declarable(name)
        timed = TimedTransition(name, rate)
        self._timed[name] = timed
        self._compiled = None
        return timed

    def add_immediate(
        self, name: str, weight: float = 1.0, priority: int = 1
    ) -> ImmediateTransition:
        """Declare structural transition ``name`` as immediate.

        Raises:
            ValueError: If unknown or already declared.
        """
        self._check_declarable(name)
        imm = ImmediateTransition(name, weight, priority)
        self._immediate[name] = imm
        self._compiled = None
        return imm

    def _check_declarable(self, name: str) -> None:
        self.net.transition(name)  # raises KeyError if absent
        if name in self._timed or name in self._immediate:
            raise ValueError(f"transition {name!r} already declared")

    def _undeclared(self) -> List[str]:
        return [
            t.name
            for t in self.net.transitions
            if t.name not in self._timed and t.name not in self._immediate
        ]

    def _compile(self) -> _CompiledGSPN:
        if (
            self._compiled is None
            or self._compiled.n_structural != len(self.net.transitions)
        ):
            self._compiled = _CompiledGSPN(self)
        return self._compiled

    def simulate(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]] = None,
        initial: Optional[Marking] = None,
        max_firings: int = 1_000_000,
    ) -> Tuple[Marking, float, List[Tuple[float, str, Marking]]]:
        """One replication.

        Args:
            horizon: Time horizon.
            rng: Random generator.
            stop: Optional predicate on the marking; simulation stops as
                soon as it holds.
            initial: Override initial marking.
            max_firings: Safety cap against immediate-transition loops.

        Returns:
            ``(final_marking, stop_time, firing_log)`` where ``stop_time``
            is nan if the predicate never held, and the log holds
            ``(time, transition, marking_after)`` triples.

        Raises:
            ValueError: If some structural transition lacks a stochastic
                declaration, or the immediate cap is exceeded.
        """
        missing = self._undeclared()
        if missing:
            raise ValueError(
                f"transitions without timing declaration: {missing!r}"
            )
        if self.compiled:
            return self._simulate_compiled(
                horizon, rng, stop, initial, max_firings
            )
        return self._simulate_legacy(horizon, rng, stop, initial, max_firings)

    # ------------------------------------------------------------------
    # compiled fast path
    # ------------------------------------------------------------------

    def _simulate_compiled(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]],
        initial: Optional[Marking],
        max_firings: int,
    ) -> Tuple[Marking, float, List[Tuple[float, str, Marking]]]:
        compiled = self._compile()
        transitions = compiled.transitions
        readers = compiled.readers
        marking = initial if initial is not None else self.net.initial_marking()
        counts = marking.as_dict()
        now = 0.0
        log: List[Tuple[float, str, Marking]] = []
        stop_time = float("nan")
        if stop is not None and stop(marking):
            return marking, 0.0, log

        enabled_imm: set = set()
        enabled_timed: set = set()
        for ct in transitions:
            if ct.enabled(counts):
                (enabled_timed if ct.timed else enabled_imm).add(ct.index)

        rng_random = rng.random
        firings = 0
        while now <= horizon:
            if firings >= max_firings:
                raise ValueError(
                    f"exceeded {max_firings} firings; immediate loop likely"
                )
            if enabled_imm:
                candidates = sorted(enabled_imm)
                if len(candidates) > 1:
                    top = max(transitions[i].priority for i in candidates)
                    candidates = [
                        i
                        for i in candidates
                        if transitions[i].priority == top
                    ]
                if len(candidates) == 1:
                    rng_random()  # the legacy rng.choice(1, ...) draw
                    chosen = transitions[candidates[0]]
                else:
                    cdf = compiled.weight_cdf(tuple(candidates))
                    chosen = transitions[
                        candidates[bisect_right(cdf, rng_random())]
                    ]
            elif enabled_timed:
                candidates = sorted(enabled_timed)
                key = tuple(candidates)
                cached = compiled._rate_cdfs.get(key)
                if cached is None:
                    rates: List[float] = []
                    all_static = True
                    for i in candidates:
                        ct = transitions[i]
                        if ct.rate_static is not None:
                            rates.append(ct.rate_static)
                        else:
                            all_static = False
                            rates.append(ct.stochastic.rate_in(marking))
                    cached = compiled.rate_cdf(key, rates)
                    if all_static:
                        compiled._rate_cdfs[key] = cached
                total, cdf = cached
                delay = float(rng.exponential(1.0 / total))
                if now + delay > horizon:
                    now = horizon
                    break
                now += delay
                if len(candidates) == 1:
                    rng_random()  # the legacy rng.choice(1, ...) draw
                    chosen = transitions[candidates[0]]
                else:
                    chosen = transitions[
                        candidates[bisect_right(cdf, rng_random())]
                    ]
            else:
                break  # no enabled transition

            for place, delta in chosen.delta:
                value = counts.get(place, 0) + delta
                if value:
                    counts[place] = value
                else:
                    counts.pop(place, None)
            marking = Marking._from_nonzero_sorted(
                tuple(sorted(counts.items()))
            )
            for place, _ in chosen.delta:
                for i in readers.get(place, ()):
                    ct = transitions[i]
                    target = enabled_timed if ct.timed else enabled_imm
                    if ct.enabled(counts):
                        target.add(i)
                    else:
                        target.discard(i)
            log.append((now, chosen.name, marking))
            firings += 1
            if stop is not None and stop(marking):
                stop_time = now
                break
        return marking, stop_time, log

    # ------------------------------------------------------------------
    # legacy interpreter
    # ------------------------------------------------------------------

    def _simulate_legacy(
        self,
        horizon: float,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]],
        initial: Optional[Marking],
        max_firings: int,
    ) -> Tuple[Marking, float, List[Tuple[float, str, Marking]]]:
        marking = initial if initial is not None else self.net.initial_marking()
        now = 0.0
        log: List[Tuple[float, str, Marking]] = []
        stop_time = float("nan")
        if stop is not None and stop(marking):
            return marking, 0.0, log
        firings = 0
        while now <= horizon:
            if firings >= max_firings:
                raise ValueError(
                    f"exceeded {max_firings} firings; immediate loop likely"
                )
            enabled = self.net.enabled_transitions(marking)
            if not enabled:
                break
            immediate = [
                self._immediate[t.name] for t in enabled if t.name in self._immediate
            ]
            if immediate:
                top = max(i.priority for i in immediate)
                candidates = [i for i in immediate if i.priority == top]
                weights = np.array([c.weight for c in candidates])
                chosen = candidates[
                    int(rng.choice(len(candidates), p=weights / weights.sum()))
                ]
                marking = self.net.fire(self.net.transition(chosen.name), marking)
                log.append((now, chosen.name, marking))
            else:
                timed = [self._timed[t.name] for t in enabled]
                rates = np.array([t.rate_in(marking) for t in timed])
                total = rates.sum()
                delay = float(rng.exponential(1.0 / total))
                if now + delay > horizon:
                    now = horizon
                    break
                now += delay
                chosen_t = timed[
                    int(rng.choice(len(timed), p=rates / total))
                ]
                marking = self.net.fire(self.net.transition(chosen_t.name), marking)
                log.append((now, chosen_t.name, marking))
            firings += 1
            if stop is not None and stop(marking):
                stop_time = now
                break
        return marking, stop_time, log

    def transient_analysis(
        self,
        horizon: float,
        replications: int,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]] = None,
    ) -> GSPNResult:
        """Monte-Carlo transient analysis over independent replications.

        Raises:
            ValueError: If ``replications < 1``.
        """
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        finals: List[Marking] = []
        times: List[float] = []
        for _ in range(replications):
            final, stop_time, _ = self.simulate(horizon, rng, stop=stop)
            finals.append(final)
            times.append(stop_time)
        return GSPNResult(finals, times, horizon)
