"""Place/transition Petri nets and generalized stochastic Petri nets.

The paper lists Petri nets among the candidate attack-modeling formalisms
(section II, *Attack Modeling*).  This package provides:

* :mod:`repro.petri.net` — untimed P/T nets with arc weights and
  inhibitor arcs.
* :mod:`repro.petri.analysis` — reachability, boundedness, deadlock and
  invariant analysis.
* :mod:`repro.petri.gspn` — generalized stochastic Petri nets (timed
  exponential + immediate transitions) simulated on the
  :mod:`repro.sim` kernel.

The richer stochastic-activity-network formalism used for the paper's
SCoPE case study lives in :mod:`repro.san`; GSPNs serve as a simpler,
well-understood substrate and as a cross-validation target for the SAN
engine.
"""

from repro.petri.analysis import (
    ReachabilityGraph,
    deadlock_markings,
    is_bounded,
    p_invariants,
    reachability_graph,
    t_invariants,
)
from repro.petri.batched import GSPNBatchEngine, GSPNBatchRun, simulate_batch
from repro.petri.gspn import GSPN, GSPNResult, ImmediateTransition, TimedTransition
from repro.petri.net import Marking, PetriNet, Place, Transition

__all__ = [
    "GSPN",
    "GSPNBatchEngine",
    "GSPNBatchRun",
    "GSPNResult",
    "ImmediateTransition",
    "Marking",
    "PetriNet",
    "Place",
    "ReachabilityGraph",
    "TimedTransition",
    "Transition",
    "deadlock_markings",
    "is_bounded",
    "p_invariants",
    "reachability_graph",
    "simulate_batch",
    "t_invariants",
]
