"""Vectorized mega-batch lowering of the compiled GSPN interpreter.

:class:`GSPNBatchEngine` advances *B* independent GSPN replications per
vectorized step over the same compiled artifact the scalar fast path
uses (:class:`~repro.petri.gspn._CompiledGSPN`): markings live in one
``(B, n_places)`` structure-of-arrays matrix, transition enabling is a
boolean column computation, lanes sharing an enabled set reuse the
compiled ``rate_cdf`` caches, and race winners are selected with
:func:`repro.stats.choice.choice_batch` over a pre-drawn uniform block.
Lanes retire (horizon overflow, dead marking) via boolean masks; live
lanes are compacted away so late steps only pay for unfinished lanes.

Determinism contract (mirrors :mod:`repro.san.batched`):

* ``size=1`` batches are **bit-identical** to ``GSPN.simulate`` on the
  same generator: per step the engine draws one exponential via
  ``standard_exponential() * (1/total)`` — the same floats as the
  scalar ``rng.exponential(1.0/total)`` — and then one selection
  uniform *only* if the step fired (the scalar path breaks on horizon
  overflow before drawing its uniform; a single-candidate race still
  consumes one uniform, like the legacy ``rng.choice(1, ...)``).
* Larger batches draw block-wise in lane order and are
  **distribution-identical**: same per-lane law, different stream
  interleaving.
* Nets the lowering cannot vectorize — immediate transitions,
  marking-dependent rates, or a ``stop`` predicate — fall back to
  per-lane scalar :meth:`GSPN.simulate` calls inside the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.petri.gspn import GSPN
from repro.petri.net import Marking
from repro.stats.choice import choice_batch
from repro.telemetry.core import current as _current_telemetry

__all__ = ["GSPNBatchEngine", "GSPNBatchRun", "simulate_batch"]


@dataclass
class GSPNBatchRun:
    """One lane's result from a batched GSPN simulation.

    Mirrors the scalar ``(final_marking, stop_time, log)`` triple with a
    lighter firing log — ``(time, transition name)`` pairs, without the
    per-firing marking snapshots (recorded only when the batch ran with
    ``record_log=True``; empty otherwise).
    """

    final_marking: Marking
    stop_time: float = float("nan")
    log: List[Tuple[float, str]] = field(default_factory=list)


class GSPNBatchEngine:
    """SoA batch lowering of one :class:`~repro.petri.gspn.GSPN`.

    Args:
        gspn: The net to batch.  Every structural transition must carry
            a stochastic declaration, exactly like the scalar
            interpreter.
        horizon: Simulation time horizon shared by every lane.

    The engine vectorizes nets whose race is purely timed and static —
    no immediate transitions and every rate a positive constant.  Other
    nets (and batches with a ``stop`` predicate) transparently run
    lane-by-lane on the scalar interpreter, so :meth:`run` is always
    safe to call.

    Raises:
        ValueError: If some structural transition lacks a stochastic
            declaration (same message as :meth:`GSPN.simulate`).
    """

    def __init__(self, gspn: GSPN, horizon: float) -> None:
        missing = gspn._undeclared()
        if missing:
            raise ValueError(
                f"transitions without timing declaration: {missing!r}"
            )
        self.gspn = gspn
        self.horizon = horizon
        self._compiled = gspn._compile()
        self.fallback_reason: Optional[str] = None
        if gspn._immediate:
            self.fallback_reason = "net declares immediate transitions"
        elif any(
            ct.rate_static is None for ct in self._compiled.transitions
        ):
            self.fallback_reason = "net has marking-dependent rates"
        else:
            self._lower()

    @property
    def vectorized(self) -> bool:
        """Whether batches run the vectorized step loop (vs per-lane
        scalar fallback)."""
        return self.fallback_reason is None

    def _lower(self) -> None:
        """Flatten the compiled net into SoA arrays."""
        compiled = self._compiled
        initial = self.gspn.net.initial_marking().as_dict()
        place_set = set(initial)
        for ct in compiled.transitions:
            place_set.update(p for p, _ in ct.inputs)
            place_set.update(p for p, _ in ct.inhibitors)
            place_set.update(p for p, _ in ct.delta)
        self._places: List[str] = sorted(place_set)
        index = {p: i for i, p in enumerate(self._places)}
        self._initial = np.zeros(len(self._places), dtype=np.int64)
        for place, count in initial.items():
            self._initial[index[place]] = count
        self._names = [ct.name for ct in compiled.transitions]
        self._in_idx = [
            np.asarray([index[p] for p, _ in ct.inputs], dtype=np.intp)
            for ct in compiled.transitions
        ]
        self._in_need = [
            np.asarray([w for _, w in ct.inputs], dtype=np.int64)
            for ct in compiled.transitions
        ]
        self._inh_idx = [
            np.asarray([index[p] for p, _ in ct.inhibitors], dtype=np.intp)
            for ct in compiled.transitions
        ]
        self._inh_bound = [
            np.asarray([t for _, t in ct.inhibitors], dtype=np.int64)
            for ct in compiled.transitions
        ]
        self._delta_idx = [
            np.asarray([index[p] for p, _ in ct.delta], dtype=np.intp)
            for ct in compiled.transitions
        ]
        self._delta_val = [
            np.asarray([d for _, d in ct.delta], dtype=np.int64)
            for ct in compiled.transitions
        ]

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------

    def run(
        self,
        size: int,
        rng: np.random.Generator,
        stop: Optional[Callable[[Marking], bool]] = None,
        max_firings: int = 1_000_000,
        record_log: bool = False,
    ) -> List[GSPNBatchRun]:
        """Advance ``size`` independent lanes to the horizon.

        Args:
            size: Lane count (``>= 1``).
            rng: The batch's generator — the whole batch is a pure
                function of its state.
            stop: Optional marking predicate; forces the per-lane
                scalar fallback (predicates are arbitrary Python).
            max_firings: Per-lane firing cap, as in the scalar
                interpreter.
            record_log: Record ``(time, name)`` firing pairs per lane
                (costs a Python append per firing; off by default).

        Raises:
            ValueError: If ``size < 1``, or a lane exceeds
                ``max_firings``.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if self.fallback_reason is not None or stop is not None:
            runs = []
            for _ in range(size):
                marking, stop_time, log = self.gspn.simulate(
                    self.horizon, rng, stop=stop, max_firings=max_firings
                )
                runs.append(
                    GSPNBatchRun(
                        marking,
                        stop_time,
                        [(t, name) for t, name, _ in log]
                        if record_log
                        else [],
                    )
                )
            self._record_telemetry(size, 0, 0)
            return runs
        return self._run_vectorized(size, rng, max_firings, record_log)

    def _run_vectorized(
        self,
        size: int,
        rng: np.random.Generator,
        max_firings: int,
        record_log: bool,
    ) -> List[GSPNBatchRun]:
        horizon = self.horizon
        n_trans = len(self._names)
        markings = np.tile(self._initial, (size, 1))
        now = np.zeros(size)
        lane_ids = np.arange(size)
        results: List[Optional[GSPNBatchRun]] = [None] * size
        logs: List[List[Tuple[float, str]]] = [[] for _ in range(size)]
        rate_cdfs = self._compiled._rate_cdfs
        rate_cdf = self._compiled.rate_cdf
        statics = [ct.rate_static for ct in self._compiled.transitions]
        steps = 0
        lane_steps = 0

        def retire(local: np.ndarray) -> None:
            for j in local:
                lane = int(lane_ids[j])
                results[lane] = GSPNBatchRun(
                    self._marking_of(markings[j]),
                    float("nan"),
                    logs[lane],
                )

        while lane_ids.size:
            if steps >= max_firings:
                raise ValueError(
                    f"exceeded {max_firings} firings; immediate loop likely"
                )
            k = lane_ids.size
            steps += 1
            lane_steps += k
            enabled = np.empty((k, n_trans), dtype=bool)
            for t in range(n_trans):
                col = (
                    (markings[:, self._in_idx[t]] >= self._in_need[t])
                    .all(axis=1)
                    if self._in_idx[t].size
                    else np.ones(k, dtype=bool)
                )
                if self._inh_idx[t].size:
                    col &= (
                        markings[:, self._inh_idx[t]] < self._inh_bound[t]
                    ).all(axis=1)
                enabled[:, t] = col
            dead = ~enabled.any(axis=1)
            if dead.any():
                retire(np.nonzero(dead)[0])
                live = ~dead
                lane_ids = lane_ids[live]
                markings = markings[live]
                now = now[live]
                enabled = enabled[live]
                if not lane_ids.size:
                    break
                k = lane_ids.size

            # Group lanes by enabled set so each group reuses the
            # compiled (total, cdf) cache — including its float-exact
            # sequential summation for small candidate sets.
            totals = np.empty(k)
            group_cdfs: Dict[bytes, Tuple[np.ndarray, np.ndarray]] = {}
            group_rows: Dict[bytes, List[int]] = {}
            for j in range(k):
                key_bytes = enabled[j].tobytes()
                group_rows.setdefault(key_bytes, []).append(j)
            for key_bytes, rows in group_rows.items():
                candidates = tuple(
                    int(i) for i in np.nonzero(enabled[rows[0]])[0]
                )
                cached = rate_cdfs.get(candidates)
                if cached is None:
                    cached = rate_cdf(
                        candidates, [statics[i] for i in candidates]
                    )
                    rate_cdfs[candidates] = cached
                total, cdf = cached
                totals[rows] = 1.0 / total
                group_cdfs[key_bytes] = (
                    np.asarray(candidates, dtype=np.intp),
                    np.asarray(cdf),
                )

            # One exponential per live lane (scalar parity:
            # std_exponential * (1/total)), retiring overflow lanes
            # BEFORE any selection uniform is drawn.
            delays = rng.standard_exponential(k) * totals
            new_now = now + delays
            over = new_now > horizon
            if over.any():
                retire(np.nonzero(over)[0])
                survivors = ~over
                lane_ids = lane_ids[survivors]
                markings = markings[survivors]
                new_now = new_now[survivors]
                enabled = enabled[survivors]
                if not lane_ids.size:
                    break
                k = lane_ids.size
            now = new_now

            # One selection uniform per firing lane — even when the
            # race has a single candidate, like the scalar path.
            # choice_batch is element-wise bisect_right parity, so each
            # lane picks the same winner the scalar loop would.
            uniforms = rng.random(k)
            chosen = np.empty(k, dtype=np.intp)
            survivor_rows: Dict[bytes, List[int]] = {}
            for j in range(k):
                survivor_rows.setdefault(enabled[j].tobytes(), []).append(j)
            for key_bytes, rows in survivor_rows.items():
                candidates, cdf = group_cdfs[key_bytes]
                chosen[rows] = candidates[choice_batch(cdf, uniforms[rows])]
            for t in np.unique(chosen):
                rows = np.nonzero(chosen == t)[0]
                if self._delta_idx[t].size:
                    markings[
                        rows[:, None], self._delta_idx[t][None, :]
                    ] += self._delta_val[t]
            if record_log:
                for j in range(k):
                    logs[int(lane_ids[j])].append(
                        (float(now[j]), self._names[chosen[j]])
                    )

        self._record_telemetry(size, steps, lane_steps)
        return [run for run in results]  # all lanes retired

    def _marking_of(self, counts: np.ndarray) -> Marking:
        return Marking._from_nonzero_sorted(
            tuple(
                (place, int(count))
                for place, count in zip(self._places, counts)
                if count
            )
        )

    @staticmethod
    def _record_telemetry(size: int, steps: int, lane_steps: int) -> None:
        telemetry = _current_telemetry()
        if telemetry is None:
            return
        metrics = telemetry.metrics
        metrics.inc("batch.batches")
        metrics.inc("batch.lanes", size)
        metrics.inc("batch.lane_retirements", size)
        if steps:
            metrics.inc("batch.steps", steps)
            metrics.inc("batch.lane_steps", lane_steps)


def simulate_batch(
    gspn: GSPN,
    horizon: float,
    size: int,
    rng: np.random.Generator,
    stop: Optional[Callable[[Marking], bool]] = None,
    max_firings: int = 1_000_000,
    record_log: bool = False,
) -> List[GSPNBatchRun]:
    """One-shot convenience over :class:`GSPNBatchEngine`.

    Builds the engine and runs a single batch; reuse an engine directly
    when running many batches of the same net.
    """
    return GSPNBatchEngine(gspn, horizon).run(
        size, rng, stop=stop, max_firings=max_firings, record_log=record_log
    )
