"""Structural and behavioural analysis of Petri nets.

Provides bounded reachability-graph construction, deadlock detection,
boundedness checks and P/T-invariant computation via exact rational
Gaussian elimination (no external solver needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.petri.net import Marking, PetriNet


@dataclass
class ReachabilityGraph:
    """Explicit (possibly truncated) reachability graph.

    Attributes:
        markings: All discovered markings; index 0 is the initial marking.
        edges: ``(source_index, transition_name, target_index)`` triples.
        truncated: True if exploration hit ``max_markings`` before
            exhausting the state space.
    """

    markings: List[Marking]
    edges: List[Tuple[int, str, int]] = field(default_factory=list)
    truncated: bool = False

    @property
    def n_markings(self) -> int:
        """Number of distinct markings discovered."""
        return len(self.markings)

    def successors(self, index: int) -> List[Tuple[str, int]]:
        """Outgoing ``(transition, target)`` pairs of marking ``index``."""
        return [(t, dst) for src, t, dst in self.edges if src == index]


def reachability_graph(
    net: PetriNet,
    max_markings: int = 10000,
    initial: Optional[Marking] = None,
) -> ReachabilityGraph:
    """Breadth-first reachability exploration.

    Args:
        net: The net to explore.
        max_markings: Truncation bound (the graph of an unbounded net is
            infinite).
        initial: Override for the initial marking.

    Returns:
        The (possibly truncated) :class:`ReachabilityGraph`.
    """
    start = initial if initial is not None else net.initial_marking()
    index: Dict[Marking, int] = {start: 0}
    markings = [start]
    edges: List[Tuple[int, str, int]] = []
    frontier = [0]
    truncated = False
    while frontier:
        next_frontier: List[int] = []
        for src in frontier:
            marking = markings[src]
            for transition in net.enabled_transitions(marking):
                successor = net.fire(transition, marking)
                if successor not in index:
                    if len(markings) >= max_markings:
                        truncated = True
                        continue
                    index[successor] = len(markings)
                    markings.append(successor)
                    next_frontier.append(index[successor])
                edges.append((src, transition.name, index[successor]))
        frontier = next_frontier
    return ReachabilityGraph(markings=markings, edges=edges, truncated=truncated)


def deadlock_markings(graph: ReachabilityGraph) -> List[Marking]:
    """Markings with no outgoing edges (dead states)."""
    has_out: Set[int] = {src for src, _, _ in graph.edges}
    return [m for i, m in enumerate(graph.markings) if i not in has_out]


def is_bounded(
    net: PetriNet, bound: int = 1, max_markings: int = 10000
) -> Optional[bool]:
    """Check k-boundedness by exhaustive exploration.

    Returns:
        True/False if decidable within ``max_markings`` markings, else
        ``None`` (exploration truncated without finding a violation).
    """
    graph = reachability_graph(net, max_markings=max_markings)
    for marking in graph.markings:
        for place in net.places:
            if marking[place.name] > bound:
                return False
    return None if graph.truncated else True


def _rational_nullspace(matrix: List[List[int]]) -> List[List[Fraction]]:
    """Exact null-space basis of ``matrix`` (rows × cols) over the rationals."""
    if not matrix:
        return []
    rows = [list(map(Fraction, row)) for row in matrix]
    n_rows, n_cols = len(rows), len(rows[0])
    pivot_cols: List[int] = []
    r = 0
    for c in range(n_cols):
        pivot = next(
            (i for i in range(r, n_rows) if rows[i][c] != 0),
            None,
        )
        if pivot is None:
            continue
        rows[r], rows[pivot] = rows[pivot], rows[r]
        factor = rows[r][c]
        rows[r] = [v / factor for v in rows[r]]
        for i in range(n_rows):
            if i != r and rows[i][c] != 0:
                coef = rows[i][c]
                rows[i] = [a - coef * b for a, b in zip(rows[i], rows[r])]
        pivot_cols.append(c)
        r += 1
        if r == n_rows:
            break
    free_cols = [c for c in range(n_cols) if c not in pivot_cols]
    basis: List[List[Fraction]] = []
    for free in free_cols:
        vec = [Fraction(0)] * n_cols
        vec[free] = Fraction(1)
        for row_idx, pc in enumerate(pivot_cols):
            vec[pc] = -rows[row_idx][free]
        basis.append(vec)
    return basis


def _integerize(vector: Sequence[Fraction]) -> List[int]:
    """Scale a rational vector to the smallest integer multiple."""
    denominators = [v.denominator for v in vector]
    lcm = 1
    for d in denominators:
        g = _gcd(lcm, d)
        lcm = lcm // g * d
    ints = [int(v * lcm) for v in vector]
    g = 0
    for v in ints:
        g = _gcd(g, abs(v))
    if g > 1:
        ints = [v // g for v in ints]
    return ints


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def p_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Place invariants: integer vectors y with yᵀC = 0.

    A P-invariant certifies a conservation law — the weighted token count
    over its support is constant in every reachable marking.

    Returns:
        One ``{place: weight}`` dict per basis vector (zero weights
        omitted).
    """
    place_names, _, matrix = net.incidence_matrix()
    # y^T C = 0  <=>  C^T y = 0.
    transposed = [list(col) for col in zip(*matrix)] if matrix else []
    basis = _rational_nullspace(transposed)
    invariants = []
    for vec in basis:
        ints = _integerize(vec)
        invariants.append(
            {p: w for p, w in zip(place_names, ints) if w != 0}
        )
    return invariants


def t_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Transition invariants: integer vectors x with Cx = 0.

    A T-invariant is a firing-count vector whose execution reproduces the
    starting marking (a cyclic behaviour).

    Returns:
        One ``{transition: count}`` dict per basis vector.
    """
    _, transition_names, matrix = net.incidence_matrix()
    basis = _rational_nullspace(matrix)
    invariants = []
    for vec in basis:
        ints = _integerize(vec)
        invariants.append(
            {t: w for t, w in zip(transition_names, ints) if w != 0}
        )
    return invariants
