"""SEED rules: RNGs in work units must derive from spawned seeds.

The runner's contract is that replication ``i`` draws from the ``i``-th
child of the root ``SeedSequence``, spawned centrally before dispatch.
Two code shapes quietly defeat it:

* **SEED001** — a function that *receives* seed material (an ``rng`` /
  ``seed`` / ``seed_seq`` parameter) but constructs its generator from
  a hard-coded literal instead: every call sees the same stream and
  the caller's seed plumbing is dead code.
* **SEED002** — one generator reused across a replication loop
  (``for _ in range(replications): body(rng)``): replications become
  order-dependent, so results change with chunking and backends.  The
  retained legacy shared-generator paths (sequential APIs where the
  caller owns one generator, preserved bit-exact since PR1) are
  recorded in the committed baseline — the documented exception.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.findings import Finding
from repro.analysis.pyast import (
    FUNCTION_TYPES,
    function_scopes,
    qualified_name,
    walk_shallow,
)
from repro.analysis.rules import RuleContext, rule

#: Parameter names that mark a function as seed-plumbed.
_SEED_PARAMS = {"rng", "seed", "seed_seq", "seed_sequence", "root_seed"}

#: Local names the reuse heuristic treats as generators.
_RNG_NAMES = {"rng", "generator"}

_RNG_CTORS = {"numpy.random.default_rng", "numpy.random.Generator"}


def _param_names(func: ast.AST) -> Set[str]:
    args = func.args
    return {
        arg.arg
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }


@rule("SEED001", "seed parameter ignored for a hard-coded literal seed")
def seed001(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for scope, _chain in function_scopes(ctx.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not (_param_names(scope) & _SEED_PARAMS):
            continue
        for node in walk_shallow(scope):
            if not isinstance(node, ast.Call):
                continue
            if qualified_name(node.func, ctx.imports) not in _RNG_CTORS:
                continue
            if node.args and isinstance(node.args[0], ast.Constant) and (
                node.args[0].value is not None
            ):
                findings.append(
                    ctx.finding(
                        "SEED001",
                        node,
                        f"{scope.name}() takes seed material as a "
                        "parameter but builds its generator from the "
                        f"literal {node.args[0].value!r} — derive it from "
                        "the parameter instead",
                    )
                )
    return findings


def _replication_range(node: ast.AST) -> bool:
    """Whether ``node`` is a ``range(...)`` whose argument text smells
    like a replication count (mentions ``rep``)."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    ):
        return False
    try:
        text = " ".join(ast.unparse(arg) for arg in node.args)
    except Exception:  # pragma: no cover - defensive
        return False
    return "rep" in text.lower()


def _rng_like_names(scope: ast.AST, ctx: RuleContext) -> Set[str]:
    """Generator-ish names visible in ``scope``: rng-named parameters
    plus locals assigned from a Generator constructor."""
    names: Set[str] = set()
    if isinstance(scope, FUNCTION_TYPES):
        names |= _param_names(scope) & _RNG_NAMES
    for node in walk_shallow(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if qualified_name(node.value.func, ctx.imports) in _RNG_CTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _loop_bodies(scope: ast.AST) -> Iterable[ast.AST]:
    """Replication loops in ``scope``: for-loops and comprehensions
    over a replication-count ``range``. Yields the loop node itself."""
    for node in walk_shallow(scope):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _replication_range(node.iter):
                yield node
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            if any(_replication_range(gen.iter) for gen in node.generators):
                yield node


@rule("SEED002", "generator reuse across a replication loop")
def seed002(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for scope, _chain in function_scopes(ctx.tree):
        rng_names = _rng_like_names(scope, ctx)
        if not rng_names:
            continue
        for loop in _loop_bodies(scope):
            # A generator rebound inside the loop body is per-iteration.
            rebound: Set[str] = set()
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                for node in ast.walk(loop):
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                rebound.add(target.id)
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                passed = [
                    arg
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                    if isinstance(arg, ast.Name)
                    and arg.id in rng_names
                    and arg.id not in rebound
                ]
                for arg in passed:
                    findings.append(
                        ctx.finding(
                            "SEED002",
                            node,
                            f"generator {arg.id!r} is reused across a "
                            "replication loop — spawn one SeedSequence "
                            "child per replication (runner mode) so "
                            "results are chunking- and backend-invariant",
                        )
                    )
    return findings
