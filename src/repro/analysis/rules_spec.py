"""SPEC rules: static lint of scenario JSON catalogs.

Catalog files (one :class:`~repro.scenarios.spec.Scenario` dict per
file) are validated **without building anything** — no networks, no
threats, no campaign state.  The checks mirror
``Scenario.from_dict``/``__post_init__`` validation plus the component
registries, so a broken catalog fails the lint gate with a file/line
instead of failing mid-suite at run time:

* **SPEC001** — the file is not valid JSON.
* **SPEC002** — unknown scenario field.
* **SPEC003** — unregistered topology/threat/catalog/plant/kind name.
* **SPEC004** — field type or range violation (including cross-field
  constraints like ``response_delay_rate`` without
  ``response_enabled``).

Findings carry the line of the offending key when it can be located in
the raw text (JSON parsing discards positions; a simple text search
recovers them well enough for error messages).
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import RuleContext, rule

#: Keys whose presence (next to a string ``name``) marks a JSON object
#: as a scenario spec when sniffing arbitrary ``.json`` files.
SCENARIO_MARKER_KEYS = (
    "topology", "threat", "plant", "catalog", "design_kind",
    "replications", "horizon",
)


def looks_like_scenario(data: object) -> bool:
    """Whether parsed JSON sniffs as a single scenario spec."""
    return (
        isinstance(data, dict)
        and isinstance(data.get("name"), str)
        and any(key in data for key in SCENARIO_MARKER_KEYS)
    )


def _key_line(ctx: RuleContext, key: str) -> int:
    """Best-effort line of ``"key"`` in the raw text (1 if unknown)."""
    needle = f'"{key}"'
    for number, text in enumerate(ctx.lines, start=1):
        if needle in text:
            return number
    return 1


def _spec_finding(
    ctx: RuleContext, rule_id: str, key: Optional[str], message: str
) -> Finding:
    line = _key_line(ctx, key) if key else 1
    return ctx.finding(rule_id, line, message)


@rule("SPEC001", "catalog file is not valid JSON", kind="spec")
def spec001(ctx: RuleContext) -> List[Finding]:
    if ctx.data is not None:
        return []
    try:
        json.loads(ctx.text)
        return []  # pragma: no cover - engine parses first
    except json.JSONDecodeError as exc:
        return [
            ctx.finding(
                "SPEC001", exc.lineno, f"invalid JSON: {exc.msg}"
            )
        ]


@rule("SPEC002", "unknown scenario field", kind="spec")
def spec002(ctx: RuleContext) -> List[Finding]:
    from repro.scenarios.spec import Scenario

    if not isinstance(ctx.data, dict):
        return []
    known = {f.name for f in dataclass_fields(Scenario)}
    findings = []
    for key in sorted(set(ctx.data) - known):
        findings.append(
            _spec_finding(
                ctx,
                "SPEC002",
                key,
                f"unknown scenario field {key!r} (known fields: "
                f"{', '.join(sorted(known))})",
            )
        )
    return findings


@rule("SPEC003", "unregistered component/threat/plant name", kind="spec")
def spec003(ctx: RuleContext) -> List[Finding]:
    from repro.scada.components import ComponentKind
    from repro.scenarios.components import (
        available_catalogs,
        available_plants,
        available_threats,
        available_topologies,
    )

    if not isinstance(ctx.data, dict):
        return []
    registries = {
        "topology": available_topologies(),
        "threat": available_threats(),
        "catalog": available_catalogs(),
        "plant": available_plants(),
    }
    findings = []
    for key, names in registries.items():
        value = ctx.data.get(key)
        if isinstance(value, str) and value not in names:
            findings.append(
                _spec_finding(
                    ctx,
                    "SPEC003",
                    key,
                    f"unregistered {key} {value!r}; expected one of "
                    f"{', '.join(names)}",
                )
            )
    kinds = ctx.data.get("kinds")
    if isinstance(kinds, list):
        valid = [k.value for k in ComponentKind]
        for value in kinds:
            if isinstance(value, str) and value not in valid:
                findings.append(
                    _spec_finding(
                        ctx,
                        "SPEC003",
                        "kinds",
                        f"unknown component kind {value!r}; expected one "
                        f"of {', '.join(valid)}",
                    )
                )
    return findings


def _type_error(
    ctx: RuleContext, key: str, expected: str, value: object
) -> Finding:
    return _spec_finding(
        ctx,
        "SPEC004",
        key,
        f"field {key!r} must be {expected}, got {value!r}",
    )


@rule("SPEC004", "scenario field type/range violation", kind="spec")
def spec004(ctx: RuleContext) -> List[Finding]:
    from repro.scenarios.spec import DESIGN_KINDS

    data = ctx.data
    if data is None:
        return []
    if not isinstance(data, dict):
        return [
            ctx.finding(
                "SPEC004",
                1,
                "catalog file must contain one JSON object (a single "
                f"scenario spec), got {type(data).__name__}",
            )
        ]
    findings: List[Finding] = []

    def check(key: str, ok: bool, expected: str) -> None:
        if key in data and not ok:
            findings.append(_type_error(ctx, key, expected, data[key]))

    def is_number(value: object) -> bool:
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )

    if "name" not in data:
        findings.append(
            ctx.finding(
                "SPEC004", 1,
                "missing required field 'name' (the registry key)",
            )
        )
    name = data.get("name")
    check("name", isinstance(name, str) and bool(name), "a non-empty string")
    for key in ("title", "description", "topology", "threat", "catalog",
                "plant"):
        check(key, isinstance(data.get(key, ""), str), "a string")
    check(
        "design_kind",
        data.get("design_kind", "full") in DESIGN_KINDS,
        f"one of {', '.join(DESIGN_KINDS)}",
    )
    for key in ("two_level", "tick_elision", "response_enabled"):
        check(key, isinstance(data.get(key, False), bool), "a boolean")
    reps = data.get("replications", 1)
    check(
        "replications",
        isinstance(reps, int) and not isinstance(reps, bool) and reps >= 1,
        "an integer >= 1",
    )
    for key in ("horizon", "tick_interval"):
        value = data.get(key, 1.0)
        check(key, is_number(value) and value > 0, "a number > 0")
    delay = data.get("response_delay_rate")
    if delay is not None and "response_delay_rate" in data:
        if not (is_number(delay) and delay > 0):
            findings.append(
                _type_error(
                    ctx, "response_delay_rate", "a number > 0 or null",
                    delay,
                )
            )
        elif not data.get("response_enabled", False):
            findings.append(
                _spec_finding(
                    ctx,
                    "SPEC004",
                    "response_delay_rate",
                    "response_delay_rate requires response_enabled=true "
                    "(a delay without a response would be silently "
                    "ignored)",
                )
            )
    kinds = data.get("kinds")
    if kinds is not None and "kinds" in data:
        if not (
            isinstance(kinds, list)
            and all(isinstance(k, str) for k in kinds)
        ):
            findings.append(
                _type_error(
                    ctx, "kinds", "null or a list of strings", kinds
                )
            )
    tags = data.get("tags", [])
    check(
        "tags",
        isinstance(tags, list) and all(isinstance(t, str) for t in tags),
        "a list of strings",
    )
    for key in ("topology_params", "threat_params"):
        check(key, isinstance(data.get(key, {}), dict), "an object")
    return findings


# ---- catalog entry points (shared by engine and scenarios CLI) ---------


def lint_catalog_text(
    text: str, path: str
) -> List[Finding]:
    """Lint one catalog file's raw text with every SPEC rule."""
    from repro.analysis.engine import run_rules_on_spec

    return run_rules_on_spec(text, path)


def lint_catalog_file(path: str) -> List[Finding]:
    """Lint one catalog file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_catalog_text(handle.read(), path)
