"""Shared AST utilities for the python rule packs.

Static analysis of dynamic Python is necessarily heuristic; these
helpers centralise the approximations so every rule resolves names,
scopes and lock contexts the same way:

* :func:`import_map` / :func:`qualified_name` — resolve dotted call
  targets through the module's imports (``np.random.default_rng`` →
  ``numpy.random.default_rng``), so rules match fully-qualified names
  regardless of aliasing.  Names whose root was never imported resolve
  to ``None`` and are ignored — a local variable that happens to be
  called ``random`` never trips a rule.
* :func:`function_scopes` / :func:`scope_locals` — shallow per-scope
  name binding, used to tell module globals from locals and closure
  captures.
* :func:`in_lock_context` — whether a node sits under a ``with`` whose
  context expression mentions a lock, the exemption the RACE rules
  grant.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Scope-introducing nodes (module scope included on purpose).
SCOPE_TYPES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def import_map(tree: ast.AST) -> Dict[str, str]:
    """Local alias → dotted origin for every import in the module.

    ``import numpy as np`` maps ``np`` → ``numpy``;
    ``from time import time`` maps ``time`` → ``time.time``;
    ``import numpy.random`` maps ``numpy`` → ``numpy`` (attribute
    access spells the rest).  Relative imports keep their bare module
    text — they never shadow the stdlib/numpy names the rules match.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                origin = f"{module}.{alias.name}" if module else alias.name
                mapping[local] = origin
    return mapping


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (None if the
    chain is not rooted in a plain name)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def qualified_name(
    node: ast.AST, imports: Dict[str, str]
) -> Optional[str]:
    """The fully-qualified dotted name of an expression, resolved
    through the module's imports.

    Returns ``None`` when the expression is not a plain dotted chain or
    when its root name was never imported (so locals never match).
    """
    parts = dotted_parts(node)
    if not parts:
        return None
    origin = imports.get(parts[0])
    if origin is None:
        return None
    return ".".join([origin] + parts[1:])


def function_scopes(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield ``(scope, enclosing_scopes)`` for the module and every
    function/lambda, outermost first.  ``enclosing_scopes`` lists the
    scope chain from the module inward (class bodies are not scopes)."""

    def walk(node: ast.AST, chain: List[ast.AST]) -> Iterator:
        if isinstance(node, SCOPE_TYPES):
            yield node, list(chain)
            chain = chain + [node]
        for child in ast.iter_child_nodes(node):
            yield from walk(child, chain)

    yield from walk(tree, [])


def scope_locals(scope: ast.AST) -> Set[str]:
    """Names bound directly in ``scope``: parameters plus shallow
    assignment/for/with/import/def targets.  Does not descend into
    nested functions, lambdas or class bodies; ``global``-declared
    names are excluded (they bind at module level)."""
    names: Set[str] = set()
    if isinstance(scope, FUNCTION_TYPES):
        args = scope.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    globals_declared: Set[str] = set()

    def collect(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)
                continue  # nested scope: do not descend
            if isinstance(child, ast.Lambda):
                continue
            if isinstance(child, ast.ClassDef):
                names.add(child.name)
                continue
            if isinstance(child, ast.Global):
                globals_declared.update(child.names)
            elif isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    # Only Store-context names bind: in CACHE[k] = v or
                    # obj.attr = v the base name is a Load, not a local.
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name) and isinstance(
                            name_node.ctx, ast.Store
                        ):
                            names.add(name_node.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(child.target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        for name_node in ast.walk(item.optional_vars):
                            if isinstance(name_node, ast.Name):
                                names.add(name_node.id)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            collect(child)

    collect(scope)
    return names - globals_declared


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested function
    scopes — each scope reports its own findings exactly once."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, FUNCTION_TYPES):
            continue
        yield child
        yield from walk_shallow(child)


def declared_globals(scope: ast.AST) -> Set[str]:
    """Names declared ``global`` directly inside ``scope`` (shallow)."""
    found: Set[str] = set()

    def collect(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, SCOPE_TYPES[1:]):
                continue
            if isinstance(child, ast.Global):
                found.update(child.names)
            collect(child)

    collect(scope)
    return found


def ancestors(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Iterator[ast.AST]:
    """Walk the parent chain of ``node`` up to the module."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def in_lock_context(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> bool:
    """Whether ``node`` sits inside ``with <something lock-ish>:``.

    The RACE rules treat any ``with`` whose context expression mentions
    ``lock`` (case-insensitive — ``self._lock``, ``state.write_lock``,
    ``threading.Lock()``) as adequate synchronisation.
    """
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                try:
                    text = ast.unparse(item.context_expr)
                except Exception:  # pragma: no cover - defensive
                    text = ""
                if "lock" in text.lower():
                    return True
    return False


def module_mutable_globals(tree: ast.AST) -> Set[str]:
    """Module-level names bound to mutable containers.

    Covers list/dict/set displays and comprehensions plus bare
    ``dict()``/``list()``/``set()``/``collections.*`` constructor
    calls — the bindings whose in-function mutation the RACE rules
    flag.
    """
    mutable: Set[str] = set()
    assert isinstance(tree, ast.Module)
    mutable_ctors = {
        "dict", "list", "set", "defaultdict", "OrderedDict",
        "Counter", "deque",
    }
    for node in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        is_mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        )
        if isinstance(value, ast.Call):
            parts = dotted_parts(value.func)
            if parts and parts[-1] in mutable_ctors:
                is_mutable = True
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)
    return mutable


#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
})
