"""Inline ``# repro: allow[RULE-ID] reason`` suppressions.

A finding is suppressed when the offending line — or the line directly
above it — carries an allow comment naming its rule id **and a
non-empty reason**.  Reasonless allows are deliberately inert: the
comment documents *why* the hazard is acceptable, and an allow that
cannot say why should not silence the checker.

::

    event = JobEvent(..., time.time(), ...)  # repro: allow[DET004] display only
    # repro: allow[SEED002] legacy shared-generator contract
    results = [body(rng) for _ in range(replications)]

Multiple ids are comma-separated: ``# repro: allow[DET004,SEED002] ...``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]\s*(.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed allow comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str

    @property
    def effective(self) -> bool:
        """Reasonless allows do not suppress (documented contract)."""
        return bool(self.reason)


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """All allow comments in a file's source lines."""
    found: List[Suppression] = []
    for number, text in enumerate(lines, start=1):
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        ids = tuple(
            part.strip()
            for part in match.group(1).split(",")
            if part.strip()
        )
        found.append(
            Suppression(
                line=number, rule_ids=ids, reason=match.group(2).strip()
            )
        )
    return found


def suppression_for(
    finding: Finding, by_line: Dict[int, List[Suppression]]
) -> Optional[Suppression]:
    """The suppression covering ``finding``, if any.

    An allow covers findings on its own line and on the line below it
    (comment-above style).
    """
    for line in (finding.line, finding.line - 1):
        for suppression in by_line.get(line, ()):
            if finding.rule in suppression.rule_ids and suppression.effective:
                return suppression
    return None


def split_suppressed(
    findings: Sequence[Finding], lines: Sequence[str]
) -> Tuple[List[Finding], List[Tuple[Finding, str]]]:
    """Partition ``findings`` into (kept, suppressed-with-reason)."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in parse_suppressions(lines):
        by_line.setdefault(suppression.line, []).append(suppression)
    kept: List[Finding] = []
    suppressed: List[Tuple[Finding, str]] = []
    for finding in findings:
        match = suppression_for(finding, by_line)
        if match is None:
            kept.append(finding)
        else:
            suppressed.append((finding, match.reason))
    return kept, suppressed
