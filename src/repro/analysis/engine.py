"""The analysis engine: file discovery, rule dispatch, suppression.

One :func:`analyze_paths` call walks the given files/directories,
parses each source file exactly once, runs every applicable rule,
drops findings covered by inline allows and stamps content
fingerprints — returning an :class:`AnalysisReport` the CLI (or the
baseline gate) consumes.

File kinds:

* ``*.py`` — AST rules.  A file that does not parse yields a single
  ``PARSE001`` finding (a syntax error in experiment code is very much
  a determinism hazard).
* ``*.json`` — SPEC catalog rules.  Files under a directory named
  ``catalogs`` are always treated as scenario specs; any other JSON is
  sniffed (:func:`~repro.analysis.rules_spec.looks_like_scenario`) so
  benchmark baselines and the like pass through untouched.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import (
    Finding,
    fingerprint_findings,
    sort_findings,
)
from repro.analysis.rules import Rule, RuleContext, all_rules
from repro.analysis.suppressions import split_suppressed

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class AnalysisReport:
    """Everything one analysis run produced.

    Attributes:
        findings: Unsuppressed findings, fingerprinted and sorted.
        suppressed: ``(finding, reason)`` pairs silenced by inline
            allows.
        files_scanned: How many files rules actually ran on.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned

    def finalize(self) -> "AnalysisReport":
        self.findings = sort_findings(self.findings)
        self.suppressed.sort(key=lambda pair: (
            pair[0].path, pair[0].line, pair[0].col, pair[0].rule
        ))
        return self


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _run_python_rules(
    text: str, rel_path: str, rules: Sequence[Rule]
) -> List[Finding]:
    lines = text.splitlines()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE001",
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = RuleContext(path=rel_path, text=text, lines=lines, tree=tree)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return findings


def run_rules_on_spec(
    text: str, rel_path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run the SPEC rules over one catalog file's raw text."""
    if rules is None:
        rules = all_rules(kind="spec")
    try:
        data: Optional[object] = json.loads(text)
    except json.JSONDecodeError:
        data = None
    ctx = RuleContext(
        path=rel_path, text=text, lines=text.splitlines(), data=data
    )
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return findings


def analyze_source(
    text: str,
    path: str = "<string>",
    kind: str = "python",
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Analyze one in-memory source (the unit-test entry point).

    Suppressions are applied; fingerprints are stamped.
    """
    if kind == "python":
        selected = rules or all_rules(kind="python")
        raw = _run_python_rules(text, path, selected)
    elif kind == "spec":
        raw = run_rules_on_spec(text, path, rules)
    else:
        raise ValueError(f"unknown source kind {kind!r}")
    lines = text.splitlines()
    kept, suppressed = split_suppressed(raw, lines)
    report = AnalysisReport(
        findings=fingerprint_findings(kept, lines),
        suppressed=suppressed,
        files_scanned=1,
    )
    return report.finalize()


def _is_definite_catalog(path: Path) -> bool:
    return "catalogs" in path.parts[:-1]


def _analyze_file(path: Path, root: Optional[Path]) -> AnalysisReport:
    rel = _relative_posix(path, root)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return AnalysisReport(
            findings=[
                Finding(
                    rule="PARSE001",
                    path=rel,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            ],
            files_scanned=1,
        )
    if path.suffix == ".py":
        return analyze_source(text, rel, kind="python")
    if path.suffix == ".json":
        if not _is_definite_catalog(path):
            from repro.analysis.rules_spec import looks_like_scenario

            try:
                data = json.loads(text)
            except json.JSONDecodeError:
                return AnalysisReport()  # not sniffable, not a catalog
            if not looks_like_scenario(data):
                return AnalysisReport()
        return analyze_source(text, rel, kind="spec")
    return AnalysisReport()


def _iter_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith((".py", ".json")):
                        yield Path(dirpath) / name
        elif path.exists():
            yield path


def analyze_paths(
    paths: Sequence[str], root: Optional[str] = None
) -> AnalysisReport:
    """Analyze files and directories; the main library entry point.

    Args:
        paths: Files or directories (directories are walked for
            ``*.py`` / ``*.json``).
        root: Paths on findings are reported relative to this
            directory (default: the current working directory).

    Returns:
        A finalized (sorted, fingerprinted) :class:`AnalysisReport`.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    report = AnalysisReport()
    for file_path in _iter_files(paths):
        report.extend(_analyze_file(file_path, root_path))
    return report.finalize()
