"""DET rules: sources of non-determinism in experiment code.

The determinism contract (see ``repro.exec.seeding``) requires every
random draw to flow from a spawned ``SeedSequence`` and no experiment
path to consult ambient state — wall clocks, OS entropy, process-global
RNGs.  These rules flag the constructs that silently break it:

* **DET001** — unseeded ``np.random.default_rng()`` / ``Generator``
  construction: results change run to run with nothing recorded.
  (Drawing a fresh ``SeedSequence()`` and *recording* its entropy is
  the sanctioned alternative — that is what ``Session`` and the fixed
  ``bootstrap_ci``/``morris``/``latin_hypercube`` do.)
* **DET002** — stdlib ``random`` module functions: hidden process-global
  state, shared across threads.
* **DET003** — legacy ``numpy.random.*`` global-state API
  (``np.random.seed``, ``np.random.rand``, ...): one mutable global
  stream, unseedable per work unit.
* **DET004** — wall-clock / ambient-entropy calls (``time.time``,
  ``datetime.now``, ``uuid.uuid4``, ``os.urandom``, ``secrets.*``)
  anywhere experiment code runs.  Monotonic clocks
  (``time.monotonic``/``perf_counter``) are fine and are the
  sanctioned replacement for ordering; a wall clock kept purely for
  display belongs under an ``allow`` with that reason.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.pyast import qualified_name
from repro.analysis.rules import RuleContext, rule

#: numpy bit-generator constructors (an unseeded one inside Generator()
#: is the same hazard as an unseeded default_rng()).
_BIT_GENERATORS = {
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

#: Legacy numpy global-state functions (non-exhaustive but covers the
#: draws and state management that appear in real code).
_NUMPY_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "ranf", "sample",
    "random_sample", "random_integers", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "beta",
    "binomial", "poisson", "exponential", "gamma", "lognormal",
    "get_state", "set_state", "bytes",
}

#: Wall-clock and ambient-entropy calls.
_WALLCLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
    "uuid.uuid1": "uuid1()",
    "uuid.uuid4": "uuid4()",
    "os.urandom": "os.urandom()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
    "secrets.token_urlsafe": "secrets.token_urlsafe()",
    "secrets.randbits": "secrets.randbits()",
    "secrets.choice": "secrets.choice()",
}


def _is_unseeded_call(call: ast.Call) -> bool:
    """No arguments, or an explicit ``None`` seed."""
    if call.keywords:
        return any(
            kw.arg in ("seed", "entropy")
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is None
            for kw in call.keywords
        ) and not call.args
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


@rule("DET001", "unseeded default_rng()/Generator construction")
def det001(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = qualified_name(node.func, ctx.imports)
        if name == "numpy.random.default_rng" and _is_unseeded_call(node):
            findings.append(
                ctx.finding(
                    "DET001",
                    node,
                    "unseeded np.random.default_rng() — results are "
                    "unreproducible; derive the generator from a spawned "
                    "SeedSequence (or draw SeedSequence() fresh entropy "
                    "and record it)",
                )
            )
        elif name == "numpy.random.Generator" and node.args:
            inner = node.args[0]
            if (
                isinstance(inner, ast.Call)
                and qualified_name(inner.func, ctx.imports)
                in _BIT_GENERATORS
                and _is_unseeded_call(inner)
            ):
                findings.append(
                    ctx.finding(
                        "DET001",
                        node,
                        "np.random.Generator over an unseeded bit "
                        "generator — seed it from a spawned SeedSequence",
                    )
                )
    return findings


@rule("DET002", "stdlib random module global functions")
def det002(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = qualified_name(node.func, ctx.imports)
        if name and name.startswith("random.") and name.count(".") == 1:
            findings.append(
                ctx.finding(
                    "DET002",
                    node,
                    f"stdlib {name}() draws from the hidden process-global "
                    "stream — use a numpy Generator derived from a spawned "
                    "SeedSequence",
                )
            )
    return findings


@rule("DET003", "legacy numpy.random global-state API")
def det003(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = qualified_name(node.func, ctx.imports)
        if (
            name
            and name.startswith("numpy.random.")
            and name.rsplit(".", 1)[1] in _NUMPY_LEGACY
        ):
            findings.append(
                ctx.finding(
                    "DET003",
                    node,
                    f"legacy {name}() mutates numpy's global RNG state — "
                    "use a Generator derived from a spawned SeedSequence",
                )
            )
    return findings


@rule("DET004", "wall-clock / ambient-entropy call")
def det004(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = qualified_name(node.func, ctx.imports)
        if name in _WALLCLOCK:
            findings.append(
                ctx.finding(
                    "DET004",
                    node,
                    f"{_WALLCLOCK[name]} reads ambient wall-clock/entropy "
                    "state — use time.monotonic()/perf_counter() for "
                    "ordering and durations, or an allow comment if the "
                    "value is display-only",
                )
            )
    return findings
