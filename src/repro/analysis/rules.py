"""The rule registry and the per-file context rules check against.

A rule is a plain function ``check(ctx) -> List[Finding]`` registered
under a stable id via the :func:`rule` decorator.  Python rules receive
a parsed AST plus import/scope helpers; spec rules receive parsed JSON.
The registry is what the engine iterates and what ``--list-rules``
prints — adding a rule module is all it takes to extend the pack.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.findings import SEVERITIES, Finding

#: What a rule analyzes: ``"python"`` (AST) or ``"spec"`` (catalog JSON).
RULE_KINDS = ("python", "spec")


@dataclass
class RuleContext:
    """Everything one rule invocation may look at for one file.

    Attributes:
        path: Posix-style path reported on findings.
        text: Raw file text.
        lines: ``text.splitlines()``.
        tree: Parsed AST (python files; ``None`` for spec files).
        data: Parsed JSON (spec files; ``None`` for python files).
    """

    path: str
    text: str
    lines: List[str]
    tree: Optional[ast.AST] = None
    data: Optional[object] = None
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False
    )
    _imports: Optional[Dict[str, str]] = field(default=None, repr=False)

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map of :attr:`tree` (built lazily, shared by
        every rule that needs ancestor walks)."""
        if self._parents is None:
            assert self.tree is not None
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    @property
    def imports(self) -> Dict[str, str]:
        """Local alias → dotted module/attribute map (lazy, shared)."""
        if self._imports is None:
            from repro.analysis.pyast import import_map

            assert self.tree is not None
            self._imports = import_map(self.tree)
        return self._imports

    def finding(
        self,
        rule_id: str,
        node_or_line: object,
        message: str,
        severity: str = "error",
    ) -> Finding:
        """Build a finding at an AST node (or explicit line number)."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        return Finding(
            rule=rule_id,
            path=self.path,
            line=line,
            col=col,
            message=message,
            severity=severity,
        )


CheckFn = Callable[[RuleContext], List[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: id, one-line summary, file kind, check."""

    id: str
    summary: str
    kind: str
    severity: str
    check: CheckFn


_RULES: Dict[str, Rule] = {}


def rule(
    rule_id: str,
    summary: str,
    kind: str = "python",
    severity: str = "error",
) -> Callable[[CheckFn], CheckFn]:
    """Register ``check`` under ``rule_id`` (ids must be unique)."""
    if kind not in RULE_KINDS:
        raise ValueError(f"unknown rule kind {kind!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorate(check: CheckFn) -> CheckFn:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} is already registered")
        # repro: allow[RACE001] registration happens at import time under the import lock
        _RULES[rule_id] = Rule(rule_id, summary, kind, severity, check)
        return check

    return decorate


def all_rules(kind: Optional[str] = None) -> List[Rule]:
    """Registered rules sorted by id, optionally filtered by kind."""
    _load_rule_packs()
    rules = sorted(_RULES.values(), key=lambda r: r.id)
    if kind is None:
        return rules
    return [r for r in rules if r.kind == kind]


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id.

    Raises:
        KeyError: For an unknown id.
    """
    _load_rule_packs()
    return _RULES[rule_id]


def _load_rule_packs() -> None:
    """Import the built-in rule modules (idempotent — registration
    happens at import time, guarded by the duplicate-id check)."""
    from repro.analysis import (  # noqa: F401  (imported for side effect)
        rules_det,
        rules_pickle,
        rules_race,
        rules_seed,
        rules_spec,
    )


@rule("PARSE001", "file cannot be parsed")
def _parse001(ctx: RuleContext) -> List[Finding]:
    # Emitted directly by the engine when ast.parse fails (rules never
    # run on an unparsable file); registered here so the id resolves in
    # --list-rules and get_rule().
    return []
