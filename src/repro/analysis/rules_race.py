"""RACE rules: shared mutable state reachable from parallel backends.

Work units ship to thread and process pools; coordinator callbacks
(``on_result`` hooks, job progress) run on pool-collector threads.  Two
shapes therefore race:

* **RACE001** — a module-level mutable container mutated inside a
  function.  On the thread backend every worker shares the module
  object; on the process backend each worker silently mutates its own
  copy and the "shared" state diverges.  Mutations under a
  ``with ...lock...:`` block are exempt.
* **RACE002** — a nested callback writing an attribute of an object
  captured from the enclosing scope without holding a lock: the
  classic unlocked coordinator-shared write from an ``on_result`` /
  ``done_callback`` closure.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.pyast import (
    FUNCTION_TYPES,
    MUTATOR_METHODS,
    declared_globals,
    function_scopes,
    in_lock_context,
    module_mutable_globals,
    scope_locals,
    walk_shallow,
)
from repro.analysis.rules import RuleContext, rule


@rule("RACE001", "module-level mutable global mutated inside a function")
def race001(ctx: RuleContext) -> List[Finding]:
    mutable = module_mutable_globals(ctx.tree)
    if not mutable:
        return []
    findings: List[Finding] = []
    for scope, _chain in function_scopes(ctx.tree):
        if not isinstance(scope, FUNCTION_TYPES):
            continue
        locals_here = scope_locals(scope)
        globals_here = declared_globals(scope)

        def shared(name: str) -> bool:
            return name in mutable and (
                name in globals_here or name not in locals_here
            )

        def report(node: ast.AST, name: str, how: str) -> None:
            if in_lock_context(node, ctx.parents):
                return
            findings.append(
                ctx.finding(
                    "RACE001",
                    node,
                    f"module-level mutable global {name!r} {how} inside "
                    f"{getattr(scope, 'name', '<lambda>')}() without a "
                    "lock — unsafe once this code runs on thread workers "
                    "(and silently diverges on process workers)",
                )
            )

        for node in walk_shallow(scope):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and (
                        target.id in globals_here
                        and target.id in mutable
                    ):
                        report(node, target.id, "is rebound")
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ) and shared(target.value.id):
                        report(
                            node, target.value.id, "is written through []"
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ) and shared(target.value.id):
                        report(node, target.value.id, "has entries deleted")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and shared(func.value.id)
                ):
                    report(
                        node,
                        func.value.id,
                        f"is mutated via .{func.attr}()",
                    )
    return findings


@rule("RACE002", "unlocked attribute write to a captured object in a callback")
def race002(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for scope, chain in function_scopes(ctx.tree):
        enclosing_functions = [
            s for s in chain if isinstance(s, FUNCTION_TYPES)
        ]
        if not enclosing_functions or not isinstance(scope, FUNCTION_TYPES):
            continue  # only nested functions/lambdas (callbacks)
        own = scope_locals(scope)
        captured: Set[str] = set()
        for outer in enclosing_functions:
            captured |= scope_locals(outer)
        captured -= own
        if not captured:
            continue
        for node in walk_shallow(scope):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in captured
                    and not in_lock_context(node, ctx.parents)
                ):
                    findings.append(
                        ctx.finding(
                            "RACE002",
                            node,
                            f"callback writes {target.value.id}."
                            f"{target.attr} on an object captured from "
                            "the enclosing scope without a lock — "
                            "coordinator callbacks run on collector "
                            "threads; guard the write or funnel it "
                            "through the exec layer's ordered hooks",
                        )
                    )
    return findings
