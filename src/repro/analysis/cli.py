"""``python -m repro.analysis`` — the lint gate CLI.

Exit codes:

* ``0`` — clean (every finding baselined or suppressed).
* ``1`` — new findings (not in the baseline).
* ``2`` — usage / configuration error (unreadable baseline, no paths).

Typical runs::

    python -m repro.analysis src examples
    python -m repro.analysis --format json --baseline analysis-baseline.json src
    python -m repro.analysis --update-baseline src examples
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.engine import AnalysisReport, analyze_paths
from repro.analysis.findings import Finding
from repro.analysis.rules import all_rules

#: Paths scanned when none are given (those that exist in the cwd).
DEFAULT_PATHS = ("src", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static determinism/concurrency analysis for the repro "
            "experiment stack."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze (default: src and examples "
            "when present)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file (ages out "
            "fixed entries) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _resolve_paths(raw: Sequence[str]) -> List[str]:
    if raw:
        return list(raw)
    return [path for path in DEFAULT_PATHS if os.path.exists(path)]


def _print_text(
    report: AnalysisReport,
    new: List[Finding],
    baselined: List[Finding],
    stale: List[Finding],
    out,
) -> None:
    for finding in new:
        print(finding.format(), file=out)
    summary = (
        f"{len(new)} finding(s) in {report.files_scanned} file(s)"
        f" ({len(report.suppressed)} suppressed,"
        f" {len(baselined)} baselined)"
    )
    print(summary, file=out)
    if stale:
        print(
            f"note: {len(stale)} baseline entr"
            f"{'y is' if len(stale) == 1 else 'ies are'} stale (fixed) — "
            "run --update-baseline to age them out:",
            file=out,
        )
        for finding in stale:
            print(f"  {finding.format()}", file=out)


def _print_json(
    report: AnalysisReport,
    new: List[Finding],
    baselined: List[Finding],
    stale: List[Finding],
    out,
) -> None:
    payload = {
        "files_scanned": report.files_scanned,
        "findings": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in baselined],
        "stale_baseline": [f.to_dict() for f in stale],
        "suppressed": [
            {**finding.to_dict(), "reason": reason}
            for finding, reason in report.suppressed
        ],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def _list_rules(out) -> None:
    for rule in all_rules():
        print(
            f"{rule.id:<10} {rule.kind:<7} {rule.severity:<8} "
            f"{rule.summary}",
            file=out,
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        _list_rules(out)
        return 0

    paths = _resolve_paths(args.paths)
    if not paths:
        print(
            "error: no paths to analyze (pass files/directories, or run "
            "from a directory containing src/ or examples/)",
            file=sys.stderr,
        )
        return 2

    report = analyze_paths(paths)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(report.findings).save(target)
        print(
            f"baseline {target} updated: {len(report.findings)} "
            "finding(s) recorded",
            file=out,
        )
        return 0

    baseline = Baseline()
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    new, baselined, stale = baseline.apply(report.findings)
    if args.format == "json":
        _print_json(report, new, baselined, stale, out)
    else:
        _print_text(report, new, baselined, stale, out)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
