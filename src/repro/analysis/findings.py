"""Finding records produced by the static-analysis rules.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` identifies the finding *content-wise* — it hashes the
rule id, the file path, the stripped text of the offending line and the
occurrence index among identical lines — so baselined findings keep
matching when unrelated edits shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Sequence

#: Finding severities (all gate CI today; the field exists so future
#: rules can downgrade to advisory without a format change).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Rule id (e.g. ``"DET001"``).
        path: File path, posix-style, relative to the analysis root.
        line: 1-based line of the violation.
        col: 0-based column.
        message: Human-readable description.
        severity: ``"error"`` or ``"warning"``.
        fingerprint: Content hash used for baseline matching (filled in
            by the engine; empty for findings built in isolation).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    fingerprint: str = field(default="", compare=False)

    def format(self) -> str:
        """The classic ``path:line:col: RULE message`` lint line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready plain-data form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data.get("col", 0)),  # type: ignore[arg-type]
            message=str(data.get("message", "")),
            severity=str(data.get("severity", "error")),
            fingerprint=str(data.get("fingerprint", "")),
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic reporting order: path, line, column, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def fingerprint_findings(
    findings: Sequence[Finding], lines: Sequence[str]
) -> List[Finding]:
    """Stamp content fingerprints onto same-file findings.

    ``lines`` are the file's source lines.  The hash covers the rule
    id, the path, the *stripped* offending line and the occurrence
    index among findings of the same (rule, path, line-text) — line
    numbers themselves stay out, so fingerprints survive edits
    elsewhere in the file.
    """
    counts: Dict[tuple, int] = {}
    stamped: List[Finding] = []
    for finding in sort_findings(findings):
        text = (
            lines[finding.line - 1].strip()
            if 1 <= finding.line <= len(lines)
            else ""
        )
        key = (finding.rule, finding.path, text)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        digest = hashlib.sha256(
            "\x1f".join(
                [finding.rule, finding.path, text, str(occurrence)]
            ).encode("utf-8")
        ).hexdigest()[:16]
        stamped.append(replace(finding, fingerprint=digest))
    return stamped
