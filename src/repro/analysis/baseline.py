"""The committed findings baseline.

The baseline lets the lint gate be adopted on a codebase with existing
findings: everything recorded in the baseline file passes CI, anything
*new* fails it.  Entries match by content fingerprint (rule id + path +
offending line text + occurrence — see
:func:`repro.analysis.findings.fingerprint_findings`), so unrelated
edits that shift line numbers do not invalidate the baseline.

Workflow:

* ``python -m repro.analysis --update-baseline`` records the current
  findings (atomically, sorted, stable diffs) and **ages out** stale
  entries — fixed findings disappear from the file instead of
  lingering as dead weight.
* The gate reports stale entries so a shrinking baseline is visible in
  CI output.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding, sort_findings

BASELINE_VERSION = 1

#: The baseline file the CLI looks for by default (repo root).
DEFAULT_BASELINE = "analysis-baseline.json"


@dataclass
class Baseline:
    """A set of accepted findings, keyed by content fingerprint."""

    entries: Dict[str, Finding] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(
            entries={f.fingerprint: f for f in findings if f.fingerprint}
        )

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file.

        Raises:
            ValueError: On an unreadable or malformed file.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read baseline {path!r}: {exc}") from exc
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(
                f"baseline {path!r} is not a repro.analysis baseline "
                "(missing 'findings')"
            )
        baseline = cls()
        for entry in data["findings"]:
            finding = Finding.from_dict(entry)
            if finding.fingerprint:
                baseline.entries[finding.fingerprint] = finding
        return baseline

    def save(self, path: str) -> None:
        """Write atomically (temp file + rename), sorted for stable
        diffs."""
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro.analysis",
            "findings": [
                f.to_dict() for f in sort_findings(self.entries.values())
            ],
        }
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".analysis-baseline-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - best effort
                pass
            raise

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Finding]]:
        """Partition findings against the baseline.

        Returns:
            ``(new, baselined, stale)`` — findings not in the baseline
            (these gate CI), findings the baseline accepts, and
            baseline entries no longer produced (candidates for
            age-out via ``--update-baseline``).
        """
        new: List[Finding] = []
        baselined: List[Finding] = []
        seen = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                baselined.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = sort_findings(
            entry
            for fingerprint, entry in self.entries.items()
            if fingerprint not in seen
        )
        return new, baselined, stale
