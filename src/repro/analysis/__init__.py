"""Static determinism & concurrency analysis for the experiment stack.

An AST-based lint pass enforcing the repository's determinism contract
(all randomness flows through centrally spawned ``SeedSequence``
children) plus concurrency-safety and serialisation rules, with a
committed JSON baseline so pre-existing findings don't block CI while
new ones fail it.

Usage::

    python -m repro.analysis [--format text|json] [--baseline FILE]
                             [--update-baseline] [paths...]

Rule packs: DET (unseeded randomness / wall-clock), SEED (seed plumbing
in work units), RACE (shared mutable state across backends), PICKLE
(unpicklable work for the process backend), SPEC (scenario catalog
lint).  Suppress inline with ``# repro: allow[RULE-ID] reason`` —
a reason is required for the allow to take effect.
"""

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline
from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import Rule, RuleContext, all_rules, get_rule, rule
from repro.analysis.suppressions import (
    Suppression,
    parse_suppressions,
    split_suppressed,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "Rule",
    "RuleContext",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "parse_suppressions",
    "rule",
    "sort_findings",
    "split_suppressed",
]
