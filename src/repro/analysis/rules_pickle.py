"""PICKLE rule: work the process backend cannot serialise.

The process backend pickles work functions and their arguments.
Lambdas, functions defined inside another function, and local classes
are not picklable — handing one to a dispatch call works on the serial
and thread backends and then explodes the day the backend flips to
``process``.

* **PICKLE001** — a lambda / locally-defined function / local class
  passed to an execution-dispatch method (``.map`` /
  ``.run_replications`` / ``.run_batched_replications`` / ``.submit`` /
  ``.run`` / ``.apply_async`` / ``.starmap``) of a receiver whose name
  suggests a runner, backend, executor or pool.  Thread-only executors
  that legitimately take closures carry an ``allow`` naming that fact.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.pyast import (
    FUNCTION_TYPES,
    function_scopes,
    walk_shallow,
)
from repro.analysis.rules import RuleContext, rule

#: Dispatch-looking method names.
_DISPATCH_METHODS = {
    "map", "run_replications", "run_batched_replications", "submit",
    "run", "apply_async", "starmap",
}

#: Receiver-name fragments that suggest an execution backend.
_RECEIVER_HINTS = ("runner", "backend", "executor", "pool")


def _local_callables(scope: ast.AST) -> Set[str]:
    """Names bound to nested defs / local classes directly in ``scope``
    (only meaningful for function scopes — module-level defs pickle)."""
    if not isinstance(scope, FUNCTION_TYPES):
        return set()
    names: Set[str] = set()
    for child in ast.walk(scope):
        if child is scope:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            names.add(child.name)
        elif isinstance(child, ast.Assign) and isinstance(
            child.value, ast.Lambda
        ):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@rule("PICKLE001", "unpicklable callable handed to an execution backend")
def pickle001(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for scope, _chain in function_scopes(ctx.tree):
        local_callables = _local_callables(scope)
        for node in walk_shallow(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _DISPATCH_METHODS
            ):
                continue
            try:
                receiver = ast.unparse(func.value).lower()
            except Exception:  # pragma: no cover - defensive
                continue
            if not any(hint in receiver for hint in _RECEIVER_HINTS):
                continue
            candidates = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for arg in candidates:
                what = None
                if isinstance(arg, ast.Lambda):
                    what = "a lambda"
                elif (
                    isinstance(arg, ast.Name)
                    and arg.id in local_callables
                ):
                    what = f"locally-defined {arg.id!r}"
                if what is None:
                    continue
                findings.append(
                    ctx.finding(
                        "PICKLE001",
                        arg,
                        f"{what} is handed to {ast.unparse(func)}() — "
                        "not picklable, so this breaks on the process "
                        "backend; use a module-level function (or "
                        "functools.partial over one)",
                    )
                )
    return findings
