"""Discrete Bayesian networks."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bayes.cpt import CPT


class BayesianNetwork:
    """A DAG of discrete variables with CPTs.

    Nodes are added with their CPTs; parents must exist first, which
    guarantees acyclicity by construction.
    """

    def __init__(self, name: str = "bn") -> None:
        self.name = name
        self._cpts: Dict[str, CPT] = {}
        self._order: List[str] = []

    @property
    def variables(self) -> List[str]:
        """Variables in topological (insertion) order."""
        return list(self._order)

    def add_node(self, cpt: CPT) -> None:
        """Add a variable with its CPT.

        Raises:
            ValueError: On duplicates or unknown/forward-declared parents.
        """
        if cpt.variable in self._cpts:
            raise ValueError(f"duplicate variable {cpt.variable!r}")
        for parent in cpt.parents:
            if parent not in self._cpts:
                raise ValueError(
                    f"variable {cpt.variable!r} references unknown parent "
                    f"{parent!r} (add parents first)"
                )
        self._cpts[cpt.variable] = cpt
        self._order.append(cpt.variable)

    def cpt(self, variable: str) -> CPT:
        """The CPT of ``variable``.

        Raises:
            KeyError: If absent.
        """
        return self._cpts[variable]

    def states(self, variable: str) -> Tuple[str, ...]:
        """State labels of ``variable``."""
        return self._cpts[variable].variable_states

    def parents(self, variable: str) -> Tuple[str, ...]:
        """Parent names of ``variable``."""
        return self._cpts[variable].parents

    def children(self, variable: str) -> List[str]:
        """Variables that have ``variable`` as a parent."""
        return [v for v in self._order if variable in self._cpts[v].parents]

    def joint_probability(self, assignment: Mapping[str, str]) -> float:
        """P(full assignment) via the chain rule.

        Raises:
            KeyError: If the assignment does not cover every variable.
        """
        prob = 1.0
        for variable in self._order:
            cpt = self._cpts[variable]
            prob *= cpt.probability(assignment[variable], assignment)
        return prob

    def validate(self) -> None:
        """Re-check all CPT invariants (rows sum to 1, arities match).

        Raises:
            ValueError: On any inconsistency (including parent state
                mismatches across CPTs).
        """
        for variable in self._order:
            cpt = self._cpts[variable]
            cpt.__post_init__()
            for parent, states in zip(cpt.parents, cpt.parent_states):
                if self._cpts[parent].variable_states != states:
                    raise ValueError(
                        f"CPT of {variable!r} expects parent {parent!r} "
                        f"states {states!r} but parent has "
                        f"{self._cpts[parent].variable_states!r}"
                    )
