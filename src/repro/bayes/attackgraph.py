"""Bayesian attack graphs over host topologies.

Builds a discrete Bayesian network whose binary variables represent
"host h is compromised".  An attacker entry point is a root variable with
a prior; lateral movement along a network edge contributes a noisy-OR
activation equal to the exploit success probability of that edge — which
in this library is a function of the *component variants* installed on
the target host, connecting the attack graph to the diversity catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.bayes.cpt import CPT
from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork


@dataclass
class AttackGraph:
    """A Bayesian attack graph.

    Attributes:
        network: The underlying Bayesian network (binary variables,
            states ``("false", "true")``).
        hosts: Host names, in topological order of the acyclic
            attack DAG.
        entry_points: Hosts with a compromise prior.
    """

    network: BayesianNetwork
    hosts: List[str]
    entry_points: List[str]

    def compromise_probability(
        self,
        host: str,
        evidence: Optional[Mapping[str, bool]] = None,
    ) -> float:
        """Marginal/posterior P(host compromised).

        Args:
            host: Target host.
            evidence: Optional observed compromise states of other hosts.
        """
        ev = {
            h: ("true" if flag else "false")
            for h, flag in (evidence or {}).items()
        }
        engine = VariableElimination(self.network)
        posterior = engine.query(host, evidence=ev)
        return posterior["true"]


def attack_graph_from_topology(
    reachability: Sequence[Tuple[str, str, float]],
    entry_priors: Mapping[str, float],
    leak: float = 0.0,
) -> AttackGraph:
    """Build an attack graph from exploit reachability.

    Args:
        reachability: ``(source_host, target_host, exploit_probability)``
            triples; the induced graph must be acyclic (attack graphs
            model monotone progression — once compromised, always
            compromised).
        entry_priors: ``{host: prior_compromise_probability}`` for
            attacker entry points.  Hosts that appear only as sources
            must be listed here.
        leak: Baseline compromise probability of every non-entry host.

    Returns:
        The :class:`AttackGraph`.

    Raises:
        ValueError: If the topology has a cycle or probabilities are
            out of range.
    """
    graph = nx.DiGraph()
    for source, target, prob in reachability:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(
                f"exploit probability {prob} for edge {source}->{target} "
                "outside [0, 1]"
            )
        graph.add_edge(source, target, probability=prob)
    for host in entry_priors:
        graph.add_node(host)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError(
            "attack topology has a cycle; compromise must be monotone"
        )

    order = list(nx.topological_sort(graph))
    network = BayesianNetwork("attack-graph")
    for host in order:
        predecessors = list(graph.predecessors(host))
        if not predecessors:
            prior = entry_priors.get(host)
            if prior is None:
                raise ValueError(
                    f"host {host!r} has no attack predecessors and no "
                    "entry prior"
                )
            if not 0.0 <= prior <= 1.0:
                raise ValueError(f"prior for {host!r} outside [0, 1]")
            network.add_node(
                CPT.root(host, ("false", "true"), (1.0 - prior, prior))
            )
        else:
            activation = {
                pred: graph.edges[pred, host]["probability"]
                for pred in predecessors
            }
            extra_prior = entry_priors.get(host, 0.0)
            effective_leak = 1.0 - (1.0 - leak) * (1.0 - extra_prior)
            network.add_node(
                CPT.noisy_or(host, predecessors, activation, leak=effective_leak)
            )
    entry_points = [h for h in order if h in entry_priors]
    return AttackGraph(network=network, hosts=order, entry_points=entry_points)
