"""Exact inference by variable elimination."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.network import BayesianNetwork


@dataclass
class Factor:
    """A multidimensional table over a set of discrete variables.

    Attributes:
        variables: Ordered variable names, one per array axis.
        states: State labels per variable (parallel to ``variables``).
        values: The table, shape ``tuple(len(s) for s in states)``.
    """

    variables: Tuple[str, ...]
    states: Tuple[Tuple[str, ...], ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = tuple(len(s) for s in self.states)
        if self.values.shape != expected:
            raise ValueError(
                f"factor shape {self.values.shape} does not match states "
                f"{expected}"
            )

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product, broadcasting over the union of variables."""
        all_vars: List[str] = list(self.variables)
        all_states: List[Tuple[str, ...]] = list(self.states)
        for var, st in zip(other.variables, other.states):
            if var not in all_vars:
                all_vars.append(var)
                all_states.append(st)

        def expand(factor: "Factor") -> np.ndarray:
            # Transpose the factor's axes into the relative order in which
            # its variables appear in all_vars, then insert singleton axes
            # for the variables it lacks; broadcasting does the rest.
            order = sorted(
                range(len(factor.variables)),
                key=lambda a: all_vars.index(factor.variables[a]),
            )
            transposed = np.transpose(factor.values, order)
            full_shape = [
                len(all_states[i]) if var in factor.variables else 1
                for i, var in enumerate(all_vars)
            ]
            return transposed.reshape(full_shape)

        product = expand(self) * expand(other)
        return Factor(tuple(all_vars), tuple(all_states), product)

    def marginalize(self, variable: str) -> "Factor":
        """Sum out ``variable``.

        Raises:
            KeyError: If the factor does not contain it.
        """
        if variable not in self.variables:
            raise KeyError(variable)
        axis = self.variables.index(variable)
        new_vars = tuple(v for v in self.variables if v != variable)
        new_states = tuple(
            s for v, s in zip(self.variables, self.states) if v != variable
        )
        return Factor(new_vars, new_states, self.values.sum(axis=axis))

    def reduce(self, variable: str, value: str) -> "Factor":
        """Condition on ``variable = value`` (drops the axis)."""
        if variable not in self.variables:
            return self
        axis = self.variables.index(variable)
        idx = self.states[axis].index(value)
        new_vars = tuple(v for v in self.variables if v != variable)
        new_states = tuple(
            s for v, s in zip(self.variables, self.states) if v != variable
        )
        return Factor(new_vars, new_states, np.take(self.values, idx, axis=axis))

    def normalize(self) -> "Factor":
        """Scale so the table sums to 1.

        Raises:
            ValueError: If the factor sums to zero (contradictory
                evidence).
        """
        total = self.values.sum()
        if total <= 0:
            raise ValueError("factor sums to zero; evidence has probability 0")
        return Factor(self.variables, self.states, self.values / total)


def _cpt_factor(network: BayesianNetwork, variable: str) -> Factor:
    """Build the factor for ``variable``'s CPT."""
    cpt = network.cpt(variable)
    variables = cpt.parents + (variable,)
    states = cpt.parent_states + (cpt.variable_states,)
    shape = tuple(len(s) for s in states)
    values = np.zeros(shape)
    for key, probs in cpt.table.items():
        idx = tuple(
            cpt.parent_states[i].index(key[i]) for i in range(len(key))
        )
        values[idx] = probs
    return Factor(variables, states, values)


class VariableElimination:
    """Exact posterior queries on a :class:`BayesianNetwork`."""

    def __init__(self, network: BayesianNetwork) -> None:
        self.network = network

    def query(
        self,
        variable: str,
        evidence: Optional[Mapping[str, str]] = None,
        elimination_order: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """P(variable | evidence).

        Args:
            variable: Query variable.
            evidence: ``{variable: state}`` observations.
            elimination_order: Optional explicit order; defaults to a
                min-degree-style heuristic (fewest-states-first).

        Returns:
            ``{state: probability}`` for the query variable.

        Raises:
            ValueError: If the evidence has probability zero, or the
                query variable appears in the evidence with conflicting
                semantics.
        """
        evidence = dict(evidence or {})
        if variable in evidence:
            return {
                state: 1.0 if state == evidence[variable] else 0.0
                for state in self.network.states(variable)
            }

        factors = [
            _cpt_factor(self.network, v) for v in self.network.variables
        ]
        for var, value in evidence.items():
            factors = [f.reduce(var, value) for f in factors]

        hidden = [
            v
            for v in self.network.variables
            if v != variable and v not in evidence
        ]
        if elimination_order is not None:
            order = [v for v in elimination_order if v in hidden]
            if set(order) != set(hidden):
                raise ValueError(
                    "elimination_order must cover exactly the hidden variables"
                )
        else:
            order = sorted(
                hidden, key=lambda v: len(self.network.states(v))
            )

        for var in order:
            involved = [f for f in factors if var in f.variables]
            rest = [f for f in factors if var not in f.variables]
            if not involved:
                continue
            product = involved[0]
            for f in involved[1:]:
                product = product.multiply(f)
            factors = rest + [product.marginalize(var)]

        result = factors[0]
        for f in factors[1:]:
            result = result.multiply(f)
        result = result.normalize()
        if result.variables != (variable,):
            axis_order = [result.variables.index(variable)]
            # All other axes should be gone; if not, marginalize them.
            for v in result.variables:
                if v != variable:
                    result = result.marginalize(v)
        states = self.network.states(variable)
        return {state: float(result.values[i]) for i, state in enumerate(states)}

    def probability_of_evidence(self, evidence: Mapping[str, str]) -> float:
        """P(evidence) — the normalizing constant of a query."""
        factors = [
            _cpt_factor(self.network, v) for v in self.network.variables
        ]
        for var, value in evidence.items():
            factors = [f.reduce(var, value) for f in factors]
        hidden = [v for v in self.network.variables if v not in evidence]
        for var in sorted(hidden, key=lambda v: len(self.network.states(v))):
            involved = [f for f in factors if var in f.variables]
            rest = [f for f in factors if var not in f.variables]
            if not involved:
                continue
            product = involved[0]
            for f in involved[1:]:
                product = product.multiply(f)
            factors = rest + [product.marginalize(var)]
        total = 1.0
        for f in factors:
            total *= float(f.values.sum())
        return total
