"""Conditional probability tables for discrete Bayesian networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np


@dataclass
class CPT:
    """P(variable | parents) as a dense table.

    Attributes:
        variable: Child variable name.
        variable_states: Ordered state labels of the child.
        parents: Ordered parent variable names (may be empty).
        parent_states: Ordered state labels per parent.
        table: ``{parent_state_tuple: probability_vector}``; the vector is
            over ``variable_states`` and must sum to 1.  A root node uses
            the empty tuple as sole key.
    """

    variable: str
    variable_states: Tuple[str, ...]
    parents: Tuple[str, ...]
    parent_states: Tuple[Tuple[str, ...], ...]
    table: Dict[Tuple[str, ...], Tuple[float, ...]]

    def __post_init__(self) -> None:
        if len(self.parents) != len(self.parent_states):
            raise ValueError(
                f"CPT for {self.variable!r}: parents and parent_states "
                "lengths differ"
            )
        expected_rows = 1
        for states in self.parent_states:
            expected_rows *= len(states)
        if len(self.table) != expected_rows:
            raise ValueError(
                f"CPT for {self.variable!r}: expected {expected_rows} rows, "
                f"got {len(self.table)}"
            )
        for key, probs in self.table.items():
            if len(key) != len(self.parents):
                raise ValueError(
                    f"CPT for {self.variable!r}: row key {key!r} has wrong arity"
                )
            if len(probs) != len(self.variable_states):
                raise ValueError(
                    f"CPT for {self.variable!r}: row {key!r} has "
                    f"{len(probs)} entries, expected {len(self.variable_states)}"
                )
            if any(p < 0 for p in probs) or abs(sum(probs) - 1.0) > 1e-9:
                raise ValueError(
                    f"CPT for {self.variable!r}: row {key!r} is not a "
                    f"probability vector: {probs!r}"
                )

    def probability(
        self, value: str, parent_values: Mapping[str, str]
    ) -> float:
        """P(variable = value | parents = parent_values).

        Raises:
            KeyError: On unknown states.
        """
        key = tuple(parent_values[p] for p in self.parents)
        probs = self.table[key]
        idx = self.variable_states.index(value)
        return probs[idx]

    def distribution(self, parent_values: Mapping[str, str]) -> Tuple[float, ...]:
        """The conditional distribution row for the given parent values."""
        key = tuple(parent_values[p] for p in self.parents)
        return self.table[key]

    @staticmethod
    def root(
        variable: str, states: Sequence[str], probabilities: Sequence[float]
    ) -> "CPT":
        """A parent-less CPT (prior)."""
        return CPT(
            variable=variable,
            variable_states=tuple(states),
            parents=(),
            parent_states=(),
            table={(): tuple(float(p) for p in probabilities)},
        )

    @staticmethod
    def noisy_or(
        variable: str,
        parents: Sequence[str],
        activation: Mapping[str, float],
        leak: float = 0.0,
        true_state: str = "true",
        false_state: str = "false",
    ) -> "CPT":
        """A noisy-OR CPT over binary variables.

        ``P(child true | active parents S) = 1 - (1-leak)·Π_{p∈S}(1-w_p)``,
        the standard model for "the host is compromised if any incoming
        exploit succeeds".

        Args:
            variable: Child name.
            parents: Parent names.
            activation: Per-parent activation weight ``w_p`` in [0, 1].
            leak: Baseline compromise probability with no active parent.
        """
        parents = tuple(parents)
        for p in parents:
            w = activation[p]
            if not 0.0 <= w <= 1.0:
                raise ValueError(f"activation weight for {p!r} must be in [0,1]")
        if not 0.0 <= leak <= 1.0:
            raise ValueError(f"leak must be in [0, 1], got {leak}")
        states = (false_state, true_state)
        table: Dict[Tuple[str, ...], Tuple[float, ...]] = {}
        n = len(parents)
        for mask in range(2**n):
            key = tuple(
                true_state if (mask >> i) & 1 else false_state
                for i in range(n)
            )
            q = 1.0 - leak
            for i, p in enumerate(parents):
                if (mask >> i) & 1:
                    q *= 1.0 - activation[p]
            p_true = 1.0 - q
            table[key] = (1.0 - p_true, p_true)
        return CPT(
            variable=variable,
            variable_states=states,
            parents=parents,
            parent_states=tuple(states for _ in parents),
            table=table,
        )
