"""Approximate inference by sampling."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.bayes.network import BayesianNetwork


def forward_sample(
    network: BayesianNetwork, rng: np.random.Generator
) -> Dict[str, str]:
    """Draw one full assignment from the joint distribution."""
    assignment: Dict[str, str] = {}
    for variable in network.variables:
        cpt = network.cpt(variable)
        probs = cpt.distribution(assignment)
        idx = int(rng.choice(len(probs), p=np.asarray(probs)))
        assignment[variable] = cpt.variable_states[idx]
    return assignment


def likelihood_weighting(
    network: BayesianNetwork,
    variable: str,
    evidence: Mapping[str, str],
    n_samples: int,
    rng: np.random.Generator,
) -> Dict[str, float]:
    """Estimate P(variable | evidence) by likelihood weighting.

    Evidence variables are clamped and their CPT probability multiplied
    into the sample weight; other variables are forward-sampled.

    Raises:
        ValueError: If ``n_samples < 1`` or all weights are zero.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    states = network.states(variable)
    totals = {state: 0.0 for state in states}
    weight_sum = 0.0
    for _ in range(n_samples):
        assignment: Dict[str, str] = {}
        weight = 1.0
        for var in network.variables:
            cpt = network.cpt(var)
            if var in evidence:
                value = evidence[var]
                weight *= cpt.probability(value, assignment)
                assignment[var] = value
            else:
                probs = cpt.distribution(assignment)
                idx = int(rng.choice(len(probs), p=np.asarray(probs)))
                assignment[var] = cpt.variable_states[idx]
        totals[assignment[variable]] += weight
        weight_sum += weight
    if weight_sum <= 0:
        raise ValueError("all sample weights are zero; evidence unreachable")
    return {state: totals[state] / weight_sum for state in states}
