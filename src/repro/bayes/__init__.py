"""Discrete Bayesian networks and Bayesian attack graphs.

The paper lists Bayesian networks among the candidate attack-modeling
formalisms.  This package implements:

* :mod:`repro.bayes.network` / :mod:`repro.bayes.cpt` — discrete BNs with
  full conditional probability tables.
* :mod:`repro.bayes.inference` — exact inference by variable elimination.
* :mod:`repro.bayes.sampling` — forward sampling and likelihood weighting.
* :mod:`repro.bayes.attackgraph` — construction of a Bayesian attack
  graph from a host topology and per-edge exploit probabilities, with
  noisy-OR compromise semantics.
"""

from repro.bayes.attackgraph import AttackGraph, attack_graph_from_topology
from repro.bayes.cpt import CPT
from repro.bayes.inference import Factor, VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import forward_sample, likelihood_weighting

__all__ = [
    "AttackGraph",
    "BayesianNetwork",
    "CPT",
    "Factor",
    "VariableElimination",
    "attack_graph_from_topology",
    "forward_sample",
    "likelihood_weighting",
]
