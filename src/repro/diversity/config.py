"""System configurations: assignments of variants to host slots.

A :class:`SystemConfiguration` is the unit the paper's DoE step sweeps:
each DoE factor is a component slot (or group of slots), each level a
variant.  Applying a configuration installs the variants into the hosts
of a :class:`~repro.scada.network.SCADANetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.doe.design import Factor
from repro.diversity.catalog import VariantCatalog
from repro.scada.components import ComponentKind, Host
from repro.scada.network import SCADANetwork


@dataclass
class SystemConfiguration:
    """A complete variant assignment.

    Attributes:
        assignments: ``{host_name: {kind: variant_name}}``.
        label: Human-readable configuration tag.
    """

    assignments: Dict[str, Dict[ComponentKind, str]] = field(default_factory=dict)
    label: str = "config"

    def assign(self, host: str, kind: ComponentKind, variant: str) -> None:
        """Set one slot."""
        self.assignments.setdefault(host, {})[kind] = variant

    def variant_of(self, host: str, kind: ComponentKind) -> Optional[str]:
        """Variant assigned to a slot, or None."""
        return self.assignments.get(host, {}).get(kind)

    def apply(self, network: SCADANetwork) -> None:
        """Install the assigned variants into the network's hosts.

        Raises:
            KeyError: If an assignment references an unknown host.
        """
        for host_name, slots in self.assignments.items():
            host = network.host(host_name)
            for kind, variant in slots.items():
                host.install(kind, variant)

    def distinct_variants(self, kind: ComponentKind) -> List[str]:
        """Distinct variant names assigned for ``kind`` across hosts."""
        seen: Dict[str, None] = {}
        for slots in self.assignments.values():
            name = slots.get(kind)
            if name is not None and name not in seen:
                seen[name] = None
        return list(seen)

    def diversity_degree(self) -> int:
        """Total number of distinct (kind, variant) pairs in use."""
        pairs = {
            (kind, name)
            for slots in self.assignments.values()
            for kind, name in slots.items()
        }
        return len(pairs)


def configuration_factors(
    network: SCADANetwork,
    catalog: VariantCatalog,
    kinds: Optional[List[ComponentKind]] = None,
) -> List[Factor]:
    """Build DoE factors from the network's diversifiable slots.

    One factor per component *kind* present in the network (system-wide
    variant choice per kind — the granularity the paper's DoE example
    uses), with the catalog's variants as levels.

    Args:
        network: The system.
        catalog: The variant catalog.
        kinds: Restrict to these kinds (default: every kind present in
            the network with >= 2 catalog variants).

    Returns:
        DoE factors named after the component kinds.
    """
    present: Dict[ComponentKind, None] = {}
    for host in network.hosts:
        for kind in host.components:
            present.setdefault(kind, None)
        for kind in host.missing_slots():
            present.setdefault(kind, None)
    wanted = kinds if kinds is not None else list(present)
    factors: List[Factor] = []
    for kind in wanted:
        names = catalog.names_for(kind)
        if len(names) >= 2:
            factors.append(Factor(kind.value, tuple(names)))
    return factors


def configuration_from_run(
    network: SCADANetwork,
    run: Mapping[str, Hashable],
    label: str = "doe-run",
) -> SystemConfiguration:
    """Translate a DoE run (kind-name → variant) into a configuration.

    Every host slot of a kind named in the run gets that kind's chosen
    variant (homogeneous per kind, the classic DoE treatment).
    """
    config = SystemConfiguration(label=label)
    by_kind = {
        ComponentKind(name): str(variant) for name, variant in run.items()
    }
    for host in network.hosts:
        slots = set(host.components) | set(host.missing_slots())
        for kind in slots:
            if kind in by_kind:
                config.assign(host.name, kind, by_kind[kind])
    return config


def random_configuration(
    network: SCADANetwork,
    catalog: VariantCatalog,
    rng: np.random.Generator,
    max_distinct: Optional[int] = None,
    label: str = "random",
) -> SystemConfiguration:
    """A random configuration, optionally with bounded per-kind diversity.

    Args:
        network: The system.
        catalog: Variant catalog.
        rng: Random generator.
        max_distinct: If given, at most this many distinct variants are
            used per kind (1 → homogeneous system, the no-diversity
            baseline).
        label: Configuration label.
    """
    config = SystemConfiguration(label=label)
    pools: Dict[ComponentKind, List[str]] = {}
    for host in network.hosts:
        slots = set(host.components) | set(host.missing_slots())
        for kind in slots:
            names = catalog.names_for(kind)
            if not names:
                continue
            if kind not in pools:
                if max_distinct is not None and max_distinct < len(names):
                    chosen = rng.choice(
                        len(names), size=max_distinct, replace=False
                    )
                    pools[kind] = [names[int(i)] for i in chosen]
                else:
                    pools[kind] = list(names)
            pool = pools[kind]
            config.assign(host.name, kind, pool[int(rng.integers(len(pool)))])
    return config
