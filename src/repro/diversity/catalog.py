"""The variant catalog: component variants and their exploitability.

The paper's step 2 assigns each attack stage a success probability that
depends on the component variant in place (*"the root access stage might
have a success probability P1 when operating system OS1 is used, or P2 in
case OS2 is used"*).  A :class:`Variant` records those per-action success
probabilities; the :class:`VariantCatalog` is the lookup table the attack
simulator consults.

Exploitability keys used across the library (attack actions):

``usb_autorun``       infection via removable media
``smb_exploit``       lateral movement via shared folders
``print_spooler``     lateral movement via the spooler vulnerability
``net_exploit``       generic remote service exploitation
``priv_escalation``   local privilege escalation (root access)
``av_evasion``        evading the host's antivirus
``reprogram``         malicious controller reprogramming
``signal_tamper``     tampering with sensor/actuator signals
``fw_bypass``         traversing a firewall appliance
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.scada.components import ComponentKind

EXPLOIT_ACTIONS = (
    "usb_autorun",
    "smb_exploit",
    "print_spooler",
    "net_exploit",
    "priv_escalation",
    "av_evasion",
    "reprogram",
    "signal_tamper",
    "fw_bypass",
)


@dataclass(frozen=True)
class Variant:
    """A concrete component variant.

    Attributes:
        name: Unique variant name within its kind.
        kind: Component slot the variant fits.
        exploitability: ``{action: success_probability}``; actions not
            listed default to 0 (not applicable / immune).
        cost: Relative procurement/integration cost (used by placement
            optimization to reason about diversification budgets).
        description: Human-readable note.
    """

    name: str
    kind: ComponentKind
    exploitability: Mapping[str, float] = field(default_factory=dict)
    cost: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        for action, prob in self.exploitability.items():
            if action not in EXPLOIT_ACTIONS:
                raise ValueError(
                    f"variant {self.name!r}: unknown action {action!r}"
                )
            if not 0.0 <= prob <= 1.0:
                raise ValueError(
                    f"variant {self.name!r}: probability for {action!r} "
                    f"must be in [0, 1], got {prob}"
                )
        if self.cost < 0:
            raise ValueError(f"variant {self.name!r}: cost must be >= 0")

    def success_probability(self, action: str) -> float:
        """Exploit success probability of ``action`` against this variant."""
        return float(self.exploitability.get(action, 0.0))

    @property
    def mean_exploitability(self) -> float:
        """Average success probability over the variant's listed actions."""
        if not self.exploitability:
            return 0.0
        return sum(self.exploitability.values()) / len(self.exploitability)


class VariantCatalog:
    """Registry of variants, keyed by (kind, name)."""

    def __init__(self) -> None:
        self._variants: Dict[ComponentKind, Dict[str, Variant]] = {}

    def register(self, variant: Variant) -> Variant:
        """Add a variant.

        Raises:
            ValueError: On duplicate (kind, name).
        """
        bucket = self._variants.setdefault(variant.kind, {})
        if variant.name in bucket:
            raise ValueError(
                f"duplicate variant {variant.name!r} for kind {variant.kind}"
            )
        bucket[variant.name] = variant
        return variant

    def get(self, kind: ComponentKind, name: str) -> Variant:
        """Look up a variant.

        Raises:
            KeyError: If absent.
        """
        return self._variants[kind][name]

    def variants_for(self, kind: ComponentKind) -> List[Variant]:
        """All variants registered for ``kind``."""
        return list(self._variants.get(kind, {}).values())

    def names_for(self, kind: ComponentKind) -> List[str]:
        """Variant names for ``kind``."""
        return list(self._variants.get(kind, {}))

    def kinds(self) -> List[ComponentKind]:
        """Kinds with at least one variant."""
        return list(self._variants)

    def success_probability(
        self, kind: ComponentKind, variant_name: Optional[str], action: str
    ) -> float:
        """Exploitability lookup tolerant of missing variants.

        Returns 0 when ``variant_name`` is None (slot empty → not
        exploitable through that slot).
        """
        if variant_name is None:
            return 0.0
        return self.get(kind, variant_name).success_probability(action)


def default_catalog() -> VariantCatalog:
    """A realistic default catalog.

    Numbers are *plausibility-ordered* sensitivity-analysis values (the
    paper's third sourcing option), not measurements: legacy commodity
    software is easiest to exploit, hardened/diverse alternatives are
    markedly harder, and purpose-built resilient components are close to
    immune.
    """
    catalog = VariantCatalog()
    K = ComponentKind

    # --- operating systems -------------------------------------------------
    catalog.register(Variant(
        "win_legacy", K.OPERATING_SYSTEM,
        {"usb_autorun": 0.9, "smb_exploit": 0.8, "print_spooler": 0.85,
         "net_exploit": 0.6, "priv_escalation": 0.85},
        cost=1.0, description="Unpatched legacy Windows workstation image"))
    catalog.register(Variant(
        "win_patched", K.OPERATING_SYSTEM,
        {"usb_autorun": 0.45, "smb_exploit": 0.35, "print_spooler": 0.3,
         "net_exploit": 0.3, "priv_escalation": 0.4},
        cost=1.2, description="Patched Windows with hardening baseline"))
    catalog.register(Variant(
        "linux_hardened", K.OPERATING_SYSTEM,
        {"usb_autorun": 0.1, "smb_exploit": 0.08, "print_spooler": 0.0,
         "net_exploit": 0.15, "priv_escalation": 0.12},
        cost=1.6, description="Hardened Linux with mandatory access control"))
    catalog.register(Variant(
        "rtos_minimal", K.OPERATING_SYSTEM,
        {"usb_autorun": 0.02, "smb_exploit": 0.0, "print_spooler": 0.0,
         "net_exploit": 0.05, "priv_escalation": 0.05},
        cost=2.5, description="Minimal real-time OS, no removable media stack"))

    # --- PLC firmware ------------------------------------------------------
    catalog.register(Variant(
        "firmware_common", K.PLC_FIRMWARE,
        {"reprogram": 0.85, "net_exploit": 0.4},
        cost=1.0, description="Widespread commodity PLC firmware"))
    catalog.register(Variant(
        "firmware_alt", K.PLC_FIRMWARE,
        {"reprogram": 0.45, "net_exploit": 0.25},
        cost=1.3, description="Alternate vendor firmware, different toolchain"))
    catalog.register(Variant(
        "firmware_signed", K.PLC_FIRMWARE,
        {"reprogram": 0.08, "net_exploit": 0.1},
        cost=2.0, description="Firmware with signed-logic enforcement"))

    # --- protocol stacks ---------------------------------------------------
    catalog.register(Variant(
        "modbus_standard", K.PROTOCOL_STACK,
        {"net_exploit": 0.5, "reprogram": 0.9, "signal_tamper": 0.7},
        cost=1.0, description="Standard Modbus dialect, widely documented"))
    catalog.register(Variant(
        "modbus_variant_b", K.PROTOCOL_STACK,
        {"net_exploit": 0.25, "reprogram": 0.3, "signal_tamper": 0.35},
        cost=1.2, description="Remapped function codes + alternate checksum"))
    catalog.register(Variant(
        "modbus_variant_c", K.PROTOCOL_STACK,
        {"net_exploit": 0.2, "reprogram": 0.25, "signal_tamper": 0.3},
        cost=1.2, description="Little-endian dialect with unit-id offset"))

    # --- engineering tools -------------------------------------------------
    catalog.register(Variant(
        "engtool_common", K.ENGINEERING_TOOL,
        {"reprogram": 0.9, "av_evasion": 0.8},
        cost=1.0, description="Ubiquitous PLC programming suite"))
    catalog.register(Variant(
        "engtool_alt", K.ENGINEERING_TOOL,
        {"reprogram": 0.4, "av_evasion": 0.5},
        cost=1.4, description="Alternate-vendor engineering suite"))

    # --- HMI / historian ---------------------------------------------------
    catalog.register(Variant(
        "hmi_common", K.HMI_SOFTWARE,
        {"net_exploit": 0.5, "av_evasion": 0.7}, cost=1.0,
        description="Common HMI runtime"))
    catalog.register(Variant(
        "hmi_alt", K.HMI_SOFTWARE,
        {"net_exploit": 0.2, "av_evasion": 0.4}, cost=1.3,
        description="Alternate HMI runtime"))
    catalog.register(Variant(
        "historian_common", K.HISTORIAN_SOFTWARE,
        {"net_exploit": 0.4}, cost=1.0, description="Common historian"))
    catalog.register(Variant(
        "historian_alt", K.HISTORIAN_SOFTWARE,
        {"net_exploit": 0.15}, cost=1.3, description="Alternate historian"))

    # --- antivirus ---------------------------------------------------------
    catalog.register(Variant(
        "av_signature", K.ANTIVIRUS,
        {"av_evasion": 0.8}, cost=1.0,
        description="Signature-based AV (zero-days walk through)"))
    catalog.register(Variant(
        "av_behavioral", K.ANTIVIRUS,
        {"av_evasion": 0.35}, cost=1.5,
        description="Behavioural/anomaly AV"))

    # --- firewalls ---------------------------------------------------------
    catalog.register(Variant(
        "fw_basic", K.FIREWALL_SOFTWARE,
        {"fw_bypass": 0.5}, cost=1.0, description="Port-filter firewall"))
    catalog.register(Variant(
        "fw_dpi", K.FIREWALL_SOFTWARE,
        {"fw_bypass": 0.15}, cost=1.8,
        description="Deep-packet-inspection ICS firewall"))

    # --- field devices -----------------------------------------------------
    catalog.register(Variant(
        "sensor_basic", K.SENSOR_MODEL,
        {"signal_tamper": 0.7}, cost=1.0, description="Unauthenticated 4-20mA"))
    catalog.register(Variant(
        "sensor_authenticated", K.SENSOR_MODEL,
        {"signal_tamper": 0.1}, cost=1.7,
        description="Digitally signed sensor readings"))
    catalog.register(Variant(
        "actuator_basic", K.ACTUATOR_MODEL,
        {"signal_tamper": 0.7}, cost=1.0, description="Direct-drive actuator"))
    catalog.register(Variant(
        "actuator_limited", K.ACTUATOR_MODEL,
        {"signal_tamper": 0.15}, cost=1.6,
        description="Actuator with mechanical safety interlocks"))

    # --- RTU firmware --------------------------------------------------------
    catalog.register(Variant(
        "rtu_common", K.RTU_FIRMWARE,
        {"reprogram": 0.7, "net_exploit": 0.35}, cost=1.0,
        description="Commodity RTU firmware"))
    catalog.register(Variant(
        "rtu_hardened", K.RTU_FIRMWARE,
        {"reprogram": 0.12, "net_exploit": 0.1}, cost=1.8,
        description="Hardened RTU firmware"))

    return catalog
