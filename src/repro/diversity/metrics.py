"""Diversity indices.

Quantify "how diverse" a deployed configuration is, so benchmark sweeps
can put a number on the x-axis when plotting indicators vs. diversity.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.scada.components import ComponentKind
from repro.scada.network import SCADANetwork


def variant_counts(
    network: SCADANetwork, kind: ComponentKind
) -> Dict[str, int]:
    """How many hosts run each variant of ``kind``."""
    counts: Dict[str, int] = {}
    for host in network.hosts:
        name = host.variant_of(kind)
        if name is not None:
            counts[name] = counts.get(name, 0) + 1
    return counts


def shannon_entropy(counts: Mapping[str, int]) -> float:
    """Shannon entropy (nats) of a variant count distribution.

    0 for a homogeneous population; ln(k) for k equally-used variants.
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        if count > 0:
            p = count / total
            entropy -= p * math.log(p)
    return entropy


def simpson_index(counts: Mapping[str, int]) -> float:
    """Simpson diversity 1 - Σ p²: probability two random hosts differ."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return 1.0 - sum((c / total) ** 2 for c in counts.values())


def distinct_variants(counts: Mapping[str, int]) -> int:
    """Number of distinct variants in use."""
    return sum(1 for c in counts.values() if c > 0)


def network_diversity_profile(
    network: SCADANetwork, kinds: Optional[Sequence[ComponentKind]] = None
) -> Dict[str, Dict[str, float]]:
    """Per-kind diversity summary of a deployed network.

    Returns:
        ``{kind_value: {"distinct": ..., "shannon": ..., "simpson": ...}}``.
    """
    if kinds is None:
        kinds = sorted(
            {k for host in network.hosts for k in host.components},
            key=lambda k: k.value,
        )
    profile: Dict[str, Dict[str, float]] = {}
    for kind in kinds:
        counts = variant_counts(network, kind)
        if not counts:
            continue
        profile[kind.value] = {
            "distinct": float(distinct_variants(counts)),
            "shannon": shannon_entropy(counts),
            "simpson": simpson_index(counts),
        }
    return profile
