"""The paper's PSA composition model (section I).

    "let us consider an attack that requires compromising two machines in
    order to be successful.  If the machines are identical, it suffices to
    compromise one machine and then repeating the exploit for the other,
    i.e., the chance of a successful attack PSA to the system is related
    to the chance of compromising just one machine (PSA ≈ PM).  When the
    machines are different, PSA is smaller because it becomes somewhat
    related to chance of compromising each machine separately (i.e.,
    PSA ≈ PM1 × PM2): succeeding is harder and time-consuming."

This module gives that argument a precise operational semantics:

* The attacker must compromise a **chain** of n machines.
* Compromising a machine requires developing/succeeding with an exploit
  for its variant: success probability ``pm`` per development effort.
* Against an **identical** chain, one successful exploit is *reused* on
  every remaining machine (reuse succeeds with probability
  ``reuse_reliability``, near 1).
* Against a **diverse** chain every machine needs its own exploit.

Both closed forms and a per-attempt stochastic process (for time
measures) are provided; experiment E1 regenerates the claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AttackerProfile:
    """Attacker effort parameters.

    Attributes:
        exploit_attempts: Maximum exploit-development attempts per
            machine before the attacker gives up (caps attack effort).
        attempt_time: Mean time of one exploit-development attempt.
        reuse_time: Time to re-apply a working exploit on an identical
            machine (much smaller than ``attempt_time``).
        reuse_reliability: Probability the reused exploit works on the
            next identical machine.
    """

    exploit_attempts: int = 1
    attempt_time: float = 10.0
    reuse_time: float = 0.5
    reuse_reliability: float = 1.0

    def __post_init__(self) -> None:
        if self.exploit_attempts < 1:
            raise ValueError("exploit_attempts must be >= 1")
        if self.attempt_time <= 0 or self.reuse_time < 0:
            raise ValueError("times must be positive")
        if not 0.0 <= self.reuse_reliability <= 1.0:
            raise ValueError("reuse_reliability must be in [0, 1]")


def _per_machine_success(pm: float, attempts: int) -> float:
    """P(at least one of ``attempts`` independent tries succeeds)."""
    return 1.0 - (1.0 - pm) ** attempts


def identical_chain(
    pm: float, n_machines: int, profile: Optional[AttackerProfile] = None
) -> Tuple[float, float]:
    """PSA and expected time against n identical machines.

    One exploit development (success probability per attempt ``pm``, up
    to ``profile.exploit_attempts`` tries) unlocks every machine; each
    additional machine costs only a reuse that succeeds with probability
    ``reuse_reliability``.

    Returns:
        ``(psa, expected_time_given_success)``.

    Raises:
        ValueError: On out-of-range inputs.
    """
    _check(pm, n_machines)
    profile = profile or AttackerProfile()
    p_first = _per_machine_success(pm, profile.exploit_attempts)
    psa = p_first * profile.reuse_reliability ** (n_machines - 1)
    # E[attempts | success] for a truncated geometric.
    expected_attempts = _mean_attempts_given_success(
        pm, profile.exploit_attempts
    )
    time = (
        expected_attempts * profile.attempt_time
        + (n_machines - 1) * profile.reuse_time
    )
    return psa, time


def diverse_chain(
    pms: Sequence[float], profile: Optional[AttackerProfile] = None
) -> Tuple[float, float]:
    """PSA and expected time against fully diverse machines.

    Every machine needs its own exploit development.

    Returns:
        ``(psa, expected_time_given_success)``.
    """
    profile = profile or AttackerProfile()
    psa = 1.0
    time = 0.0
    for pm in pms:
        _check(pm, 1)
        psa *= _per_machine_success(pm, profile.exploit_attempts)
        time += (
            _mean_attempts_given_success(pm, profile.exploit_attempts)
            * profile.attempt_time
        )
    return psa, time


def _mean_attempts_given_success(pm: float, max_attempts: int) -> float:
    """E[number of attempts | success within max_attempts]."""
    if pm == 0.0:
        return float(max_attempts)
    probs = [(1 - pm) ** (k - 1) * pm for k in range(1, max_attempts + 1)]
    total = sum(probs)
    if total == 0.0:
        return float(max_attempts)
    return sum(k * p for k, p in zip(range(1, max_attempts + 1), probs)) / total


def chain_attack(
    pms: Sequence[float],
    identical: bool,
    rng: np.random.Generator,
    profile: Optional[AttackerProfile] = None,
) -> Tuple[bool, float]:
    """Simulate one chain attack (stochastic counterpart of the closed forms).

    Args:
        pms: Per-machine exploit success probabilities (all equal for the
            identical case).
        identical: Whether machines share a variant (exploit reuse).
        rng: Random generator.
        profile: Attacker effort parameters.

    Returns:
        ``(success, elapsed_time)``; time covers effort spent even on
        failed attacks.
    """
    profile = profile or AttackerProfile()
    elapsed = 0.0
    have_exploit = False
    for index, pm in enumerate(pms):
        _check(pm, 1)
        if identical and have_exploit:
            elapsed += profile.reuse_time
            if rng.random() < profile.reuse_reliability:
                continue
            return False, elapsed
        success = False
        for _ in range(profile.exploit_attempts):
            elapsed += rng.exponential(profile.attempt_time)
            if rng.random() < pm:
                success = True
                break
        if not success:
            return False, elapsed
        have_exploit = True
    return True, elapsed


def _check(pm: float, n_machines: int) -> None:
    if not 0.0 <= pm <= 1.0:
        raise ValueError(f"pm must be in [0, 1], got {pm}")
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")


def rotating_chain(
    pm: float,
    n_machines: int,
    n_variants: int,
    rotation_period: float,
    rng: np.random.Generator,
    profile: Optional[AttackerProfile] = None,
) -> Tuple[bool, float]:
    """Moving-target extension: variants rotate while the attack runs.

    Each machine runs one of ``n_variants`` variants and the deployment
    re-randomizes every ``rotation_period`` time units.  A working
    exploit applies only to the variant it was developed for, so a
    rotation between two compromises invalidates reuse with probability
    ``1 - 1/n_variants`` — temporal diversity on top of the paper's
    spatial diversity.

    Args:
        pm: Per-attempt exploit-development success probability.
        n_machines: Chain length.
        n_variants: Size of the variant pool.
        rotation_period: Time between re-randomizations (same units as
            the attacker profile's times).  ``float("inf")`` disables
            rotation, recovering :func:`chain_attack` with
            ``identical=(n_variants == 1)`` semantics in distribution.
        rng: Random generator.
        profile: Attacker effort parameters.

    Returns:
        ``(success, elapsed_time)``.

    Raises:
        ValueError: On out-of-range inputs.
    """
    _check(pm, n_machines)
    if n_variants < 1:
        raise ValueError(f"n_variants must be >= 1, got {n_variants}")
    if rotation_period <= 0:
        raise ValueError("rotation_period must be > 0")
    profile = profile or AttackerProfile()

    elapsed = 0.0
    exploits: set[int] = set()  # variant ids we hold a working exploit for

    def current_variant() -> int:
        if rotation_period == float("inf"):
            return 0 if n_variants == 1 else int(rng.integers(n_variants))
        # The deployment re-randomizes every period; the variant seen at
        # a given time is i.i.d. uniform per epoch.
        return int(rng.integers(n_variants))

    for _ in range(n_machines):
        variant = current_variant()
        if variant in exploits:
            epoch_at_start = (
                0 if rotation_period == float("inf")
                else int(elapsed / rotation_period)
            )
            elapsed += profile.reuse_time
            epoch_at_end = (
                0 if rotation_period == float("inf")
                else int(elapsed / rotation_period)
            )
            rotated = epoch_at_end != epoch_at_start
            if not rotated and rng.random() < profile.reuse_reliability:
                continue
            if rotated:
                # The machine rotated under the attacker's feet; the held
                # exploit may no longer match.
                if rng.random() < 1.0 / n_variants and (
                    rng.random() < profile.reuse_reliability
                ):
                    continue
            else:
                return False, elapsed
        success = False
        for _attempt in range(profile.exploit_attempts):
            elapsed += rng.exponential(profile.attempt_time)
            if rng.random() < pm:
                success = True
                break
        if not success:
            return False, elapsed
        exploits.add(variant)
    return True, elapsed
