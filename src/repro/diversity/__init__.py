"""Diversity modeling.

The paper's core intuition: *"diversity can be leveraged to raise the
effort it takes to conduct a successful attack ... to such a level so as
to make it pointless to attempt an attack at all."*  This package
provides:

* :mod:`repro.diversity.catalog` — component variants with per-vector
  exploitability scores (the probability values the paper derives from
  attack history, honeypots or sensitivity analysis).
* :mod:`repro.diversity.config` — system configurations (host → variant
  assignments) and configuration spaces for DoE.
* :mod:`repro.diversity.metrics` — diversity indices (Shannon, Simpson,
  distinct count).
* :mod:`repro.diversity.psa` — the analytic PSA composition model from
  the paper's section I (identical: PSA≈PM; diverse: PSA≈ΠPMi).
"""

from repro.diversity.catalog import Variant, VariantCatalog, default_catalog
from repro.diversity.config import (
    SystemConfiguration,
    configuration_factors,
    random_configuration,
)
from repro.diversity.metrics import (
    distinct_variants,
    shannon_entropy,
    simpson_index,
    variant_counts,
)
from repro.diversity.psa import (
    AttackerProfile,
    chain_attack,
    diverse_chain,
    identical_chain,
)

__all__ = [
    "AttackerProfile",
    "SystemConfiguration",
    "Variant",
    "VariantCatalog",
    "chain_attack",
    "configuration_factors",
    "default_catalog",
    "distinct_variants",
    "diverse_chain",
    "identical_chain",
    "random_configuration",
    "shannon_entropy",
    "simpson_index",
    "variant_counts",
]
