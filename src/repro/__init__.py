"""repro — diversity-based security evaluation for monitoring and control systems.

A from-scratch reproduction of D. Cotroneo, A. Pecchia, S. Russo,
*"Towards Secure Monitoring and Control Systems: Diversify!"* (DSN 2013).

The library implements the paper's three-step modeling and evaluation
approach — attack modeling, DoE & measurements, ANOVA-based diversity
assessment — together with every substrate it depends on: a discrete-event
simulation kernel, a stochastic-activity-network engine with exact CTMC
analysis, GSPNs, attack trees, Bayesian attack graphs, a zoned SCADA
system model with a diversifiable Modbus-like protocol, a physical
cooling-plant model, and Stuxnet/Duqu/Flame-like threat profiles.

Quickstart::

    import numpy as np
    from repro import (
        DiversityStudy, default_catalog, scope_cooling_topology,
        stuxnet_like,
    )

    study = DiversityStudy(
        network_factory=scope_cooling_topology,
        catalog=default_catalog(),
        threat=stuxnet_like(),
        design_kind="fractional",
        replications=20,
    )
    result = study.execute(np.random.default_rng(42))
    print(result.report())
"""

import logging as _logging

# Library convention: silent unless the application configures logging
# (or asks for it via Session(verbose=True) / repro.telemetry
# .configure_logging).  Every module logger lives under "repro".
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.attacks import (
    AttackCampaign,
    AttackOutcome,
    AttackStage,
    CampaignConfig,
    ThreatProfile,
    duqu_like,
    flame_like,
    stuxnet_like,
)
from repro.core import (
    DiversityStudy,
    IndicatorSet,
    MeasurementPlan,
    PlacementProblem,
    StudyResult,
    assess,
    attack_tree_for,
    bayesian_attack_graph_for,
    compute_indicators,
    san_model_for,
)
from repro.diversity import (
    SystemConfiguration,
    VariantCatalog,
    default_catalog,
)
from repro.exec import ExperimentRunner
from repro.scada.network import SCADANetwork, Zone
from repro.scada.topologies import scope_cooling_topology, smart_grid_feeder
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    ScenarioSuite,
    SuiteResult,
    get_scenario,
    register_scenario,
)

# The stable public facade (imported last: it composes the subsystems
# above).  See the README "Public API" section.
from repro.api import (
    JobCancelled,
    JobHandle,
    JobState,
    Provenance,
    RunResult,
    Session,
    StudyBuilder,
)
from repro.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    configure_logging,
)

__version__ = "1.2.0"

__all__ = [
    "AttackCampaign",
    "AttackOutcome",
    "AttackStage",
    "CampaignConfig",
    "DiversityStudy",
    "ExperimentRunner",
    "IndicatorSet",
    "JobCancelled",
    "JobHandle",
    "JobState",
    "MeasurementPlan",
    "PlacementProblem",
    "Provenance",
    "RunResult",
    "SCADANetwork",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioSuite",
    "Session",
    "StudyBuilder",
    "StudyResult",
    "SuiteResult",
    "SystemConfiguration",
    "Telemetry",
    "TelemetrySnapshot",
    "ThreatProfile",
    "VariantCatalog",
    "Zone",
    "assess",
    "attack_tree_for",
    "bayesian_attack_graph_for",
    "compute_indicators",
    "configure_logging",
    "default_catalog",
    "duqu_like",
    "flame_like",
    "get_scenario",
    "register_scenario",
    "san_model_for",
    "scope_cooling_topology",
    "smart_grid_feeder",
    "stuxnet_like",
    "__version__",
]
