"""Step 1 — Attack modeling.

Builds formal attack models from a configured SCADA system plus a threat
profile, in the three formalisms the paper names:

* :func:`san_model_for` — a stochastic activity network over the paper's
  stage chain (*initial → activated → root access → propagation → device
  impairment*), with per-stage success probabilities derived from the
  installed component variants.  This is the formalism of the SCoPE case
  study and supports both simulation and exact CTMC analysis.
* :func:`attack_tree_for` — a goal-decomposition view.
* :func:`bayesian_attack_graph_for` — a host-level probabilistic
  reachability view.

All three consume the same exploitability data, so they can be
cross-checked against each other and against the full campaign
simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.attacks.profiles import ThreatProfile
from repro.attacktree.nodes import AndNode, LeafAttack, OrNode, SandNode
from repro.attacktree.tree import AttackTree
from repro.bayes.attackgraph import AttackGraph, attack_graph_from_topology
from repro.diversity.catalog import VariantCatalog
from repro.san.builder import SANBuilder
from repro.san.model import SANModel
from repro.scada.components import ComponentKind, HostRole
from repro.scada.network import SCADANetwork, Zone
from repro.stats.distributions import Exponential


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stage_probabilities(
    network: SCADANetwork,
    catalog: VariantCatalog,
    threat: ThreatProfile,
) -> Dict[str, float]:
    """Aggregate per-stage success probabilities for a configured system.

    The aggregation is the *mean per-attempt success probability over the
    applicable targets* — the abstraction the paper's own stage-level
    example uses ("the root access stage might have a success probability
    P1 when operating system OS1 is used").

    Returns:
        ``{"entry": p, "escalation": p, "propagation": p, "reprogram": p}``.
    """
    entry_probs: List[float] = []
    for host in network.hosts:
        if not host.is_computer:
            continue
        if host.usb_ports or network.zone_of(host.name) == Zone.ENTERPRISE:
            action = "usb_autorun" if host.usb_ports else "net_exploit"
            p = catalog.success_probability(
                ComponentKind.OPERATING_SYSTEM,
                host.variant_of(ComponentKind.OPERATING_SYSTEM),
                action,
            )
            av = host.variant_of(ComponentKind.ANTIVIRUS)
            if av is not None:
                p *= catalog.success_probability(
                    ComponentKind.ANTIVIRUS, av, "av_evasion"
                )
            entry_probs.append(p)

    escalation_probs = [
        catalog.success_probability(
            ComponentKind.OPERATING_SYSTEM,
            host.variant_of(ComponentKind.OPERATING_SYSTEM),
            "priv_escalation",
        )
        for host in network.hosts
        if host.is_computer
    ]

    propagation_probs: List[float] = []
    for vector in threat.vectors:
        for host in network.hosts:
            if not host.is_computer:
                continue
            for target_name in vector.targets(host.name, network):
                propagation_probs.append(
                    vector.success_probability(
                        network.host(target_name), catalog
                    )
                )

    reprogram_probs: List[float] = []
    for plc in network.hosts_with_role(HostRole.PLC):
        p_fw = catalog.success_probability(
            ComponentKind.PLC_FIRMWARE,
            plc.variant_of(ComponentKind.PLC_FIRMWARE),
            "reprogram",
        )
        p_stack = catalog.success_probability(
            ComponentKind.PROTOCOL_STACK,
            plc.variant_of(ComponentKind.PROTOCOL_STACK),
            "reprogram",
        )
        reprogram_probs.append(p_fw * p_stack)

    return {
        "entry": _mean(entry_probs),
        "escalation": _mean(escalation_probs),
        "propagation": _mean(propagation_probs),
        "reprogram": _mean(reprogram_probs),
    }


def san_model_for(
    network: SCADANetwork,
    catalog: VariantCatalog,
    threat: ThreatProfile,
    give_up: bool = False,
) -> SANModel:
    """The stage-chain SAN of the configured system.

    Places: ``dormant → compromised → activated → rooted → positioned →
    impaired``; each timed activity retries on failure (token returns to
    its source place), or — with ``give_up=True`` — moves to an absorbing
    ``abandoned`` place so attack-success probability is < 1.

    Args:
        network: The configured system.
        catalog: Variant catalog.
        threat: Threat profile (provides the stage rates).
        give_up: Whether failed stage attempts abort the campaign.

    Returns:
        An all-exponential :class:`~repro.san.model.SANModel` (CTMC
        analyzable).
    """
    probs = stage_probabilities(network, catalog, threat)
    builder = SANBuilder(f"attack-{threat.name}")
    builder.place("dormant", 1)
    for place in (
        "compromised",
        "activated",
        "rooted",
        "positioned",
        "impaired",
        "abandoned",
    ):
        builder.place(place, 0)
    failure = "abandoned" if give_up else None
    builder.stage(
        "entry",
        "dormant",
        "compromised",
        rate=threat.entry_rate,
        success_probability=probs["entry"],
        failure_place=failure,
    )
    builder.stage(
        "activate",
        "compromised",
        "activated",
        rate=threat.activation_delay_rate,
        success_probability=1.0,
    )
    builder.stage(
        "escalate",
        "activated",
        "rooted",
        rate=threat.escalation_rate,
        success_probability=probs["escalation"],
        failure_place=failure,
    )
    # Propagation to an attack position (a host that can talk to a PLC).
    prop_rate = _mean([v.rate for v in threat.vectors]) or 0.3
    builder.stage(
        "propagate",
        "rooted",
        "positioned",
        rate=prop_rate,
        success_probability=probs["propagation"],
        failure_place=failure,
    )
    builder.stage(
        "reprogram",
        "positioned",
        "impaired",
        rate=threat.reprogram_rate,
        success_probability=probs["reprogram"],
        failure_place=failure,
    )
    return builder.build()


def attack_tree_for(
    network: SCADANetwork,
    catalog: VariantCatalog,
    threat: ThreatProfile,
) -> AttackTree:
    """A goal-decomposition attack tree of the configured system.

    Root = SAND(reach a foothold, escalate, reach attack position,
    reprogram controller); the foothold is an OR over the concrete entry
    hosts.
    """
    entry_leaves: List[LeafAttack] = []
    for host in network.hosts:
        if not host.is_computer:
            continue
        if host.usb_ports or network.zone_of(host.name) == Zone.ENTERPRISE:
            action = "usb_autorun" if host.usb_ports else "net_exploit"
            p = catalog.success_probability(
                ComponentKind.OPERATING_SYSTEM,
                host.variant_of(ComponentKind.OPERATING_SYSTEM),
                action,
            )
            av = host.variant_of(ComponentKind.ANTIVIRUS)
            if av is not None:
                p *= catalog.success_probability(
                    ComponentKind.ANTIVIRUS, av, "av_evasion"
                )
            entry_leaves.append(
                LeafAttack(
                    f"enter_{host.name}",
                    probability=p,
                    cost=5.0,
                    time=Exponential(threat.entry_rate),
                )
            )
    if not entry_leaves:
        entry_leaves.append(
            LeafAttack("enter_nowhere", probability=0.0, cost=0.0)
        )
    probs = stage_probabilities(network, catalog, threat)
    foothold = OrNode("foothold", entry_leaves)
    escalate = LeafAttack(
        "escalate",
        probability=probs["escalation"],
        cost=10.0,
        time=Exponential(threat.escalation_rate),
    )
    position = LeafAttack(
        "reach_position",
        probability=probs["propagation"],
        cost=15.0,
        time=Exponential(
            _mean([v.rate for v in threat.vectors]) or 0.3
        ),
    )
    reprogram = LeafAttack(
        "reprogram_controller",
        probability=probs["reprogram"],
        cost=25.0,
        time=Exponential(threat.reprogram_rate),
    )
    root = SandNode(
        "impair_device", [foothold, escalate, position, reprogram]
    )
    return AttackTree(root)


def bayesian_attack_graph_for(
    network: SCADANetwork,
    catalog: VariantCatalog,
    threat: ThreatProfile,
    entry_prior: float = 1.0,
) -> AttackGraph:
    """A host-level Bayesian attack graph of the configured system.

    The underlying network is undirected; the attack graph is made
    acyclic by orienting every usable link from the host *closer to an
    entry point* to the farther one (BFS layering) — the monotone
    progression assumption standard for Bayesian attack graphs.

    Args:
        network: The configured system.
        catalog: Variant catalog.
        threat: Threat profile (vectors define usable links).
        entry_prior: Prior compromise probability of the attacker's
            staging point.

    Returns:
        The :class:`~repro.bayes.attackgraph.AttackGraph`; query the PLC
        hosts for end-to-end compromise probability.
    """
    entry_hosts = [
        h.name
        for h in network.hosts
        if h.is_computer
        and (h.usb_ports or network.zone_of(h.name) == Zone.ENTERPRISE)
    ]
    # BFS distance from any entry host, over usable links.
    usable = nx.Graph()
    usable.add_nodes_from(network.host_names)
    for vector in threat.vectors:
        for host in network.hosts:
            for target in vector.targets(host.name, network):
                usable.add_edge(host.name, target, key=vector.name)
    # PLC links (reprogramming flows).
    for plc in network.hosts_with_role(HostRole.PLC):
        for other in network.host_names:
            if other != plc.name and network.flow_allowed(
                other, plc.name, "modbus"
            ):
                usable.add_edge(other, plc.name)

    distance: Dict[str, int] = {}
    frontier = [h for h in entry_hosts if h in usable]
    for h in frontier:
        distance[h] = 0
    depth = 0
    while frontier:
        depth += 1
        next_frontier: List[str] = []
        for node in frontier:
            for neighbor in usable.neighbors(node):
                if neighbor not in distance:
                    distance[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier

    edges: List[Tuple[str, str, float]] = []
    for a, b in usable.edges:
        if a not in distance or b not in distance:
            continue
        if distance[a] == distance[b]:
            continue
        src, dst = (a, b) if distance[a] < distance[b] else (b, a)
        target_host = network.host(dst)
        if target_host.role == HostRole.PLC:
            p_fw = catalog.success_probability(
                ComponentKind.PLC_FIRMWARE,
                target_host.variant_of(ComponentKind.PLC_FIRMWARE),
                "reprogram",
            )
            p_stack = catalog.success_probability(
                ComponentKind.PROTOCOL_STACK,
                target_host.variant_of(ComponentKind.PROTOCOL_STACK),
                "reprogram",
            )
            p = p_fw * p_stack
        else:
            p = max(
                (
                    v.success_probability(target_host, catalog)
                    for v in threat.vectors
                    if v.applicable(target_host)
                ),
                default=0.0,
            )
        if p > 0:
            edges.append((src, dst, p))

    priors = {h: entry_prior for h in entry_hosts if h in distance}
    return attack_graph_from_topology(edges, priors)
