"""Step 3 — Diversity assessment via ANOVA.

From the paper: ANOVA techniques *"make it possible to allocate the
variability of the security indicators (measured across the different
system configurations established in the previous step) to the
component(s) responsible for such variability.  This step allows
identifying the system HW/SW components that impact security indicators,
and thus valuable to diversify in the real system implementation."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.measurement import MeasurementResult
from repro.core.report import format_table
from repro.stats.anova import AnovaResult, anova


@dataclass(frozen=True)
class ComponentImpact:
    """A component's measured impact on one security indicator.

    Attributes:
        component: Component-kind factor name (e.g.
            ``"operating_system"``).
        response: Indicator name.
        allocation: Fraction of total indicator variance allocated to
            the component.
        p_value: F-test p-value.
        significant: Whether the F test rejects at the assessment's
            alpha.
    """

    component: str
    response: str
    allocation: float
    p_value: float
    significant: bool


@dataclass
class DiversityAssessment:
    """The assessment across all responses.

    Attributes:
        anova_tables: ``{response: AnovaResult}``.
        impacts: Flattened impact records, sorted by descending
            allocation within each response.
        alpha: Significance level used.
    """

    anova_tables: Dict[str, AnovaResult]
    impacts: List[ComponentImpact]
    alpha: float

    def ranking(self, response: str) -> List[ComponentImpact]:
        """Impacts for ``response``, highest allocation first."""
        return sorted(
            (i for i in self.impacts if i.response == response),
            key=lambda i: -i.allocation,
        )

    def recommended_diversification(
        self, response: str, top: int = 3
    ) -> List[str]:
        """The components most worth diversifying for ``response``.

        Significant components first (by allocation), padded with
        non-significant ones only if fewer than ``top`` are significant.
        """
        ranked = self.ranking(response)
        significant = [i.component for i in ranked if i.significant]
        if len(significant) >= top:
            return significant[:top]
        rest = [i.component for i in ranked if not i.significant]
        return (significant + rest)[:top]

    def format_report(self) -> str:
        """Multi-table plain-text report."""
        blocks: List[str] = []
        for response, table in self.anova_tables.items():
            blocks.append(table.format_table())
            ranked = self.ranking(response)
            rows = [
                (
                    i.component,
                    100.0 * i.allocation,
                    i.p_value,
                    "yes" if i.significant else "no",
                )
                for i in ranked
            ]
            blocks.append(
                format_table(
                    ["component", "allocation %", "p-value", "significant"],
                    rows,
                    title=f"Variance allocation for {response}",
                )
            )
        return "\n\n".join(blocks)


def assess(
    measurement: MeasurementResult,
    responses: Optional[Sequence[str]] = None,
    interactions: Optional[Sequence[Tuple[str, str]]] = None,
    alpha: float = 0.05,
) -> DiversityAssessment:
    """Run the diversity assessment on measurement results.

    Args:
        measurement: Output of :class:`~repro.core.measurement.MeasurementPlan`.
        responses: Responses to analyze (default: all).
        interactions: Optional two-way interactions to include.
        alpha: Significance level for the F tests.

    Returns:
        The :class:`DiversityAssessment`.

    Raises:
        ValueError: If the measurement has no records.
    """
    if not len(measurement.table):
        raise ValueError("measurement has no records")
    factors = [f.name for f in measurement.design.factors]
    responses = list(responses or measurement.response_names())
    tables: Dict[str, AnovaResult] = {}
    impacts: List[ComponentImpact] = []
    for response in responses:
        table = anova(
            measurement.table,
            response=response,
            factors=factors,
            interactions=interactions,
        )
        tables[response] = table
        for row in table.rows:
            impacts.append(
                ComponentImpact(
                    component=row.source,
                    response=response,
                    allocation=row.allocation,
                    p_value=row.p,
                    significant=(row.p == row.p and row.p < alpha),
                )
            )
    return DiversityAssessment(
        anova_tables=tables, impacts=impacts, alpha=alpha
    )
