"""The end-to-end three-step pipeline (the paper's Figure 1).

:class:`DiversityStudy` wires attack modeling, DoE-driven measurement and
ANOVA-based assessment into one call, producing a :class:`StudyResult`
with every intermediate artifact and a plain-text report.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # imported lazily to avoid a package cycle
    from repro.scenarios.spec import Scenario

import numpy as np

from repro.attacks.campaign import CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.attacktree.analysis import evaluate as evaluate_tree
from repro.attacktree.tree import AttackTree
from repro.core.assessment import DiversityAssessment, assess
from repro.core.measurement import MeasurementPlan, MeasurementResult
from repro.core.modeling import attack_tree_for, san_model_for
from repro.core.report import format_table
from repro.diversity.catalog import VariantCatalog
from repro.diversity.config import configuration_factors
from repro.doe.design import Design, Factor
from repro.doe.factorial import full_factorial
from repro.doe.fractional import fractional_factorial
from repro.doe.plackett_burman import plackett_burman
from repro.exec.backends import get_backend
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import SeedLike
from repro.results import Provenance, RecordTable
from repro.san.model import SANModel
from repro.scada.components import ComponentKind
from repro.scada.network import SCADANetwork
from repro.telemetry.core import TelemetrySnapshot


@dataclass
class StudyResult:
    """All artifacts of a diversity study.

    Attributes:
        design: The executed DoE design.
        measurement: Step-2 measurements.
        assessment: Step-3 ANOVA assessment.
        san_model: Step-1 SAN model of the baseline system.
        attack_tree: Step-1 attack tree of the baseline system.
        factors: Diversification factors considered.
        provenance: Reproduction record of the measurement execution
            (mirrors ``measurement.provenance``; ``None`` on the legacy
            shared-generator path).
        telemetry: Observability snapshot of the run (set by
            :class:`~repro.api.Session` when telemetry is enabled);
            outside the spec digest.
    """

    design: Design
    measurement: MeasurementResult
    assessment: DiversityAssessment
    san_model: SANModel
    attack_tree: AttackTree
    factors: List[Factor]
    provenance: Optional[Provenance] = None
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def table(self) -> RecordTable:
        """The measurement's columnar long-format record table."""
        return self.measurement.table

    @property
    def summary(self) -> Dict[str, float]:
        """Scalar comparison metrics over the measurement records."""
        return self.measurement.summary

    def report(self) -> str:
        """Human-readable study report."""
        tree_metrics = evaluate_tree(self.attack_tree)
        blocks = [
            "=" * 70,
            "DIVERSITY STUDY REPORT",
            "=" * 70,
            "",
            "Step 1 - Attack Modeling",
            f"  SAN model: {self.san_model.name} "
            f"({len(self.san_model.activities)} activities, "
            f"{len(self.san_model.places())} places)",
            f"  Attack tree root success probability: "
            f"{tree_metrics.probability:.4f}",
            f"  Attack tree expected time: {tree_metrics.expected_time:.2f}",
            "",
            "Step 2 - DoE & Measurements",
            f"  Design: {self.design.name} — {self.design.n_runs} runs x "
            f"{self.measurement.replications} replications",
            format_table(
                ["factor", "levels"],
                [(f.name, ", ".join(map(str, f.levels))) for f in self.factors],
            ),
            "",
            "Step 3 - Diversity Assessment",
            self.assessment.format_report(),
            "",
            "Recommended diversification targets (per indicator):",
        ]
        for response in self.measurement.response_names():
            targets = self.assessment.recommended_diversification(response)
            blocks.append(f"  {response}: {', '.join(targets)}")
        return "\n".join(blocks)


class DiversityStudy:
    """The three-step modeling and evaluation pipeline.

    Args:
        network_factory: Builds a fresh baseline network.
        catalog: Variant catalog.
        threat: Threat profile.
        kinds: Component kinds to diversify (default: every kind with
            >= 2 catalog variants present in the network).
        design_kind: ``"full"``, ``"fractional"`` or ``"pb"``.
        two_level: Restrict every factor to its two extreme variants
            (weakest and strongest), as required by fractional/PB
            designs.
        replications: Campaign replications per configuration.
        campaign_config: Campaign parameters.
        backend: Measurement execution backend (``"serial"``,
            ``"thread"`` or ``"process"`` — see :mod:`repro.exec`).
            ``None`` (default) keeps the historical sequential
            shared-generator path; any explicit backend switches step 2
            to spawn-per-replication seeding, whose records are
            identical across backends and worker counts.
        n_workers: Worker-pool width for parallel backends.
        runner: The :class:`~repro.exec.runner.ExperimentRunner` to
            execute step 2 on; takes precedence over
            ``backend``/``n_workers`` (this is what
            :class:`repro.api.Session` passes).
    """

    def __init__(
        self,
        network_factory: Callable[[], SCADANetwork],
        catalog: VariantCatalog,
        threat: ThreatProfile,
        kinds: Optional[List[ComponentKind]] = None,
        design_kind: str = "full",
        two_level: bool = False,
        replications: int = 20,
        campaign_config: Optional[CampaignConfig] = None,
        backend: Optional[str] = None,
        n_workers: Optional[int] = None,
        runner: Optional[ExperimentRunner] = None,
    ) -> None:
        if design_kind not in ("full", "fractional", "pb"):
            raise ValueError(f"unknown design_kind {design_kind!r}")
        if backend is not None:
            # Fail fast: a typo'd backend name must not surface as a
            # late failure deep inside execute().
            get_backend(backend)
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.network_factory = network_factory
        self.catalog = catalog
        self.threat = threat
        self.kinds = kinds
        self.design_kind = design_kind
        self.two_level = two_level or design_kind in ("fractional", "pb")
        self.replications = replications
        self.campaign_config = campaign_config or CampaignConfig()
        self.backend = backend
        self.n_workers = n_workers
        self.runner = runner

    @classmethod
    def from_scenario(
        cls,
        scenario: "Scenario",
        backend: Optional[str] = None,
        n_workers: Optional[int] = None,
        runner: Optional[ExperimentRunner] = None,
    ) -> "DiversityStudy":
        """Build the study a declarative scenario spec describes.

        Args:
            scenario: A :class:`repro.scenarios.spec.Scenario` (or any
                object exposing its builder interface).
            backend / n_workers: Execution overrides — deliberately not
                part of the spec, so the same scenario runs anywhere.
                *Deprecated:* prefer ``runner=`` or
                ``repro.api.Session.study(...)``, which own the
                execution resources; the old arguments keep working
                with bit-identical results.
            runner: Step-2 runner; takes precedence over
                ``backend``/``n_workers``.
        """
        if runner is None and (backend is not None or n_workers is not None):
            warnings.warn(
                "DiversityStudy.from_scenario(backend=..., n_workers=...) "
                "is deprecated; pass runner=ExperimentRunner(...) or use "
                "repro.api.Session.study(...) (results are bit-identical "
                "either way)",
                DeprecationWarning,
                stacklevel=2,
            )
        return cls(
            network_factory=scenario.build_network_factory(),
            catalog=scenario.build_catalog(),
            threat=scenario.build_threat(),
            kinds=scenario.component_kinds(),
            design_kind=scenario.design_kind,
            two_level=scenario.two_level,
            replications=scenario.replications,
            campaign_config=scenario.build_campaign_config(),
            backend=backend,
            n_workers=n_workers,
            runner=runner,
        )

    def build_factors(self) -> List[Factor]:
        """Step-2 preamble: derive the diversification factors."""
        network = self.network_factory()
        factors = configuration_factors(network, self.catalog, self.kinds)
        if not self.two_level:
            return factors
        reduced: List[Factor] = []
        for factor in factors:
            kind = ComponentKind(factor.name)
            variants = sorted(
                self.catalog.variants_for(kind),
                key=lambda v: v.mean_exploitability,
            )
            strongest, weakest = variants[0], variants[-1]
            if strongest.name == weakest.name:
                continue
            reduced.append(Factor(factor.name, (weakest.name, strongest.name)))
        return reduced

    def build_design(self, factors: Sequence[Factor]) -> Design:
        """Instantiate the chosen DoE design over ``factors``."""
        factors = list(factors)
        if self.design_kind == "full":
            return full_factorial(factors)
        if self.design_kind == "pb":
            return plackett_burman(factors)
        # Fractional: half fraction with the last factor generated from
        # the product of all base factors (maximum resolution).
        k = len(factors)
        if k < 3:
            return full_factorial(factors)
        letters = "ABCDEFGHJKLMNPQRSTUVWXYZ"[: k - 1]
        generator = f"{'ABCDEFGHJKLMNPQRSTUVWXYZ'[k - 1]}={letters}"
        names = [f.name for f in factors]
        design, _ = fractional_factorial(names, [generator])
        # Re-level: fractional_factorial used (-1, 1); rebuild with the
        # factors' concrete variant levels.
        from repro.doe.design import Run

        runs = []
        for run in design.runs:
            settings = {}
            for factor in factors:
                coded = run[factor.name]
                settings[factor.name] = factor.levels[0 if coded == -1 else 1]
            runs.append(Run(settings))
        return Design(
            factors=factors, runs=runs, name=design.name,
            metadata=design.metadata,
        )

    def execute(
        self,
        rng: "SeedLike" = None,
        on_result: Optional[Callable[[int], None]] = None,
        cancel: Optional[Any] = None,
    ) -> StudyResult:
        """Run all three steps.

        Args:
            rng: Seed or generator for step 2 — a
                :class:`numpy.random.Generator` keeps the historical
                shared-generator stream when no backend is set; a plain
                seed (or any backend/runner) uses the backend-invariant
                spawn-per-replication path of :mod:`repro.exec`.
            on_result: Optional step-2 progress hook (per design run).
            cancel: Optional cancellation event — see
                :meth:`repro.core.measurement.MeasurementPlan.execute`.
        """
        baseline = self.network_factory()
        san_model = san_model_for(baseline, self.catalog, self.threat)
        attack_tree = attack_tree_for(baseline, self.catalog, self.threat)

        factors = self.build_factors()
        if not factors:
            raise ValueError(
                "no diversifiable factors found (need >= 2 catalog variants "
                "for at least one component kind present in the network)"
            )
        design = self.build_design(factors)
        plan = MeasurementPlan(
            self.network_factory,
            self.catalog,
            self.threat,
            design,
            replications=self.replications,
            campaign_config=self.campaign_config,
        )
        runner = self.runner
        if runner is None and self.backend is not None:
            runner = ExperimentRunner(self.backend, self.n_workers)
        measurement = plan.execute(
            rng, runner=runner, on_result=on_result, cancel=cancel
        )
        assessment = assess(measurement)
        return StudyResult(
            design=design,
            measurement=measurement,
            assessment=assessment,
            san_model=san_model,
            attack_tree=attack_tree,
            factors=factors,
            provenance=measurement.provenance,
        )
