"""Security indicators.

The paper defines three (section II):

* **Time-To-Attack (TTA)** — "the time between the beginning and
  completion of an attack".
* **Time-To-Security-Failure (TTSF)** — "the time between the beginning
  of the attack and the perceived attack manifestation" (after Madan et
  al., DSN 2002).
* **Compromised ratio** — "the number of compromised components at time
  t with respect to the total number of components".

All three are computed from batches of
:class:`~repro.attacks.campaign.AttackOutcome` replications.  Both TTA
and TTSF are *right-censored* at the simulation horizon: replications in
which the attack never completes (or is never perceived) carry no finite
sample.  Estimators expose the censoring explicitly rather than silently
dropping it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.campaign import AttackOutcome
from repro.stats.ci import ConfidenceInterval, mean_ci, proportion_ci


@dataclass
class CensoredTimeSample:
    """Event times with right censoring.

    Attributes:
        observed: Finite event times.
        n_censored: Replications where the event never occurred before
            the horizon.
        horizon: Censoring time.
    """

    observed: List[float]
    n_censored: int
    horizon: float

    @property
    def n_total(self) -> int:
        """Total replications."""
        return len(self.observed) + self.n_censored

    @property
    def event_probability(self) -> float:
        """Fraction of replications where the event occurred."""
        if self.n_total == 0:
            return float("nan")
        return len(self.observed) / self.n_total

    def event_probability_ci(self, level: float = 0.95) -> ConfidenceInterval:
        """Wilson CI for the event probability."""
        return proportion_ci(len(self.observed), self.n_total, level=level)

    def conditional_mean(self, level: float = 0.95) -> Optional[ConfidenceInterval]:
        """Mean event time *given the event occurred* (None if never)."""
        if not self.observed:
            return None
        return mean_ci(self.observed, level=level)

    def restricted_mean(self) -> float:
        """Horizon-restricted mean: censored replications count as the horizon.

        A conservative (downward-biased for the true mean, but
        well-defined) summary usable as an ANOVA response even when many
        replications are censored.
        """
        if self.n_total == 0:
            return float("nan")
        total = sum(self.observed) + self.n_censored * self.horizon
        return total / self.n_total

    def median(self) -> float:
        """Median event time treating censored samples as +inf.

        Returns inf when fewer than half the replications saw the event.
        """
        if self.n_total == 0:
            return float("nan")
        values = sorted(self.observed) + [math.inf] * self.n_censored
        mid = self.n_total // 2
        if self.n_total % 2 == 1:
            return values[mid]
        lo, hi = values[mid - 1], values[mid]
        return (lo + hi) / 2.0 if math.isfinite(hi) else math.inf

    def survival_curve(self) -> List[Tuple[float, float]]:
        """Kaplan-Meier estimate of S(t) = P(event time > t).

        With type-I censoring (every censored replication is censored at
        the common horizon), the estimator reduces to
        ``S(t) = 1 - (#events <= t) / n`` for t < horizon, but the
        product-limit form is implemented for generality.

        Returns:
            ``(time, survival)`` step points, right-continuous, starting
            implicitly at ``(0, 1)``.
        """
        events = sorted(self.observed)
        n = self.n_total
        curve: List[Tuple[float, float]] = []
        at_risk = n
        survival = 1.0
        index = 0
        while index < len(events):
            t = events[index]
            deaths = 0
            while index < len(events) and events[index] == t:
                deaths += 1
                index += 1
            if at_risk > 0:
                survival *= 1.0 - deaths / at_risk
            at_risk -= deaths
            curve.append((t, survival))
        return curve

    def survival_at(self, time: float) -> float:
        """S(time) from the Kaplan-Meier curve (1.0 before first event)."""
        survival = 1.0
        for t, s in self.survival_curve():
            if t <= time:
                survival = s
            else:
                break
        return survival


class TimeToAttack(CensoredTimeSample):
    """TTA sample extracted from a campaign batch."""

    @staticmethod
    def from_outcomes(outcomes: Sequence[AttackOutcome]) -> "TimeToAttack":
        """Build from replications.

        Raises:
            ValueError: On an empty batch.
        """
        if not outcomes:
            raise ValueError("need at least one outcome")
        observed = [o.success_time for o in outcomes if o.success]
        censored = sum(1 for o in outcomes if not o.success)
        return TimeToAttack(observed, censored, outcomes[0].horizon)


class TimeToSecurityFailure(CensoredTimeSample):
    """TTSF sample extracted from a campaign batch."""

    @staticmethod
    def from_outcomes(
        outcomes: Sequence[AttackOutcome],
    ) -> "TimeToSecurityFailure":
        """Build from replications.

        Raises:
            ValueError: On an empty batch.
        """
        if not outcomes:
            raise ValueError("need at least one outcome")
        observed = [
            o.detection_time
            for o in outcomes
            if not math.isnan(o.detection_time)
        ]
        censored = sum(1 for o in outcomes if math.isnan(o.detection_time))
        return TimeToSecurityFailure(observed, censored, outcomes[0].horizon)


@dataclass
class CompromisedRatio:
    """Mean compromised-ratio trajectory over a replication batch.

    Attributes:
        times: Sampling grid.
        mean_ratio: Mean ratio at each grid point.
        std_ratio: Standard deviation at each grid point.
    """

    times: List[float]
    mean_ratio: List[float]
    std_ratio: List[float]

    @staticmethod
    def from_outcomes(
        outcomes: Sequence[AttackOutcome], n_points: int = 50
    ) -> "CompromisedRatio":
        """Sample the batch-mean trajectory on a uniform grid.

        Raises:
            ValueError: On an empty batch or ``n_points < 2``.
        """
        if not outcomes:
            raise ValueError("need at least one outcome")
        if n_points < 2:
            raise ValueError("n_points must be >= 2")
        horizon = outcomes[0].horizon
        grid = np.linspace(0.0, horizon, n_points)
        times = list(grid)
        # One searchsorted per outcome replaces the per-(outcome, time)
        # counting loop; counts (and hence ratios) are value-identical.
        curves = np.zeros((len(outcomes), n_points))
        for i, outcome in enumerate(outcomes):
            if outcome.n_hosts == 0:
                continue
            events = np.sort(
                np.fromiter(
                    outcome.compromise_times.values(), dtype=np.float64
                )
            )
            curves[i] = (
                np.searchsorted(events, grid, side="right")
                / outcome.n_hosts
            )
        return CompromisedRatio(
            times=times,
            mean_ratio=list(curves.mean(axis=0)),
            std_ratio=list(curves.std(axis=0)),
        )

    def at(self, time: float) -> float:
        """Interpolated mean ratio at ``time``."""
        return float(np.interp(time, self.times, self.mean_ratio))

    def final(self) -> float:
        """Mean ratio at the horizon."""
        return self.mean_ratio[-1]


@dataclass
class IndicatorSet:
    """The paper's three indicators for one system configuration.

    Attributes:
        tta: Time-To-Attack sample.
        ttsf: Time-To-Security-Failure sample.
        ratio: Compromised-ratio trajectory.
        n_replications: Batch size.
    """

    tta: TimeToAttack
    ttsf: TimeToSecurityFailure
    ratio: CompromisedRatio
    n_replications: int

    def summary_row(self) -> dict:
        """A flat record usable as an ANOVA/benchmark response row."""
        return {
            "psa": self.tta.event_probability,
            "tta_restricted_mean": self.tta.restricted_mean(),
            "tta_conditional_mean": (
                float(np.mean(self.tta.observed)) if self.tta.observed
                else float("nan")
            ),
            "ttsf_restricted_mean": self.ttsf.restricted_mean(),
            "detection_probability": self.ttsf.event_probability,
            "final_compromised_ratio": self.ratio.final(),
        }


def compute_indicators(
    outcomes: Sequence[AttackOutcome], ratio_points: int = 50
) -> IndicatorSet:
    """Compute all three indicators from a campaign batch.

    Raises:
        ValueError: On an empty batch.
    """
    return IndicatorSet(
        tta=TimeToAttack.from_outcomes(outcomes),
        ttsf=TimeToSecurityFailure.from_outcomes(outcomes),
        ratio=CompromisedRatio.from_outcomes(outcomes, n_points=ratio_points),
        n_replications=len(outcomes),
    )
