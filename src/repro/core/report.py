"""Plain-text reporting helpers shared by studies and benchmarks."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column headers.
        rows: Row cells; floats are formatted with ``float_format``.
        title: Optional title line.
        float_format: Format spec applied to float cells.

    Returns:
        The table as a string.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "--"
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def comparison_table(
    index_label: str,
    summaries: Mapping[str, Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a cross-study comparison (one row per study/scenario).

    Args:
        index_label: Header of the row-label column.
        summaries: ``{row label: {metric: value}}``; insertion order of
            the outer mapping is the row order.  A value may also be a
            :class:`repro.results.RecordTable` of long-format records —
            it is summarized columnarly (``psa`` / restricted means) via
            :func:`repro.results.summarize_records`.
        columns: Metric columns, in order.  Default: every metric seen,
            in first-appearance order.  Metrics a row lacks render
            as ``--``.
        title: Optional title line.
        float_format: Format spec applied to float cells.

    Returns:
        The aligned table as a string.
    """
    from repro.results import RecordTable, summarize_records

    summaries = {
        label: (
            summarize_records(metrics)
            if isinstance(metrics, RecordTable)
            else metrics
        )
        for label, metrics in summaries.items()
    }
    if columns is None:
        seen: List[str] = []
        for metrics in summaries.values():
            for key in metrics:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rows = [
        [label, *(metrics.get(col, float("nan")) for col in columns)]
        for label, metrics in summaries.items()
    ]
    return format_table(
        [index_label, *columns], rows, title=title, float_format=float_format
    )


def format_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render an x/y series table (one x column, several y columns)."""
    return format_table([x_label, *y_labels], points, title=title)
