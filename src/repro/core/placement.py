"""Resilient-component placement optimization.

The paper's preliminary SCoPE finding: *"the use of a small,
strategically distributed, number of highly attack-resilient components
can significantly lower the chance of bringing a successful attack to
the system."*  This module searches for that strategic distribution:
given a budget of k hosts that may receive a highly attack-resilient
component (modeled via :attr:`repro.scada.components.Host.resilient`),
find the subset minimizing attack-success probability.

Strategies: exhaustive (small instances), greedy forward selection,
random placement (the baseline "non-strategic" distribution), and
simulated annealing.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.campaign import AttackCampaign, CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.diversity.catalog import VariantCatalog
from repro.scada.network import SCADANetwork


@dataclass
class PlacementResult:
    """Outcome of a placement search.

    Attributes:
        subset: Chosen host names.
        objective: Estimated attack-success probability with that subset
            hardened.
        evaluations: Number of candidate subsets evaluated.
        strategy: Search strategy used.
    """

    subset: FrozenSet[str]
    objective: float
    evaluations: int
    strategy: str


class PlacementProblem:
    """Search problem: which k hosts to harden.

    Args:
        network_factory: Builds a fresh network (hardenings mutate
            hosts).
        catalog: Variant catalog.
        threat: Threat profile.
        budget: Number of hosts that may be hardened.
        candidates: Hosts eligible for hardening (default: every
            computer and PLC).
        replications: Campaign replications per evaluation.
        campaign_config: Campaign parameters (use a modest horizon to
            keep evaluations affordable).
    """

    def __init__(
        self,
        network_factory: Callable[[], SCADANetwork],
        catalog: VariantCatalog,
        threat: ThreatProfile,
        budget: int,
        candidates: Optional[Sequence[str]] = None,
        replications: int = 25,
        campaign_config: Optional[CampaignConfig] = None,
    ) -> None:
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.network_factory = network_factory
        self.catalog = catalog
        self.threat = threat
        self.budget = budget
        self.replications = replications
        self.campaign_config = campaign_config or CampaignConfig(horizon=150.0)
        probe = network_factory()
        if candidates is None:
            candidates = [
                h.name
                for h in probe.hosts
                if h.is_computer or h.role.value == "plc"
            ]
        self.candidates = list(candidates)
        if budget > len(self.candidates):
            raise ValueError(
                f"budget {budget} exceeds candidate pool "
                f"({len(self.candidates)})"
            )
        self._cache: Dict[FrozenSet[str], float] = {}
        self.evaluations = 0

    def evaluate(
        self, subset: Sequence[str], rng: np.random.Generator
    ) -> float:
        """Estimate attack-success probability with ``subset`` hardened."""
        key = frozenset(subset)
        if key in self._cache:
            return self._cache[key]
        network = self.network_factory()
        for name in key:
            network.host(name).resilient = True
        campaign = AttackCampaign(
            network, self.catalog, self.threat, self.campaign_config
        )
        outcomes = campaign.run_batch(self.replications, rng)
        psa = sum(1 for o in outcomes if o.success) / len(outcomes)
        self._cache[key] = psa
        self.evaluations += 1
        return psa

    # ----------------------------- strategies ---------------------------

    def exhaustive(self, rng: np.random.Generator) -> PlacementResult:
        """Evaluate every size-``budget`` subset (small instances only).

        Raises:
            ValueError: If the search space exceeds 5000 subsets.
        """
        n_subsets = math.comb(len(self.candidates), self.budget)
        if n_subsets > 5000:
            raise ValueError(
                f"exhaustive search over {n_subsets} subsets is too large; "
                "use greedy() or annealing()"
            )
        best: Optional[Tuple[float, FrozenSet[str]]] = None
        start_evals = self.evaluations
        for combo in itertools.combinations(self.candidates, self.budget):
            psa = self.evaluate(combo, rng)
            if best is None or psa < best[0]:
                best = (psa, frozenset(combo))
        assert best is not None
        return PlacementResult(
            best[1], best[0], self.evaluations - start_evals, "exhaustive"
        )

    def greedy(self, rng: np.random.Generator) -> PlacementResult:
        """Forward selection: add the single best host, repeat."""
        chosen: List[str] = []
        start_evals = self.evaluations
        current = self.evaluate(chosen, rng)
        for _ in range(self.budget):
            best_candidate: Optional[Tuple[float, str]] = None
            for name in self.candidates:
                if name in chosen:
                    continue
                psa = self.evaluate(chosen + [name], rng)
                if best_candidate is None or psa < best_candidate[0]:
                    best_candidate = (psa, name)
            if best_candidate is None:
                break
            current = best_candidate[0]
            chosen.append(best_candidate[1])
        return PlacementResult(
            frozenset(chosen), current, self.evaluations - start_evals, "greedy"
        )

    def random_placement(
        self, rng: np.random.Generator, samples: int = 10
    ) -> PlacementResult:
        """Mean-quality random placement (the non-strategic baseline).

        Returns the *average* objective over random subsets — this is the
        comparison point showing that strategic placement beats spreading
        resilient components arbitrarily.
        """
        start_evals = self.evaluations
        values: List[float] = []
        last_subset: FrozenSet[str] = frozenset()
        for _ in range(samples):
            idx = rng.choice(
                len(self.candidates), size=self.budget, replace=False
            )
            subset = frozenset(self.candidates[int(i)] for i in idx)
            values.append(self.evaluate(subset, rng))
            last_subset = subset
        return PlacementResult(
            last_subset,
            float(np.mean(values)),
            self.evaluations - start_evals,
            "random",
        )

    def annealing(
        self,
        rng: np.random.Generator,
        iterations: int = 60,
        initial_temperature: float = 0.1,
    ) -> PlacementResult:
        """Simulated annealing over size-``budget`` subsets."""
        start_evals = self.evaluations
        if self.budget == 0:
            psa = self.evaluate([], rng)
            return PlacementResult(frozenset(), psa, 1, "annealing")
        idx = rng.choice(len(self.candidates), size=self.budget, replace=False)
        current = frozenset(self.candidates[int(i)] for i in idx)
        current_value = self.evaluate(current, rng)
        best, best_value = current, current_value
        for step in range(iterations):
            temperature = initial_temperature * (
                1.0 - step / max(iterations - 1, 1)
            )
            inside = list(current)
            outside = [c for c in self.candidates if c not in current]
            if not outside:
                break
            swap_out = inside[int(rng.integers(len(inside)))]
            swap_in = outside[int(rng.integers(len(outside)))]
            neighbor = frozenset(
                (set(current) - {swap_out}) | {swap_in}
            )
            value = self.evaluate(neighbor, rng)
            accept = value < current_value or (
                temperature > 0
                and rng.random() < math.exp(
                    -(value - current_value) / max(temperature, 1e-9)
                )
            )
            if accept:
                current, current_value = neighbor, value
                if value < best_value:
                    best, best_value = neighbor, value
        return PlacementResult(
            best, best_value, self.evaluations - start_evals, "annealing"
        )
