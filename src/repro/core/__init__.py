"""The paper's three-step modeling and evaluation framework.

This is the library's primary contribution layer, mirroring Figure 1 of
the paper:

1. **Attack Modeling** — :mod:`repro.core.modeling` builds SAN, attack
   tree or Bayesian attack-graph models from a SCADA system description
   plus a threat profile.
2. **DoE & Measurements** — :mod:`repro.core.measurement` sweeps system
   configurations chosen by a DoE design and measures the security
   indicators of :mod:`repro.core.indicators` through Monte-Carlo
   campaign simulation.
3. **Diversity Assessment** — :mod:`repro.core.assessment` runs ANOVA on
   the measurements and allocates indicator variance to the components
   responsible, ranking diversification candidates.

:mod:`repro.core.study` wires the steps into a single
:class:`~repro.core.study.DiversityStudy` pipeline;
:mod:`repro.core.sensitivity` and :mod:`repro.core.placement` provide
the sensitivity analysis and resilient-component placement optimization
used in the paper's SCoPE case study.
"""

from repro.core.assessment import ComponentImpact, DiversityAssessment, assess
from repro.core.indicators import (
    CompromisedRatio,
    IndicatorSet,
    TimeToAttack,
    TimeToSecurityFailure,
    compute_indicators,
)
from repro.core.measurement import MeasurementPlan, MeasurementResult
from repro.core.modeling import (
    attack_tree_for,
    bayesian_attack_graph_for,
    san_model_for,
)
from repro.core.placement import PlacementProblem, PlacementResult
from repro.core.portfolio import PortfolioChoice, PortfolioOptimizer
from repro.core.sensitivity import oat_sweep, tornado
from repro.core.study import DiversityStudy, StudyResult

__all__ = [
    "ComponentImpact",
    "CompromisedRatio",
    "DiversityAssessment",
    "DiversityStudy",
    "IndicatorSet",
    "MeasurementPlan",
    "MeasurementResult",
    "PlacementProblem",
    "PlacementResult",
    "PortfolioChoice",
    "PortfolioOptimizer",
    "StudyResult",
    "TimeToAttack",
    "TimeToSecurityFailure",
    "assess",
    "attack_tree_for",
    "bayesian_attack_graph_for",
    "compute_indicators",
    "oat_sweep",
    "san_model_for",
    "tornado",
]
