"""Cost-constrained diversification portfolios.

The paper frames diversification as *"a balanced approach between secure
system design and diversification costs."*  This module makes that
balance concrete: each catalog variant carries a relative cost, and the
optimizer chooses, per component kind, which variant(s) to deploy so as
to minimize the analytic attack-success probability of the stage-chain
SAN model subject to a total cost budget.

The objective uses the *give-up* SAN (one pass through the paper's stage
chain, no infinite retries), whose success probability has a closed form
— the product of the per-stage probabilities — so portfolio search is
cheap and can afford exhaustive/greedy enumeration; the chosen portfolio
can then be validated against the full campaign simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.attacks.profiles import ThreatProfile
from repro.core.modeling import stage_probabilities
from repro.diversity.catalog import VariantCatalog
from repro.diversity.config import SystemConfiguration, configuration_from_run
from repro.scada.components import ComponentKind
from repro.scada.network import SCADANetwork


@dataclass(frozen=True)
class PortfolioChoice:
    """One evaluated portfolio.

    Attributes:
        assignment: ``{kind: variant_name}`` deployed system-wide.
        cost: Total relative cost (sum over assigned variants, weighted
            by how many hosts carry each kind).
        success_probability: Analytic give-up-attacker success
            probability of the resulting system.
    """

    assignment: Tuple[Tuple[str, str], ...]
    cost: float
    success_probability: float

    def as_dict(self) -> Dict[str, str]:
        """The assignment as a plain dict."""
        return dict(self.assignment)


class PortfolioOptimizer:
    """Chooses variants per component kind under a cost budget.

    Args:
        network_factory: Builds a fresh baseline network.
        catalog: Variant catalog (costs + exploitability).
        threat: Threat profile (stage rates + vectors).
        kinds: Component kinds in the decision space.
    """

    def __init__(
        self,
        network_factory: Callable[[], SCADANetwork],
        catalog: VariantCatalog,
        threat: ThreatProfile,
        kinds: Sequence[ComponentKind],
    ) -> None:
        if not kinds:
            raise ValueError("need at least one component kind")
        self.network_factory = network_factory
        self.catalog = catalog
        self.threat = threat
        self.kinds = list(kinds)
        probe = network_factory()
        self._slot_counts: Dict[ComponentKind, int] = {}
        for kind in self.kinds:
            count = sum(
                1
                for host in probe.hosts
                if kind in host.components or kind in host.missing_slots()
            )
            self._slot_counts[kind] = count
            if not catalog.names_for(kind):
                raise ValueError(f"catalog has no variants for {kind}")

    def portfolio_cost(self, assignment: Mapping[ComponentKind, str]) -> float:
        """Deployment cost: per-host variant cost summed over the slots."""
        total = 0.0
        for kind, variant_name in assignment.items():
            variant = self.catalog.get(kind, variant_name)
            total += variant.cost * self._slot_counts.get(kind, 0)
        return total

    def evaluate(self, assignment: Mapping[ComponentKind, str]) -> PortfolioChoice:
        """Analytic success probability of deploying ``assignment``."""
        network = self.network_factory()
        run = {kind.value: name for kind, name in assignment.items()}
        config = configuration_from_run(network, run, label="portfolio")
        config.apply(network)
        probs = stage_probabilities(network, self.catalog, self.threat)
        psa = (
            probs["entry"]
            * probs["escalation"]
            * probs["propagation"]
            * probs["reprogram"]
        )
        return PortfolioChoice(
            assignment=tuple(
                sorted((k.value, v) for k, v in assignment.items())
            ),
            cost=self.portfolio_cost(assignment),
            success_probability=psa,
        )

    def cheapest_assignment(self) -> Dict[ComponentKind, str]:
        """The minimum-cost (usually least-secure) portfolio."""
        return {
            kind: min(
                self.catalog.variants_for(kind), key=lambda v: v.cost
            ).name
            for kind in self.kinds
        }

    def exhaustive(self, budget: float) -> Optional[PortfolioChoice]:
        """The best feasible portfolio by full enumeration.

        Returns None when no portfolio fits the budget.

        Raises:
            ValueError: If the decision space exceeds 20 000 portfolios.
        """
        pools = [self.catalog.names_for(kind) for kind in self.kinds]
        size = 1
        for pool in pools:
            size *= len(pool)
        if size > 20_000:
            raise ValueError(
                f"decision space of {size} portfolios too large; use greedy()"
            )
        best: Optional[PortfolioChoice] = None
        for combo in itertools.product(*pools):
            assignment = dict(zip(self.kinds, combo))
            choice = self.evaluate(assignment)
            if choice.cost > budget:
                continue
            if best is None or choice.success_probability < (
                best.success_probability
            ):
                best = choice
        return best

    def greedy(self, budget: float) -> Optional[PortfolioChoice]:
        """Greedy upgrades by best security-per-cost ratio.

        Starts from the cheapest portfolio and repeatedly applies the
        single variant upgrade with the best marginal
        ΔPSA / Δcost ratio that still fits the budget.
        """
        assignment = self.cheapest_assignment()
        current = self.evaluate(assignment)
        if current.cost > budget:
            return None
        improved = True
        while improved:
            improved = False
            best_step: Optional[Tuple[float, ComponentKind, str,
                                      PortfolioChoice]] = None
            for kind in self.kinds:
                for variant in self.catalog.names_for(kind):
                    if variant == assignment[kind]:
                        continue
                    trial = dict(assignment)
                    trial[kind] = variant
                    choice = self.evaluate(trial)
                    if choice.cost > budget:
                        continue
                    gain = current.success_probability - (
                        choice.success_probability
                    )
                    extra = choice.cost - current.cost
                    if gain <= 0:
                        continue
                    ratio = gain / max(extra, 1e-9)
                    if best_step is None or ratio > best_step[0]:
                        best_step = (ratio, kind, variant, choice)
            if best_step is not None:
                __, kind, variant, choice = best_step
                assignment[kind] = variant
                current = choice
                improved = True
        return current

    def efficient_frontier(
        self, budgets: Sequence[float]
    ) -> List[Tuple[float, Optional[PortfolioChoice]]]:
        """Best portfolio per budget — the cost/security trade-off curve."""
        return [(b, self.exhaustive(b)) for b in budgets]
