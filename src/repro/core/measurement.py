"""Step 2 — DoE-driven measurement of security indicators.

For every run of a DoE design (each run = one system configuration,
i.e. one variant choice per diversified component kind), the plan
executes a Monte-Carlo batch of attack campaigns and records both the
per-replication responses (long format, for ANOVA) and the per-run
indicator summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.attacks.campaign import AttackCampaign, AttackOutcome, CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.core.indicators import IndicatorSet, compute_indicators
from repro.diversity.catalog import VariantCatalog
from repro.diversity.config import configuration_from_run
from repro.doe.design import Design, Run
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import SeedLike, as_seed_sequence, spawn_sequences
from repro.scada.network import SCADANetwork


@dataclass
class MeasurementResult:
    """Output of a measurement plan.

    Attributes:
        records: Long-format per-replication records; each has the
            factor levels plus responses ``success`` (0/1), ``tta``
            (restricted: horizon when censored), ``ttsf`` (restricted)
            and ``final_ratio``.
        run_indicators: Per-design-run indicator sets, parallel to
            ``design.runs``.
        design: The executed design.
        replications: Replications per run.
    """

    records: List[Dict[str, object]]
    run_indicators: List[IndicatorSet]
    design: Design
    replications: int

    def response_names(self) -> List[str]:
        """The response keys present in the records."""
        return ["success", "tta", "ttsf", "final_ratio"]


class MeasurementPlan:
    """Executes a DoE design against a SCADA system.

    Args:
        network_factory: Builds a *fresh* network per run (configurations
            mutate hosts, so each run must start clean).
        catalog: Variant catalog.
        threat: Threat profile to simulate.
        design: The DoE design; factor names must be
            :class:`~repro.scada.components.ComponentKind` values and
            levels variant names.
        replications: Campaign replications per design run.
        campaign_config: Campaign parameters.
    """

    def __init__(
        self,
        network_factory: Callable[[], SCADANetwork],
        catalog: VariantCatalog,
        threat: ThreatProfile,
        design: Design,
        replications: int = 30,
        campaign_config: Optional[CampaignConfig] = None,
    ) -> None:
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        self.network_factory = network_factory
        self.catalog = catalog
        self.threat = threat
        self.design = design
        self.replications = replications
        self.campaign_config = campaign_config or CampaignConfig()

    def campaign_for_run(self, run_index: int) -> AttackCampaign:
        """Build the configured campaign for one design run."""
        run = self.design.runs[run_index]
        network = self.network_factory()
        config = configuration_from_run(
            network, run.as_dict(), label=f"run_{run_index}"
        )
        config.apply(network)
        return AttackCampaign(
            network, self.catalog, self.threat, self.campaign_config
        )

    def _records_for_run(
        self, run: Run, run_index: int, outcomes: List[AttackOutcome]
    ) -> List[Dict[str, object]]:
        """Long-format response records for one run's outcome batch."""
        horizon = self.campaign_config.horizon
        records: List[Dict[str, object]] = []
        for outcome in outcomes:
            record: Dict[str, object] = dict(run.as_dict())
            record["run"] = run_index
            record["success"] = 1.0 if outcome.success else 0.0
            record["tta"] = (
                outcome.success_time if outcome.success else horizon
            )
            record["ttsf"] = (
                outcome.detection_time
                if not math.isnan(outcome.detection_time)
                else horizon
            )
            record["final_ratio"] = outcome.compromised_ratio_at(horizon)
            records.append(record)
        return records

    def execute_run(
        self, run_index: int, seq: np.random.SeedSequence
    ) -> Tuple[List[Dict[str, object]], IndicatorSet]:
        """Execute one design run with spawn-per-replication seeding.

        This is the parallel work unit: every replication draws from its
        own generator (the ``i``-th spawn of ``seq``), so the run's
        records depend only on ``(seq, run_index)`` — not on which
        worker, backend or chunk executed it.
        """
        campaign = self.campaign_for_run(run_index)
        outcomes = [
            campaign.run(np.random.default_rng(child))
            for child in seq.spawn(self.replications)
        ]
        records = self._records_for_run(
            self.design.runs[run_index], run_index, outcomes
        )
        return records, compute_indicators(outcomes)

    def execute(
        self,
        rng: SeedLike = None,
        runner: Optional[ExperimentRunner] = None,
    ) -> MeasurementResult:
        """Run every design run and collect responses.

        Execution modes mirror
        :meth:`repro.attacks.campaign.AttackCampaign.run_batch`:

        * **Shared-generator (legacy)** — ``rng`` is a
          :class:`numpy.random.Generator` and ``runner`` is ``None``:
          runs and replications execute serially against the one
          generator (historical bit-exact streams).
        * **Runner** — a ``runner`` is given (or ``rng`` is a plain
          seed): each design run becomes one work unit with its own
          spawned :class:`~numpy.random.SeedSequence`, and records are
          bit-identical across backends, worker counts and chunkings.
        """
        if runner is None and isinstance(rng, np.random.Generator):
            records: List[Dict[str, object]] = []
            run_indicators: List[IndicatorSet] = []
            for run_index, run in enumerate(self.design.runs):
                campaign = self.campaign_for_run(run_index)
                outcomes = campaign.run_batch(self.replications, rng)
                run_indicators.append(compute_indicators(outcomes))
                records.extend(
                    self._records_for_run(run, run_index, outcomes)
                )
        elif not self.design.runs:
            records, run_indicators = [], []
        else:
            active = runner or ExperimentRunner()
            root = as_seed_sequence(rng)
            sequences = spawn_sequences(root, len(self.design.runs))
            results = active.map(
                self.execute_run,
                [(i, seq) for i, seq in enumerate(sequences)],
            )
            records = [rec for run_records, _ in results for rec in run_records]
            run_indicators = [indicators for _, indicators in results]
        return MeasurementResult(
            records=records,
            run_indicators=run_indicators,
            design=self.design,
            replications=self.replications,
        )
