"""Step 2 — DoE-driven measurement of security indicators.

For every run of a DoE design (each run = one system configuration,
i.e. one variant choice per diversified component kind), the plan
executes a Monte-Carlo batch of attack campaigns and records both the
per-replication responses (long format, for ANOVA) and the per-run
indicator summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.attacks.campaign import AttackCampaign, AttackOutcome, CampaignConfig
from repro.attacks.profiles import ThreatProfile
from repro.core.indicators import IndicatorSet, compute_indicators
from repro.diversity.catalog import VariantCatalog
from repro.diversity.config import configuration_from_run
from repro.doe.design import Design, Run
from repro.exec.runner import ExperimentRunner
from repro.exec.seeding import SeedLike, as_seed_sequence, spawn_sequences
from repro.results import (
    Provenance,
    RecordTable,
    TableRecordsMixin,
    provenance_for,
    summarize_records,
)
from repro.scada.network import SCADANetwork
from repro.telemetry.core import trace


def outcome_table(
    outcomes: List[AttackOutcome],
    horizon: float,
    constants: Optional[Mapping[str, object]] = None,
) -> RecordTable:
    """Columnar response records for a batch of campaign outcomes.

    Produces the library's long-format responses — ``success`` (0/1),
    horizon-restricted ``tta``/``ttsf`` and ``final_ratio`` — as NumPy
    columns, optionally prefixed with constant columns (factor levels,
    run index) repeated for every row.

    Args:
        outcomes: Campaign replications.
        horizon: Censoring horizon for ``tta``/``ttsf``.
        constants: ``{column: value}`` replicated across all rows, in
            order, ahead of the response columns.
    """
    n = len(outcomes)
    columns: Dict[str, object] = {}
    for name, value in (constants or {}).items():
        if isinstance(value, int) and not isinstance(value, bool):
            columns[name] = np.full(n, value, dtype=np.int64)
        elif isinstance(value, float):
            columns[name] = np.full(n, value, dtype=np.float64)
        else:
            column = np.empty(n, dtype=object)
            column[:] = [value] * n
            columns[name] = column
    rows = np.asarray(
        [o.response_row(horizon) for o in outcomes], dtype=np.float64
    ).reshape(n, 4)
    columns["success"] = rows[:, 0]
    columns["tta"] = rows[:, 1]
    columns["ttsf"] = rows[:, 2]
    columns["final_ratio"] = rows[:, 3]
    return RecordTable(columns)


@dataclass
class MeasurementResult(TableRecordsMixin):
    """Output of a measurement plan.

    Attributes:
        table: Columnar long-format per-replication records
            (:class:`repro.results.RecordTable`): the factor levels plus
            responses ``success`` (0/1), ``tta`` (restricted: horizon
            when censored), ``ttsf`` (restricted) and ``final_ratio``.
            Aggregation (summaries, ANOVA inputs) reads the column
            arrays directly; the dict-shaped ``records`` view is a
            lazily materialized *view* of this table — assign ``table``
            (or ``records``) to replace the data, do not mutate the
            view's dicts in place.
        run_indicators: Per-design-run indicator sets, parallel to
            ``design.runs``.
        design: The executed design.
        replications: Replications per run.
        provenance: Reproduction record (plan digest, seed material,
            backend, library version); set by spawn-seeded executions,
            ``None`` on the legacy shared-generator path (whose
            reproduction key is the caller's generator state).
    """

    table: RecordTable
    run_indicators: List[IndicatorSet]
    design: Design
    replications: int
    provenance: Optional[Provenance] = None

    @property
    def summary(self) -> Dict[str, float]:
        """Scalar comparison metrics over all records (``psa`` plus the
        restricted means of :data:`repro.results.SUMMARY_METRICS`)."""
        return summarize_records(self.table)

    @property
    def records(self) -> List[Dict[str, object]]:
        """The table as long-format dict records (computed lazily).

        Kept for dict-oriented consumers; columnar code should read
        :attr:`table`.  Assigning a record list replaces the table.
        """
        return TableRecordsMixin.records.fget(self)  # type: ignore[attr-defined]

    @records.setter
    def records(self, value: List[Dict[str, object]]) -> None:
        self.table = RecordTable.from_dicts(value)

    def response_names(self) -> List[str]:
        """The response keys present in the records."""
        return ["success", "tta", "ttsf", "final_ratio"]


class MeasurementPlan:
    """Executes a DoE design against a SCADA system.

    Args:
        network_factory: Builds a *fresh* network per run (configurations
            mutate hosts, so each run must start clean).
        catalog: Variant catalog.
        threat: Threat profile to simulate.
        design: The DoE design; factor names must be
            :class:`~repro.scada.components.ComponentKind` values and
            levels variant names.
        replications: Campaign replications per design run.
        campaign_config: Campaign parameters.
        batch_size: When set, each run's replications advance through
            the mega-batch lowering
            (:class:`repro.attacks.batched.CampaignBatchEngine`) in
            lanes of this size.  ``batch_size=1`` units receive exactly
            the per-replication spawned seeds of the scalar path, so
            single-lane batches are bit-identical; larger batches on
            the vectorized path are distribution-identical.  Recorded
            on ``provenance.execution`` (outside the spec digest — an
            execution knob, not part of the experiment's identity).
    """

    def __init__(
        self,
        network_factory: Callable[[], SCADANetwork],
        catalog: VariantCatalog,
        threat: ThreatProfile,
        design: Design,
        replications: int = 30,
        campaign_config: Optional[CampaignConfig] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        from repro.exec import validate_batch_args

        validate_batch_args(replications, batch_size)
        self.network_factory = network_factory
        self.catalog = catalog
        self.threat = threat
        self.design = design
        self.replications = replications
        self.campaign_config = campaign_config or CampaignConfig()
        self.batch_size = batch_size

    def campaign_for_run(self, run_index: int) -> AttackCampaign:
        """Build the configured campaign for one design run."""
        run = self.design.runs[run_index]
        network = self.network_factory()
        config = configuration_from_run(
            network, run.as_dict(), label=f"run_{run_index}"
        )
        config.apply(network)
        return AttackCampaign(
            network, self.catalog, self.threat, self.campaign_config
        )

    def _table_for_run(
        self, run: Run, run_index: int, outcomes: List[AttackOutcome]
    ) -> RecordTable:
        """Columnar response records for one run's outcome batch."""
        constants: Dict[str, object] = dict(run.as_dict())
        constants["run"] = run_index
        return outcome_table(
            outcomes, self.campaign_config.horizon, constants
        )

    def execute_run(
        self, run_index: int, seq: np.random.SeedSequence
    ) -> Tuple[RecordTable, IndicatorSet]:
        """Execute one design run with spawn-per-replication seeding.

        This is the parallel work unit: every replication draws from its
        own generator (the ``i``-th spawn of ``seq``), so the run's
        records depend only on ``(seq, run_index)`` — not on which
        worker, backend or chunk executed it.  The run's records come
        back as one compact :class:`~repro.results.RecordTable` (column
        buffers, not a pickled dict list) plus its indicator set.
        """
        with trace("measurement.run"):
            campaign = self.campaign_for_run(run_index)
            if self.batch_size is not None:
                outcomes = self._batched_outcomes(campaign, seq)
            else:
                outcomes = [
                    campaign.run(np.random.default_rng(child))
                    for child in seq.spawn(self.replications)
                ]
            table = self._table_for_run(
                self.design.runs[run_index], run_index, outcomes
            )
            return table, compute_indicators(outcomes)

    def _batched_outcomes(
        self, campaign: AttackCampaign, seq: np.random.SeedSequence
    ) -> List[AttackOutcome]:
        """One run's replications through the mega-batch lowering.

        Unit seeds spawn from ``seq`` exactly like the scalar path's
        per-replication spawns, so ``batch_size=1`` reproduces the
        scalar records bit-for-bit.
        """
        from repro.attacks.batched import CampaignBatchEngine
        from repro.exec import batch_unit_sizes

        engine = CampaignBatchEngine(campaign)
        sizes = batch_unit_sizes(self.replications, self.batch_size)
        outcomes: List[AttackOutcome] = []
        for child, size in zip(seq.spawn(len(sizes)), sizes):
            outcomes.extend(
                engine.run_outcomes(size, np.random.default_rng(child))
            )
        return outcomes

    def spec_payload(self) -> Dict[str, object]:
        """Best-effort canonical description of this plan (provenance).

        Factories and catalogs are live objects, so the payload names
        what is serializable — the design's runs, the replication count
        and the campaign knobs — which pins the executed experiment
        design even when the builders themselves are code.
        """
        return {
            "design": {
                "name": self.design.name,
                "runs": [dict(run.as_dict()) for run in self.design.runs],
            },
            "replications": self.replications,
            "campaign": {
                "horizon": self.campaign_config.horizon,
                "tick_interval": self.campaign_config.tick_interval,
                "response_enabled": self.campaign_config.response_enabled,
                "response_delay_rate": self.campaign_config.response_delay_rate,
                "tick_elision": self.campaign_config.tick_elision,
            },
        }

    def execute(
        self,
        rng: SeedLike = None,
        runner: Optional[ExperimentRunner] = None,
        on_result: Optional[Callable[[int], None]] = None,
        cancel: Optional[Any] = None,
        max_records_in_ram: Optional[int] = None,
    ) -> MeasurementResult:
        """Run every design run and collect responses.

        Execution modes mirror
        :meth:`repro.attacks.campaign.AttackCampaign.run_batch`:

        * **Shared-generator (legacy)** — ``rng`` is a
          :class:`numpy.random.Generator` and ``runner`` is ``None``:
          runs and replications execute serially against the one
          generator (historical bit-exact streams).
        * **Runner** — a ``runner`` is given (or ``rng`` is a plain
          seed): each design run becomes one work unit with its own
          spawned :class:`~numpy.random.SeedSequence`, and records are
          bit-identical across backends, worker counts and chunkings.

        Args:
            rng: Seed or generator (see above).
            runner: Optional :class:`~repro.exec.runner.ExperimentRunner`.
            on_result: Optional progress hook ``on_result(run_index)``
                called per completed design run (both modes).  Never
                affects records.
            cancel: Optional cancellation event (``is_set()``
                protocol); once set the execution raises
                :class:`~repro.exec.backends.ExecutionCancelled`.
            max_records_in_ram: When set, per-run tables stream into a
                spilling :class:`~repro.results.streaming
                .StreamingTableBuilder` as each run completes (runner
                mode runs ``collect=False``), and the result's table is
                a lazy ``ShardedRecordTable`` holding at most this many
                rows in RAM.  Records are identical to the default
                in-RAM mode for the same seed.
        """
        builder = None
        if max_records_in_ram is not None:
            from repro.results.streaming import StreamingTableBuilder

            builder = StreamingTableBuilder(
                max_records_in_ram=max_records_in_ram
            )
        provenance: Optional[Provenance] = None
        if runner is None and isinstance(rng, np.random.Generator):
            from repro.exec.backends import ExecutionCancelled

            tables: List[RecordTable] = []
            run_indicators: List[IndicatorSet] = []
            for run_index, run in enumerate(self.design.runs):
                if cancel is not None and cancel.is_set():
                    raise ExecutionCancelled(
                        f"measurement cancelled after {run_index} of "
                        f"{len(self.design.runs)} design runs"
                    )
                campaign = self.campaign_for_run(run_index)
                if self.batch_size is not None:
                    from repro.attacks.batched import CampaignBatchEngine
                    from repro.exec import batch_unit_sizes

                    engine = CampaignBatchEngine(campaign)
                    outcomes = []
                    for size in batch_unit_sizes(
                        self.replications, self.batch_size
                    ):
                        outcomes.extend(engine.run_outcomes(size, rng))
                else:
                    outcomes = campaign.run_batch(self.replications, rng)
                run_indicators.append(compute_indicators(outcomes))
                run_table = self._table_for_run(run, run_index, outcomes)
                if builder is not None:
                    builder.append_table(run_table)
                else:
                    tables.append(run_table)
                if on_result is not None:
                    on_result(run_index)
        else:
            active = runner or ExperimentRunner()
            root = as_seed_sequence(rng)
            if not self.design.runs:
                if cancel is not None and cancel.is_set():
                    from repro.exec.backends import ExecutionCancelled

                    raise ExecutionCancelled("measurement cancelled")
                tables, run_indicators = [], []
            elif builder is not None:
                # Streaming: fold each run's table into the builder as
                # it completes (submission order) instead of collecting.
                sequences = spawn_sequences(root, len(self.design.runs))
                indicators_by_run: Dict[int, IndicatorSet] = {}

                def take(index: int, result: Tuple) -> None:
                    run_table, indicators = result
                    builder.append_table(run_table)
                    indicators_by_run[index] = indicators
                    if on_result is not None:
                        on_result(index)

                active.map(
                    self.execute_run,
                    [(i, seq) for i, seq in enumerate(sequences)],
                    on_result=take,
                    cancel=cancel,
                    collect=False,
                )
                tables = []
                run_indicators = [
                    indicators_by_run[i]
                    for i in range(len(self.design.runs))
                ]
            else:
                sequences = spawn_sequences(root, len(self.design.runs))
                unit_hook = None
                if on_result is not None:
                    unit_hook = lambda index, _result: on_result(index)
                results = active.map(
                    self.execute_run,
                    [(i, seq) for i, seq in enumerate(sequences)],
                    on_result=unit_hook,
                    cancel=cancel,
                )
                tables = [table for table, _ in results]
                run_indicators = [
                    indicators for _, indicators in results
                ]
            execution = (
                {"batch_size": self.batch_size}
                if self.batch_size is not None
                else None
            )
            provenance = provenance_for(
                self.spec_payload(),
                root,
                active,
                source="measurement_plan",
                execution=execution,
            )
        return MeasurementResult(
            table=(
                builder.build()
                if builder is not None
                else RecordTable.concat(tables)
            ),
            run_indicators=run_indicators,
            design=self.design,
            replications=self.replications,
            provenance=provenance,
        )
